//! Crash recovery end to end: run a journaled DfMS, hard-kill it
//! mid-flight (drop the engine with work in the air), recover from the
//! write-ahead journal, finish the flows, and print the recovery
//! report. An uninterrupted control run proves the recovered engine is
//! byte-identical where it matters: provenance and flow state.
//!
//! ```sh
//! cargo run --example dgf_recover
//! ```
//!
//! The operator guide for all of this is `docs/RECOVERY.md`.

use datagridflows::prelude::*;
use std::path::PathBuf;

const LABEL: &str = "demo-grid";

/// The engine factory: recovery replays the journal against an engine
/// built *exactly* like the one that crashed — same topology, same
/// users, same planner and seed. Keep this deterministic.
fn factory() -> Dfms {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 3 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("arun", topology.domain_ids().next().unwrap()));
    users.make_admin("arun").unwrap();
    Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 42))
}

fn survey_flow() -> Flow {
    FlowBuilder::sequential("survey")
        .step("mk", DglOperation::CreateCollection { path: "/survey".into() })
        .step(
            "ingest",
            DglOperation::Ingest { path: "/survey/run1.dat".into(), size: "800000000".into(), resource: "site0-disk".into() },
        )
        .step("digest", DglOperation::Checksum { path: "/survey/run1.dat".into(), resource: None, register: true })
        .step(
            "offsite",
            DglOperation::Replicate { path: "/survey/run1.dat".into(), src: None, dst: "site1-archive".into() },
        )
        .step("done", DglOperation::Notify { message: "run1 archived off-site".into() })
        .build()
        .unwrap()
}

fn crunch_flow() -> Flow {
    let mut b = FlowBuilder::sequential("crunch");
    for i in 0..4 {
        b = b.step(
            format!("job{i}"),
            DglOperation::Execute {
                code: format!("analysis-{i}"),
                nominal_secs: "600".into(),
                resource_type: None,
                inputs: vec![],
                outputs: vec![],
            },
        );
    }
    b.build().unwrap()
}

/// Drive a (journaled or not) engine through the whole scenario.
/// Everything is deterministic, so a control run and a crashed+recovered
/// run can be compared step for step.
fn part_one(d: &mut Dfms) -> (String, String) {
    let t1 = d.submit_flow("arun", survey_flow()).unwrap();
    let t2 = d.submit_flow("arun", crunch_flow()).unwrap();
    // Run the grid for 20 simulated minutes: the transfer lands, the
    // analysis jobs are mid-crunch.
    d.pump_until(SimTime::ZERO + Duration::from_secs(1200));
    (t1, t2)
}

fn part_two(d: &mut Dfms) {
    d.pump(); // drain to quiescence
}

fn fingerprint(d: &Dfms, txns: &[&str]) -> String {
    let mut out = d.provenance().snapshot();
    for txn in txns {
        out.push_str(&format!("\n{}", d.status(txn, None).unwrap()));
    }
    out
}

fn main() {
    let path: PathBuf = std::env::temp_dir().join(format!("dgf-recover-{}.dgj", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // --- the run that will crash -------------------------------------
    let mut dfms = factory();
    dfms.attach_journal(&path, LABEL, JournalConfig::default()).unwrap();
    let (t1, t2) = part_one(&mut dfms);
    println!("--- mid-flight (about to crash) ---");
    println!("{}", dfms.status(&t1, None).unwrap());
    println!("{}", dfms.status(&t2, None).unwrap());

    // Hard kill: the process dies here. No shutdown hook, no flush
    // beyond what the WAL already guaranteed.
    drop(dfms);
    println!("\n*** crash: engine dropped with {t2} still running ***\n");

    // --- reboot: recover from the journal ----------------------------
    let (mut revived, report) = Dfms::recover(&path, LABEL, JournalConfig::default(), factory)
        .expect("journal replays cleanly");
    println!("--- recovery report ---\n{report}");
    for flow in &report.flows {
        println!(
            "  {} [{}] {}/{} steps{}",
            flow.transaction,
            flow.state,
            flow.steps_completed,
            flow.steps_total,
            if flow.resumed { " — resumed" } else { "" }
        );
    }

    // Finish the interrupted work on the recovered engine.
    part_two(&mut revived);
    println!("\n--- after recovery ---");
    println!("{}", revived.status(&t1, None).unwrap());
    println!("{}", revived.status(&t2, None).unwrap());

    // --- prove it: an uninterrupted control run matches byte for byte -
    let mut control = factory();
    part_one(&mut control);
    part_two(&mut control);
    let same = fingerprint(&revived, &[&t1, &t2]) == fingerprint(&control, &[&t1, &t2]);
    let replay = report.replay.expect("a crashed journal implies a replay");
    println!(
        "\ncontrol comparison: provenance+status {} | {} commands replayed, {} records matched, {} divergences",
        if same { "IDENTICAL" } else { "DIVERGED" },
        replay.commands_replayed,
        replay.records_matched,
        replay.divergences,
    );
    let _ = std::fs::remove_file(&path);
    assert!(same, "recovered state diverged from the uninterrupted control");
    assert_eq!(replay.divergences, 0);
    println!("recovery OK: crash at full flight, byte-identical state after reboot");
}
