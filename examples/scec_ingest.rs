//! The SCEC ingestion scenario (paper §4): "SCEC workflow for ingesting
//! files into the SRB datagrid was also performed using DGL."
//!
//! Earthquake-simulation outputs arrive at the SCEC site, are ingested
//! with seismology metadata, post-processed on whichever cluster the
//! scheduler picks (staging data as needed), and the derived products
//! are archived. A datagrid trigger auto-tags every new seismogram.
//!
//! ```sh
//! cargo run --example scec_ingest
//! ```

use datagridflows::prelude::*;

fn main() {
    // SCEC + SDSC + USC: three sites; SDSC has the big cluster.
    let mut builder = GridBuilder::new();
    let scec = builder.add_site("scec", 8);
    let sdsc = builder.add_site("sdsc", 128);
    let usc = builder.add_site("usc", 16);
    builder.wan_link(scec, sdsc);
    builder.wan_link(scec, usc);
    builder.wan_link(sdsc, usc);
    let topology = builder.build();

    let mut users = UserRegistry::new();
    users.register(Principal::new("marcio", scec).with_vo("scec"));
    users.make_admin("marcio").unwrap();
    let mut dfms = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 11));

    // Trigger: every ingested object under /scec gets provenance metadata
    // — the §2.2 "creating metadata when a file is created" automation.
    let tag_flow = FlowBuilder::sequential("auto-tag")
        .step(
            "tag",
            DglOperation::SetMetadata { path: "${event.path}".into(), attribute: "pipeline".into(), value: "scec-2005".into() },
        )
        .build()
        .unwrap();
    dfms.triggers_mut().register(
        Trigger::new("scec-auto-tag", "marcio", LogicalPath::parse("/scec").unwrap(), TriggerAction::Flow(tag_flow))
            .on(&[EventKind::ObjectIngested]),
    );

    // The ingest + process workflow, one DGL document.
    let runs = 4;
    let mut b = FlowBuilder::sequential("scec-ingest")
        .step("mk", DglOperation::CreateCollection { path: "/scec".into() })
        .step("mk2", DglOperation::CreateCollection { path: "/scec/run2005".into() })
        .step("mk3", DglOperation::CreateCollection { path: "/scec/derived".into() });
    for i in 0..runs {
        let raw = format!("/scec/run2005/wave{i}.dat");
        b = b
            .step(
                format!("ingest{i}"),
                DglOperation::Ingest { path: raw.clone(), size: "2000000000".into(), resource: "scec-pfs".into() },
            )
            .step(
                format!("meta{i}"),
                DglOperation::SetMetadata { path: raw.clone(), attribute: "type".into(), value: "seismogram".into() },
            )
            .step(
                format!("derive{i}"),
                DglOperation::Execute {
                    code: "peak-ground-motion".into(),
                    nominal_secs: "1800".into(),
                    resource_type: Some("compute:16".into()),
                    inputs: vec![raw],
                    outputs: vec![(format!("/scec/derived/pgm{i}.dat"), "50000000".into())],
                },
            )
            .step(
                format!("archive{i}"),
                DglOperation::Replicate { path: format!("/scec/derived/pgm{i}.dat"), src: None, dst: "sdsc-archive".into() },
            );
    }
    let flow = b.build().unwrap();

    println!("submitting the SCEC ingest workflow ({} steps)...", flow.step_count());
    let txn = dfms.submit_flow("marcio", flow).unwrap();
    dfms.pump();

    let report = dfms.status(&txn, None).unwrap();
    println!("workflow: {report}");
    assert_eq!(report.state, RunState::Completed);

    // Where did the processing actually run? The 16-slot requirement
    // excluded SCEC's own 8-slot cluster; cost-based planning weighed
    // 2 GB stage-in against cluster speed.
    println!("\nderived products and their homes:");
    for i in 0..runs {
        let p = LogicalPath::parse(&format!("/scec/derived/pgm{i}.dat")).unwrap();
        let obj = dfms.grid().stat_object(&p).unwrap();
        let homes: Vec<String> = obj
            .replicas
            .iter()
            .map(|r| dfms.grid().topology().storage(r.storage).name.clone())
            .collect();
        println!("  {p}: {}", homes.join(", "));
    }

    // The trigger tagged every ingested file (raw + derived).
    let tagged = dfms
        .grid()
        .query(&LogicalPath::parse("/scec").unwrap(), &MetaQuery::Eq("pipeline".into(), "scec-2005".into()));
    println!("\nauto-tagged objects: {}", tagged.len());
    assert!(tagged.len() >= runs, "every raw file tagged by the trigger");

    let m = dfms.metrics();
    println!("\nengine metrics:");
    println!("  dgms ops        {}", m.dgms_ops);
    println!("  bytes moved     {:.1} GB", m.bytes_moved as f64 / 1e9);
    println!("  exec tasks      {}", m.exec_tasks);
    println!("  trigger firings {}", m.trigger_firings);
    println!("  simulated time  {}", dfms.now());
}
