//! Observability: the flight recorder and metrics registry, inspected
//! both in-process and over the DGL wire.
//!
//! ```sh
//! cargo run --example observability
//! ```
//!
//! See `docs/OBSERVABILITY.md` for the full event taxonomy and metric
//! name reference.

use datagridflows::prelude::*;

fn main() {
    // 1. A two-site grid and a DfMS with a cost-based scheduler. The
    //    engine wires a shared `Obs` handle into the scheduler and the
    //    trigger engine at construction, so one recorder sees them all.
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("arun", topology.domain_ids().next().unwrap()));
    users.make_admin("arun").unwrap();
    let mut dfms = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 42));

    // 2. A flow that exercises several event sources: DGMS ops (ingest,
    //    replicate), a compute task (planner decision + staging
    //    transfer), and a notification.
    let flow = FlowBuilder::sequential("observed")
        .step("mk", DglOperation::CreateCollection { path: "/obs".into() })
        .step(
            "put",
            DglOperation::Ingest { path: "/obs/in.dat".into(), size: "200000000".into(), resource: "site0-pfs".into() },
        )
        .step(
            "analyze",
            DglOperation::Execute {
                code: "analyze-v1".into(),
                nominal_secs: "300".into(),
                resource_type: None,
                inputs: vec!["/obs/in.dat".into()],
                outputs: vec![("/obs/out.dat".into(), "1000000".into())],
            },
        )
        .step("archive", DglOperation::Replicate { path: "/obs/out.dat".into(), src: None, dst: "site1-archive".into() })
        .step("done", DglOperation::Notify { message: "analysis archived".into() })
        .build()
        .expect("flow is structurally valid");
    let txn = dfms.submit_flow("arun", flow).unwrap();
    dfms.pump();
    assert_eq!(dfms.status(&txn, None).unwrap().state, RunState::Completed);

    // 3. The in-process view: every event the recorder holds, stamped
    //    with the simulation clock (deterministic across reruns).
    println!("--- flight recorder ({} events) ---", dfms.obs().events_total());
    for e in dfms.obs().events() {
        println!("  [{:>12}us #{:<3}] {:<20} {}", e.time.0, e.seq, e.kind.name(), e.kind.detail());
    }

    // 4. The same data over the DGL wire: a FlowStatusQuery asking for
    //    the last 5 events plus a metrics snapshot, as XML in and out.
    let query = FlowStatusQuery::whole(&txn).with_events(5).with_metrics();
    let request = DataGridRequest::status("obs-query-1", "arun", query);
    println!("\n--- DGL status query ---\n{}", request.to_xml());
    let response_xml = dfms.handle_xml(&request.to_xml());
    let response = datagridflows::dgl::parse_response(&response_xml).unwrap();
    let ResponseBody::Status(report) = response.body else { panic!("expected a status report") };
    println!("--- report: {report} ---");
    println!("last {} events over the wire:", report.events.len());
    for e in &report.events {
        println!("  [{:>12}us #{:<3}] {:<20} {}", e.time_us, e.seq, e.kind, e.detail);
    }
    println!("metric samples over the wire: {}", report.metrics.len());
    for m in report.metrics.iter().filter(|m| m.scope == "engine").take(5) {
        println!("  {}/{} {} {}", m.scope, m.name, m.kind, m.value);
    }

    // 5. The full registry, via the text exporter (`to_json` is the
    //    machine-readable sibling).
    println!("\n--- metrics snapshot ---\n{}", dfms.metrics_snapshot().to_text());
}
