//! Observability: the flight recorder, metrics registry, and span
//! tracer, inspected both in-process and over the DGL wire.
//!
//! ```sh
//! cargo run --example observability
//! # write the span timeline as Chrome trace-event JSON (open it at
//! # chrome://tracing or https://ui.perfetto.dev):
//! DGF_TRACE_OUT=/tmp/dgf-trace.json cargo run --example observability
//! # write the Prometheus-style telemetry scrape (byte-identical
//! # across seeded reruns):
//! DGF_SCRAPE_OUT=/tmp/dgf-scrape.txt cargo run --example observability
//! # write the phase-profile structure (byte-identical across reruns —
//! # wall/alloc fields zeroed, tree shape and call counts kept):
//! DGF_PROFILE_OUT=/tmp/dgf-profile.txt cargo run --example observability
//! ```
//!
//! See `docs/OBSERVABILITY.md` for the full event taxonomy, metric
//! name reference, and span hierarchy.

use datagridflows::prelude::*;

fn main() {
    // 1. A two-site grid and a DfMS with a cost-based scheduler. The
    //    engine wires a shared `Obs` handle into the scheduler and the
    //    trigger engine at construction, so one recorder sees them all.
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("arun", topology.domain_ids().next().unwrap()));
    users.make_admin("arun").unwrap();
    let mut dfms = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 42));

    // 2. A flow that exercises several event sources: DGMS ops (ingest,
    //    replicate), a compute task (planner decision + staging
    //    transfer), and a notification.
    let flow = FlowBuilder::sequential("observed")
        .step("mk", DglOperation::CreateCollection { path: "/obs".into() })
        .step(
            "put",
            DglOperation::Ingest { path: "/obs/in.dat".into(), size: "200000000".into(), resource: "site0-pfs".into() },
        )
        .step(
            "analyze",
            DglOperation::Execute {
                code: "analyze-v1".into(),
                nominal_secs: "300".into(),
                resource_type: None,
                inputs: vec!["/obs/in.dat".into()],
                outputs: vec![("/obs/out.dat".into(), "1000000".into())],
            },
        )
        .step("archive", DglOperation::Replicate { path: "/obs/out.dat".into(), src: None, dst: "site1-archive".into() })
        .step("done", DglOperation::Notify { message: "analysis archived".into() })
        .build()
        .expect("flow is structurally valid");
    let txn = dfms.submit_flow("arun", flow).unwrap();
    dfms.pump();
    assert_eq!(dfms.status(&txn, None).unwrap().state, RunState::Completed);

    // 3. The in-process view: every event the recorder holds, stamped
    //    with the simulation clock (deterministic across reruns).
    println!("--- flight recorder ({} events) ---", dfms.obs().events_total());
    for e in dfms.obs().events() {
        println!("  [{:>12}us #{:<3}] {:<20} {}", e.time.0, e.seq, e.kind.name(), e.kind.detail());
    }

    // 4. The same data over the DGL wire: a FlowStatusQuery asking for
    //    the last 5 events plus a metrics snapshot, as XML in and out.
    let query = FlowStatusQuery::whole(&txn).with_events(5).with_metrics();
    let request = DataGridRequest::status("obs-query-1", "arun", query);
    println!("\n--- DGL status query ---\n{}", request.to_xml());
    let response_xml = dfms.handle_xml(&request.to_xml());
    let response = datagridflows::dgl::parse_response(&response_xml).unwrap();
    let ResponseBody::Status(report) = response.body else { panic!("expected a status report") };
    println!("--- report: {report} ---");
    println!("last {} events over the wire:", report.events.len());
    for e in &report.events {
        println!("  [{:>12}us #{:<3}] {:<20} {}", e.time_us, e.seq, e.kind, e.detail);
    }
    println!("metric samples over the wire: {}", report.metrics.len());
    for m in report.metrics.iter().filter(|m| m.scope == "engine").take(5) {
        println!("  {}/{} {} {}", m.scope, m.name, m.kind, m.value);
    }

    // 5. The causal span timeline: one trace per submitted flow, with
    //    request, binding, dgms-op, and transfer spans hanging off it.
    //    The same tree travels the wire via `with_trace`.
    let trace_q = FlowStatusQuery::whole(&txn).with_trace();
    let trace_req = DataGridRequest::status("obs-query-2", "arun", trace_q);
    let trace_resp = datagridflows::dgl::parse_response(&dfms.handle_xml(&trace_req.to_xml())).unwrap();
    let ResponseBody::Status(traced) = trace_resp.body else { panic!("expected a status report") };
    println!("\n--- span timeline ({} spans) ---", traced.spans.len());
    let depth_of = |s: &ReportSpan| {
        let mut d = 0;
        let mut parent = s.parent;
        while let Some(p) = parent {
            parent = traced.spans.iter().find(|c| c.id == p).and_then(|c| c.parent);
            d += 1;
        }
        d
    };
    for s in &traced.spans {
        let end = s.end_us.map(|e| e.to_string()).unwrap_or_else(|| "open".into());
        println!("  {:indent$}{} \"{}\" [{} .. {}]us", "", s.kind, s.name, s.start_us, end, indent = depth_of(s) * 2);
    }

    // 6. Chrome trace-event export — byte-identical across seeded
    //    reruns, so a trace file is a reproducible artifact.
    let chrome = dfms.obs().export_chrome_trace();
    if let Ok(path) = std::env::var("DGF_TRACE_OUT") {
        std::fs::write(&path, &chrome).expect("trace file is writable");
        println!("\nwrote {} bytes of chrome trace JSON to {path}", chrome.len());
    } else {
        println!("\nchrome trace export: {} bytes (set DGF_TRACE_OUT=/path.json to write it)", chrome.len());
    }

    // 7. The full registry, via the text exporter (`to_json` is the
    //    machine-readable sibling). Span latency percentiles appear as
    //    `trace/span.<kind>.p50|p95|p99_us` gauges.
    println!("\n--- metrics snapshot ---\n{}", dfms.metrics_snapshot().to_text());

    // 8. The live-telemetry surface: sample the resource time-series at
    //    the current sim-time, then render the Prometheus-style scrape
    //    that `TelemetryQuery::scrape()` serves over the DGL wire. The
    //    scrape is deterministic: identically-seeded runs produce
    //    byte-identical text (scripts/verify.sh gates on this).
    dfms.sample_telemetry();
    let scrape = dfms.telemetry_scrape();
    let preview: Vec<&str> = scrape.lines().take(12).collect();
    println!("--- telemetry scrape ({} bytes) ---\n{}\n  ...", scrape.len(), preview.join("\n"));
    if let Ok(path) = std::env::var("DGF_SCRAPE_OUT") {
        std::fs::write(&path, &scrape).expect("scrape file is writable");
        println!("wrote the full scrape to {path}");
    }

    // 9. The phase profiler (`dgf-prof`): every engine pass above also
    //    accumulated into a scoped phase tree — parse, lint, schedule,
    //    step-execute, provenance, telemetry. Wall-clock and allocation
    //    fields vary between runs; the *structure* (tree shape, call
    //    counts, sim-time totals) is deterministic, and
    //    `structure_text()` renders exactly that stable subset
    //    (scripts/verify.sh gates on it being byte-identical).
    let profile = dfms.profile_snapshot();
    println!("\n--- phase profile structure ---\n{}", profile.structure_text());
    println!("folded stacks: {} lines (flamegraph.pl-ready)", profile.folded().lines().count());
    if let Ok(path) = std::env::var("DGF_PROFILE_OUT") {
        std::fs::write(&path, profile.structure_text()).expect("profile file is writable");
        println!("wrote the profile structure to {path}");
    }
}
