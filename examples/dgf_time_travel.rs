//! The time-travel operator console: replay a crashed engine's journal
//! to any since-genesis ordinal, diff two ordinals, bisect history for
//! the moment a flow first stalled, and export the materialized trace
//! as a Perfetto protobuf.
//!
//! ```sh
//! cargo run --example dgf_time_travel                # scripted demo
//! cargo run --example dgf_time_travel -- --interactive
//! DGF_PERFETTO_OUT=/tmp/dgf.pftrace cargo run --example dgf_time_travel
//! ```
//!
//! The scripted demo is fully deterministic (same output byte for byte
//! on every run); `scripts/verify.sh` relies on that. The operator
//! guide is `docs/TIME_TRAVEL.md`.

use datagridflows::prelude::*;
use std::io::BufRead as _;
use std::path::PathBuf;

const LABEL: &str = "console-grid";

/// The engine factory — the same deterministic-rebuild contract as
/// recovery: topology, users, planner seed, *and* watchdog deadlines
/// must match the journaled engine (health configuration is not
/// journaled, so it lives here).
fn factory() -> Dfms {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 3 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("arun", topology.domain_ids().next().unwrap()));
    users.make_admin("arun").unwrap();
    let dfms = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 42));
    // Tight stall deadlines so the demo's stall is diagnosable within
    // simulated hours rather than the production default of 2h/15min.
    dfms.obs().health_configure(HealthConfig {
        slow_after: Duration::from_secs(600),
        stalled_after: Duration::from_secs(1800),
    });
    dfms
}

fn survey_flow() -> Flow {
    FlowBuilder::sequential("survey")
        .step("mk", DglOperation::CreateCollection { path: "/survey".into() })
        .step(
            "ingest",
            DglOperation::Ingest { path: "/survey/run1.dat".into(), size: "800000000".into(), resource: "site0-disk".into() },
        )
        .step("digest", DglOperation::Checksum { path: "/survey/run1.dat".into(), resource: None, register: true })
        .step(
            "offsite",
            DglOperation::Replicate { path: "/survey/run1.dat".into(), src: None, dst: "site1-archive".into() },
        )
        .build()
        .unwrap()
}

fn crunch_flow(name: &str, jobs: usize) -> Flow {
    let mut b = FlowBuilder::sequential(name);
    for i in 0..jobs {
        b = b.step(
            format!("job{i}"),
            DglOperation::Execute {
                code: format!("analysis-{i}"),
                nominal_secs: "600".into(),
                resource_type: None,
                inputs: vec![],
                outputs: vec![],
            },
        );
    }
    b.build().unwrap()
}

/// Drive the journaled engine into the incident and crash it:
///
/// * `t1`/`t2` run to completion in the morning;
/// * `t3` is window-constrained to off-hours (20:00–06:00) but gets
///   submitted at 10:00 — it sits idle and trips the stall watchdog at
///   10:30 while
/// * `t4`, a long analysis chain, keeps deriving transitions right
///   through the stall (so bisection has ordinals to cut between).
///
/// Returns the four transaction ids.
fn drive_incident(dfms: &mut Dfms) -> [String; 4] {
    let t1 = dfms.submit_flow("arun", survey_flow()).unwrap();
    let t2 = dfms.submit_flow("arun", crunch_flow("crunch", 4)).unwrap();
    // Run the grid to 10:00 — the morning work completes.
    dfms.pump_until(SimTime::ZERO + Duration::from_secs(36_000));
    let nightly = RunOptions { window: Some(ScheduleWindow::off_hours(20, 6)), ..Default::default() };
    let t3 = dfms
        .submit_flow_with("arun", crunch_flow("nightly-archive", 2), nightly)
        .unwrap();
    let t4 = dfms.submit_flow("arun", crunch_flow("backfill", 30)).unwrap();
    // Run to 13:20: t4 mid-chain, t3 stalled since 10:30.
    dfms.pump_until(SimTime::ZERO + Duration::from_secs(48_000));
    [t1, t2, t3, t4]
}

fn print_flows(m: &datagridflows::dfms::Materialized) {
    let s = m.summary();
    let ordinal = m.ordinal.map_or("-".to_owned(), |o| o.to_string());
    println!(
        "ordinal {ordinal} | clock {}s | {} commands, {} transitions{}",
        s.time_us / 1_000_000,
        s.commands_applied,
        s.transitions_derived,
        if m.complete { " | end of history" } else { "" },
    );
    for f in &s.flows {
        println!("  {} [{}] {}/{} steps", f.transaction, f.state, f.steps_completed, f.steps_total);
    }
}

fn print_diff(travel: &TimeTravel, a: u64, b: u64) {
    match travel.diff(a, b) {
        Ok(d) => {
            println!(
                "diff {}..{} | clock {}s -> {}s | +{} provenance records",
                d.from,
                d.to,
                d.time_from_us / 1_000_000,
                d.time_to_us / 1_000_000,
                d.provenance_added.len(),
            );
            for rec in &d.provenance_added {
                println!("  + {} {} {} [{:?}]", rec.transaction, rec.node, rec.name, rec.outcome);
            }
            for f in &d.flows {
                let from = f.from_state.map_or("(new)".to_owned(), |s| s.to_string());
                let to = f.to_state.map_or("(gone)".to_owned(), |s| s.to_string());
                println!(
                    "  ~ {} {} -> {} ({} -> {}/{} steps)",
                    f.transaction, from, to, f.steps_from, f.steps_to, f.steps_total
                );
            }
            if d.is_empty() {
                println!("  (no observable change)");
            }
        }
        Err(e) => println!("diff failed: {e}"),
    }
}

fn print_bisect(travel: &TimeTravel, what: &str, predicate: &BisectPredicate) {
    match travel.bisect(predicate) {
        Ok(b) => match b.first_true {
            Some(o) => println!(
                "bisect {what}: first true at ordinal {o} of {} ({} probes)",
                b.last_ordinal, b.probes
            ),
            None => println!(
                "bisect {what}: never true in {} ordinals ({} probes)",
                b.last_ordinal + 1,
                b.probes
            ),
        },
        Err(e) => println!("bisect failed: {e}"),
    }
}

/// Export the materialization's spans as a Perfetto protobuf, verify
/// the bytes through the decoder, and (optionally) write them to disk.
fn export_perfetto(m: &datagridflows::dfms::Materialized, out: Option<&str>) {
    let bytes = m.engine.obs().export_perfetto_trace();
    match decode_perfetto(&bytes) {
        Ok(packets) => {
            let tracks = packets.iter().filter(|p| p.track.is_some()).count();
            let events = packets.iter().filter(|p| p.event.is_some()).count();
            println!(
                "perfetto export: {} bytes, {} packets ({tracks} tracks, {events} slice events) — verified",
                bytes.len(),
                packets.len(),
            );
        }
        Err(e) => println!("perfetto export failed verification: {e}"),
    }
    if let Some(path) = out {
        match std::fs::write(path, &bytes) {
            Ok(()) => println!("wrote trace to {path} — open it at https://ui.perfetto.dev"),
            Err(e) => println!("could not write {path}: {e}"),
        }
    }
}

fn scripted(travel: &TimeTravel, txns: &[String; 4]) {
    let [_, t2, t3, _] = txns;

    println!("--- end of history ---");
    let full = travel.materialize(None).expect("journal replays cleanly");
    print_flows(&full);

    println!("\n--- step back: ordinal 3 ---");
    let early = travel.materialize(Some(3)).expect("journal replays cleanly");
    print_flows(&early);

    println!("\n--- provenance diff, ordinal 3 -> 8 ---");
    print_diff(travel, 3, 8);

    println!("\n--- bisect: when did {t2} first complete? ---");
    print_bisect(
        travel,
        "completed",
        &BisectPredicate::FlowState { transaction: t2.clone(), state: RunState::Completed },
    );

    println!("\n--- bisect: when did {t3} first stall? ---");
    print_bisect(travel, "stalled", &BisectPredicate::Stalled { transaction: t3.clone() });

    println!("\n--- perfetto ---");
    let out = std::env::var("DGF_PERFETTO_OUT").ok();
    export_perfetto(&full, out.as_deref());
}

fn interactive(travel: &TimeTravel) {
    println!("time-travel console — commands:");
    println!("  goto <ordinal>|end       materialize and show flow states");
    println!("  diff <a> <b>             provenance + flow-state delta");
    println!("  bisect stalled <txn>     first ordinal a flow was stalled");
    println!("  bisect state <txn> <s>   first ordinal a flow hit a state");
    println!("  bisect var <txn> <n> <v> first ordinal a variable took a value");
    println!("  export [file]            perfetto protobuf of the current ordinal");
    println!("  quit");
    let mut current = travel.materialize(None).expect("journal replays cleanly");
    print_flows(&current);
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.unwrap_or_default();
        let words: Vec<&str> = line.split_whitespace().collect();
        match words.as_slice() {
            ["quit"] | ["exit"] => break,
            ["goto", at] => {
                let ordinal = if *at == "end" { None } else { at.parse().ok() };
                if ordinal.is_none() && *at != "end" {
                    println!("goto: expected an ordinal or 'end'");
                    continue;
                }
                match travel.materialize(ordinal) {
                    Ok(m) => {
                        current = m;
                        print_flows(&current);
                    }
                    Err(e) => println!("goto failed: {e}"),
                }
            }
            ["diff", a, b] => match (a.parse(), b.parse()) {
                (Ok(a), Ok(b)) => print_diff(travel, a, b),
                _ => println!("diff: expected two ordinals"),
            },
            ["bisect", "stalled", txn] => print_bisect(
                travel,
                "stalled",
                &BisectPredicate::Stalled { transaction: (*txn).to_owned() },
            ),
            ["bisect", "state", txn, state] => {
                let state = [
                    RunState::Pending,
                    RunState::Running,
                    RunState::Paused,
                    RunState::Completed,
                    RunState::Failed,
                    RunState::Stopped,
                    RunState::Skipped,
                ]
                .into_iter()
                .find(|s| s.to_string() == *state);
                match state {
                    Some(state) => print_bisect(
                        travel,
                        "state",
                        &BisectPredicate::FlowState { transaction: (*txn).to_owned(), state },
                    ),
                    None => println!("bisect state: unknown state {state:?}"),
                }
            }
            ["bisect", "var", txn, name, value] => print_bisect(
                travel,
                "variable",
                &BisectPredicate::Variable {
                    transaction: (*txn).to_owned(),
                    name: (*name).to_owned(),
                    value: (*value).to_owned(),
                },
            ),
            ["export"] => export_perfetto(&current, None),
            ["export", path] => export_perfetto(&current, Some(path)),
            [] => {}
            other => println!("unknown command {other:?} — try 'goto', 'diff', 'bisect', 'export', 'quit'"),
        }
    }
}

fn main() {
    let path: PathBuf =
        std::env::temp_dir().join(format!("dgf-time-travel-{}.dgj", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // --- the run that will crash -------------------------------------
    let mut dfms = factory();
    dfms.attach_journal(&path, LABEL, JournalConfig::default()).unwrap();
    let txns = drive_incident(&mut dfms);
    println!("--- mid-incident (about to crash) ---");
    for txn in &txns {
        println!("{}", dfms.status(txn, None).unwrap());
    }
    drop(dfms);
    println!("\n*** crash: engine dropped with {} stalled and {} mid-chain ***\n", txns[2], txns[3]);

    // --- the console: read-only time travel over the dead journal ----
    let travel = TimeTravel::new(&path, LABEL, factory);
    if std::env::args().any(|a| a == "--interactive") {
        interactive(&travel);
    } else {
        scripted(&travel, &txns);
    }
    let _ = std::fs::remove_file(&path);
}
