//! The peer-to-peer datagridflow network (paper §3.2 and §5: "multiple
//! DfMS servers can form a peer-to-peer datagridflow network with one or
//! more lookup servers" — listed as future work; here it runs).
//!
//! Three DfMS servers own three zones of one federated namespace; a
//! lookup service routes DGL requests by path prefix, and status queries
//! follow the transaction home.
//!
//! ```sh
//! cargo run --example p2p_network
//! ```

use datagridflows::prelude::*;

fn make_server(admin: &str) -> Dfms {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
    let mut users = UserRegistry::new();
    let d0 = topology.domain_ids().next().unwrap();
    users.register(Principal::new(admin, d0));
    users.make_admin(admin).unwrap();
    Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 17))
}

fn main() {
    // --- Build the network: SDSC, CCLRC (UK), and SCEC each run a DfMS. --
    let mut net = DfmsNetwork::new();
    net.add_server("sdsc", make_server("arun"));
    net.add_server("cclrc", make_server("peter"));
    net.add_server("scec", make_server("marcio"));
    net.lookup_mut().register(LogicalPath::parse("/sdsc").unwrap(), "sdsc");
    net.lookup_mut().register(LogicalPath::parse("/cclrc").unwrap(), "cclrc");
    net.lookup_mut().register(LogicalPath::parse("/scec").unwrap(), "scec");
    println!("network: {:?}, {} lookup routes", net.server_names(), 3);

    // --- Each community submits work; the lookup service routes it. -----
    let jobs = [
        ("arun", "/sdsc", "site0-disk"),
        ("peter", "/cclrc", "site1-disk"),
        ("marcio", "/scec", "site0-pfs"),
    ];
    let mut txns = Vec::new();
    for (user, zone, resource) in jobs {
        let flow = FlowBuilder::sequential(format!("{user}-ingest"))
            .step("mk", DglOperation::CreateCollection { path: zone.into() })
            .step("put", DglOperation::Ingest { path: format!("{zone}/dataset.dat"), size: "250000000".into(), resource: resource.into() })
            .step("sum", DglOperation::Checksum { path: format!("{zone}/dataset.dat"), resource: None, register: true })
            .build()
            .unwrap();
        let request = DataGridRequest::flow(format!("req-{user}"), user, flow).asynchronous();
        let (routed_to, response) = net.route(request).expect("routable");
        let txn = response.transaction().to_owned();
        println!("{user}'s request for {zone} routed to {routed_to:8} (txn {txn})");
        txns.push((user.to_owned(), txn));
    }

    // --- Pump every server; then poll status through the network. -------
    net.pump_all();
    for (user, txn) in &txns {
        let query = DataGridRequest::status(format!("poll-{user}"), user, FlowStatusQuery::whole(txn));
        let (home, response) = net.route(query).expect("status routes home");
        match response.body {
            ResponseBody::Status(s) => {
                println!("status of {txn} (answered by {home:8}): {} ({}/{} steps)", s.state, s.steps_completed, s.steps_total);
                assert_eq!(s.state, RunState::Completed);
            }
            other => panic!("expected status, got {other:?}"),
        }
    }

    // --- Zones stay autonomous: data lives only where it was routed. ----
    for (name, zone) in [("sdsc", "/sdsc"), ("cclrc", "/cclrc"), ("scec", "/scec")] {
        let p = LogicalPath::parse(&format!("{zone}/dataset.dat")).unwrap();
        for other in ["sdsc", "cclrc", "scec"] {
            let has = net.server(other).unwrap().grid().exists(&p);
            assert_eq!(has, other == name, "{other} vs {zone}");
        }
        let server = net.server(name).unwrap();
        println!(
            "{name:8} zone: {} objects, {} provenance records",
            server.grid().stats().objects,
            server.provenance().len()
        );
    }

    // --- Unroutable requests are refused, not misdelivered. -------------
    let stray = FlowBuilder::sequential("stray")
        .step("mk", DglOperation::CreateCollection { path: "/nowhere".into() })
        .build()
        .unwrap();
    let err = net.route(DataGridRequest::flow("stray", "arun", stray)).unwrap_err();
    println!("stray request correctly refused: {err}");
}
