//! `dgf_lint` — lint DGL flow documents from the command line.
//!
//! ```sh
//! # Lint one or more DGL <flow> XML documents against a demo grid:
//! cargo run --example dgf_lint -- tests/lint_corpus/undef_var.xml
//!
//! # No arguments: print the diagnostic catalog, then lint a
//! # deliberately broken demo flow.
//! cargo run --example dgf_lint
//! ```
//!
//! Exit status is 1 when any linted flow has error-severity
//! diagnostics (the same flows the DfMS submit gate would refuse), 0
//! otherwise. See `docs/LINTING.md` for every code.

use datagridflows::lint::{lint_with_grid, GridContext, CATALOG};
use datagridflows::prelude::*;

fn demo_flow() -> Flow {
    // One defect per pass: an undefined variable (DGF001), a constant
    // while loop (DGF012), and an unknown storage resource (DGF020).
    FlowBuilder::sequential("demo")
        .var("unused", "1")
        .flow(
            FlowBuilder::while_loop("spin", "true")
                .unwrap()
                .step("poke", DglOperation::Notify { message: "hello ${who}".into() })
                .build()
                .unwrap(),
        )
        .flow(
            FlowBuilder::sequential("land")
                .step(
                    "put",
                    DglOperation::Ingest {
                        path: "/demo/data".into(),
                        size: "1000".into(),
                        resource: "nowhere-disk".into(),
                    },
                )
                .build()
                .unwrap(),
        )
        .build()
        .unwrap()
}

fn print_report(report: &ValidationReport) {
    let verdict = if report.valid { "ok" } else { "REJECTED" };
    println!(
        "flow `{}`: {verdict} — {} error(s), {} warning(s)",
        report.flow,
        report.errors(),
        report.warnings()
    );
    for d in &report.diagnostics {
        println!("  {d}");
        if !d.hint.is_empty() {
            println!("      hint: {}", d.hint);
        }
    }
}

fn main() {
    // The reference grid the feasibility pass checks against: the same
    // two-site mesh the examples and docs use, with open SLAs.
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
    let infra = datagridflows::scheduler::InfraDescription::open();
    let ctx = GridContext { topology: &topology, infra: &infra, vo: None };

    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        println!("{} catalogued diagnostics:", CATALOG.len());
        for c in CATALOG {
            println!("  {} {:<8} {} — {}", c.code, format!("{}", c.severity), c.title, c.summary);
        }
        println!();
        let report = lint_with_grid(&demo_flow(), &ctx);
        print_report(&report);
        return;
    }

    let mut failed = false;
    for path in &paths {
        let xml = match std::fs::read_to_string(path) {
            Ok(xml) => xml,
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
                continue;
            }
        };
        let flow = datagridflows::xml::parse(&xml)
            .map_err(|e| e.to_string())
            .and_then(|e| Flow::from_element(&e).map_err(|e| e.to_string()));
        match flow {
            Ok(flow) => {
                let report = lint_with_grid(&flow, &ctx);
                print_report(&report);
                failed |= !report.valid;
            }
            Err(e) => {
                eprintln!("{path}: not a DGL flow document: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
