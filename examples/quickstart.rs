//! Quickstart: stand up a simulated datagrid, submit a DGL flow, watch
//! it run, and query status + provenance.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Long-run flows usually want to survive a server crash too: see
//! `examples/dgf_recover.rs` for the same engine with a write-ahead
//! journal attached, hard-killed mid-flight and recovered
//! (`docs/RECOVERY.md` is the operator guide).

use datagridflows::prelude::*;

fn main() {
    // 1. A simulated grid: three fully-meshed sites, each with
    //    parallel-fs / disk / archive storage and a cluster.
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 3 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("arun", topology.domain_ids().next().unwrap()));
    users.make_admin("arun").unwrap();
    let grid = DataGrid::new(topology, users);

    // 2. The DfMS server, planning with the §2.3 cost model.
    let mut dfms = Dfms::new(grid, Scheduler::new(PlannerKind::CostBased, 42));

    // 3. A datagridflow in DGL: ingest a dataset, checksum it, replicate
    //    it off-site, and notify.
    let flow = FlowBuilder::sequential("quickstart")
        .step("mk", DglOperation::CreateCollection { path: "/home".into() })
        .step(
            "ingest",
            DglOperation::Ingest { path: "/home/survey.dat".into(), size: "500000000".into(), resource: "site0-disk".into() },
        )
        .step("register-digest", DglOperation::Checksum { path: "/home/survey.dat".into(), resource: None, register: true })
        .step(
            "offsite-copy",
            DglOperation::Replicate { path: "/home/survey.dat".into(), src: None, dst: "site1-archive".into() },
        )
        .step("verify-copy", DglOperation::Checksum { path: "/home/survey.dat".into(), resource: Some("site1-archive".into()), register: false })
        .step("done", DglOperation::Notify { message: "survey.dat is safe on two sites".into() })
        .build()
        .expect("flow is structurally valid");

    // The same flow as a DGL XML document (what the wire carries):
    let request = DataGridRequest::flow("quickstart-1", "arun", flow).with_description("quickstart demo");
    println!("--- DGL request document ---\n{}", request.to_xml());

    // 4. Submit asynchronously, pump the simulation, poll status.
    let txn = dfms.submit(request.asynchronous()).expect("valid request");
    dfms.pump();

    let report = dfms.status(&txn, None).expect("transaction exists");
    println!("--- final status ---\n{report}");
    for (node, name, state) in &report.children {
        println!("  {node:6} {name:16} {state}");
    }

    // 5. Inspect the world the flow built.
    let obj = dfms.grid().stat_object(&LogicalPath::parse("/home/survey.dat").unwrap()).unwrap();
    println!("--- object ---");
    println!("  path      {}", obj.path);
    println!("  size      {} bytes", obj.size);
    println!("  replicas  {}", obj.replicas.len());
    println!("  checksum  {}", obj.checksum.as_deref().unwrap_or("-"));

    println!("--- notifications ---");
    for n in dfms.notifications() {
        println!("  [{}] {}", n.time, n.message);
    }

    println!("--- provenance (queryable years later) ---");
    for record in dfms.provenance().query(&ProvenanceQuery::transaction(&txn)) {
        println!("  {:6} {:16} {:12} {:?}", record.node, record.name, record.verb, record.outcome);
    }
    println!("simulated wall clock: {}", dfms.now());
    assert_eq!(report.state, RunState::Completed);
}
