//! The UCSD Libraries data-integrity scenario (paper §4): "Datagridflow
//! for data-integrity and MD5 calculation was described in DGL and
//! executed by SRB Matrix servers for the UCSD Library data."
//!
//! A library collection is ingested, canonical MD5 digests are
//! registered, a replica silently corrupts, and the nightly integrity
//! sweep — a DGL for-each flow — finds it, invalidates the bad copy, and
//! repairs it from a good replica.
//!
//! ```sh
//! cargo run --example ucsd_md5_integrity
//! ```

use datagridflows::prelude::*;

fn main() {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("jonw", topology.domain_ids().next().unwrap()));
    users.make_admin("jonw").unwrap();
    let mut dfms = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 7));

    // --- Ingest the library collection with registered digests and an
    //     off-site replica per document. --------------------------------
    let ingest = {
        let mut b = FlowBuilder::sequential("ucsd-ingest")
            .step("mk", DglOperation::CreateCollection { path: "/ucsd-library".into() });
        for i in 0..6 {
            let path = format!("/ucsd-library/etd{i:03}.pdf");
            b = b
                .step(format!("put{i}"), DglOperation::Ingest { path: path.clone(), size: "20000000".into(), resource: "site0-disk".into() })
                .step(format!("sum{i}"), DglOperation::Checksum { path: path.clone(), resource: None, register: true })
                .step(format!("cp{i}"), DglOperation::Replicate { path, src: None, dst: "site1-disk".into() });
        }
        b.build().unwrap()
    };
    let txn = dfms.submit_flow("jonw", ingest).unwrap();
    dfms.pump();
    assert_eq!(dfms.status(&txn, None).unwrap().state, RunState::Completed);
    println!("ingested 6 documents with registered MD5 digests and 2 replicas each");

    // --- A replica rots on disk. ---------------------------------------
    let victim = LogicalPath::parse("/ucsd-library/etd003.pdf").unwrap();
    let bad_digest = dfms.grid_mut().corrupt_replica(&victim, "site1-disk").unwrap();
    println!("silently corrupted {victim} on site1-disk (digest now {bad_digest})");

    // --- The nightly integrity sweep, in DGL. --------------------------
    // Verify each document's site1 replica; on failure the step retries
    // (which re-plans), but a corrupt replica keeps failing — the sweep
    // marks it and continues (ignore policy), leaving repair to the next
    // phase.
    let sweep = FlowBuilder::for_each_in_collection("nightly-integrity", "doc", "/ucsd-library")
        .add_step(
            Step::new(
                "verify",
                DglOperation::Checksum { path: "${doc}".into(), resource: Some("site1-disk".into()), register: false },
            )
            .with_error_policy(ErrorPolicy::Ignore),
        )
        .build()
        .unwrap();
    let txn = dfms.submit_flow("jonw", sweep).unwrap();
    dfms.pump();
    let report = dfms.status(&txn, None).unwrap();
    println!("sweep finished: {report}");

    // The corrupted replica is now invalid in the catalog.
    let obj = dfms.grid().stat_object(&victim).unwrap();
    let site1 = dfms.grid().resolve_resource("site1-disk").unwrap();
    let invalid = !obj.replica_on(site1).unwrap().valid;
    println!("replica of {victim} on site1-disk valid = {}", !invalid);
    assert!(invalid, "sweep invalidated the corrupted copy");

    // --- Repair: trim the bad replica, re-replicate from the good one,
    //     verify again. --------------------------------------------------
    let repair = FlowBuilder::sequential("repair")
        .step("drop-bad", DglOperation::Trim { path: victim.to_string(), resource: "site1-disk".into() })
        .step("recopy", DglOperation::Replicate { path: victim.to_string(), src: Some("site0-disk".into()), dst: "site1-disk".into() })
        .step("reverify", DglOperation::Checksum { path: victim.to_string(), resource: Some("site1-disk".into()), register: false })
        .step("note", DglOperation::Notify { message: "repaired etd003".into() })
        .build()
        .unwrap();
    let txn = dfms.submit_flow("jonw", repair).unwrap();
    dfms.pump();
    assert_eq!(dfms.status(&txn, None).unwrap().state, RunState::Completed);
    println!("repair flow completed; replica verified clean");

    // --- Audit trail ----------------------------------------------------
    let mismatches = dfms
        .grid()
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::ChecksumMismatch)
        .count();
    println!("audit: {mismatches} checksum mismatch event(s) on record");
    println!("provenance records: {}", dfms.provenance().len());
    println!("simulated time elapsed: {}", dfms.now());
}
