//! The BBSRC-CCLRC imploding star (paper §2.1): "information from
//! multiple hospitals in United Kingdom are finally archived into an
//! archiver site."
//!
//! Eight hospital domains each hold scan collections; a weekend-windowed
//! ILM flow pulls everything into the archiver's staging disk, verifies
//! integrity, migrates it to tape, and releases hospital space.
//!
//! ```sh
//! cargo run --example bbsrc_imploding_star
//! ```

use datagridflows::prelude::*;

fn main() {
    let hospitals = 8;
    let scans_per_hospital = 5;
    let topology = GridBuilder::preset(GridPreset::ImplodingStar { sources: hospitals });
    let mut users = UserRegistry::new();
    users.register(Principal::new("archivist", topology.domain_by_name("archiver").unwrap()));
    users.make_admin("archivist").unwrap();
    let mut dfms = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 3));

    // Seed hospital collections (Monday morning).
    let seed = {
        let mut b = FlowBuilder::sequential("seed");
        for h in 0..hospitals {
            let coll = format!("/hospital{h:02}");
            b = b.step(format!("mk{h}"), DglOperation::CreateCollection { path: coll.clone() });
            for s in 0..scans_per_hospital {
                b = b.step(
                    format!("put{h}-{s}"),
                    DglOperation::Ingest {
                        path: format!("{coll}/scan{s}.dcm"),
                        size: "400000000".into(), // 400 MB MRI series
                        resource: format!("hospital{h:02}-disk"),
                    },
                );
            }
        }
        b.build().unwrap()
    };
    let txn = dfms.submit_flow("archivist", seed).unwrap();
    dfms.pump();
    assert_eq!(dfms.status(&txn, None).unwrap().state, RunState::Completed);
    println!(
        "seeded {} scans across {hospitals} hospitals ({:.1} GB logical)",
        hospitals * scans_per_hospital,
        dfms.grid().stats().logical_bytes as f64 / 1e9
    );

    // Build the imploding-star flow from the grid's current contents.
    let sources: Vec<(LogicalPath, String)> = (0..hospitals)
        .map(|h| (LogicalPath::parse(&format!("/hospital{h:02}")).unwrap(), format!("hospital{h:02}-disk")))
        .collect();
    let star = imploding_star_flow(dfms.grid(), &sources, "archiver-disk", "archiver-tape").unwrap();
    println!("imploding-star flow: {} per-object pipelines", star.children.len());

    // Run it in the weekend window only.
    let options = RunOptions { window: Some(ScheduleWindow::weekends()), ..Default::default() };
    let txn = dfms.submit_flow_with("archivist", star, options).unwrap();

    // Pump through the work week: nothing may move.
    dfms.pump_until(SimTime::from_days(4)); // through Thursday
    let moved_midweek = dfms
        .grid()
        .objects_on(dfms.grid().resolve_resource("archiver-tape").unwrap())
        .len();
    println!("by Friday: {moved_midweek} scans on tape (window closed — expected 0)");
    assert_eq!(moved_midweek, 0);

    // Pump through the weekend.
    dfms.pump_until(SimTime::from_days(7));
    let report = dfms.status(&txn, None).unwrap();
    let on_tape = dfms
        .grid()
        .objects_on(dfms.grid().resolve_resource("archiver-tape").unwrap())
        .len();
    println!("after the weekend: state={}, {on_tape} scans on tape", report.state);

    // Hospital disks were released.
    let mut remaining = 0;
    for h in 0..hospitals {
        let sid = dfms.grid().resolve_resource(&format!("hospital{h:02}-disk")).unwrap();
        remaining += dfms.grid().objects_on(sid).len();
    }
    println!("scans still occupying hospital disks: {remaining}");

    let m = dfms.metrics();
    println!("\nmetrics: {} DGMS ops, {:.1} GB moved, clock {}", m.dgms_ops, m.bytes_moved as f64 / 1e9, dfms.now());
    println!("provenance records for the archival run: {}", dfms.provenance().query(&ProvenanceQuery::transaction(&txn)).len());
    assert_eq!(report.state, RunState::Completed);
    assert_eq!(on_tape, (hospitals * scans_per_hospital) as usize);
    assert_eq!(remaining, 0);
}
