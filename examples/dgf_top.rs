//! `dgf_top` — a one-shot "top"-style console snapshot of a running
//! grid, rendered from the live telemetry subsystem: flow states and
//! the health watchdog, fullest storages, hottest links, and engine
//! counters, all in deterministic simulation time.
//!
//! ```sh
//! cargo run --example dgf_top
//! # append the dgf-prof section: top phases by cumulative wall time
//! # plus the server-lock contention summary:
//! cargo run --example dgf_top -- --profile
//! ```
//!
//! The scenario injects a simgrid failure (one cluster offline, the
//! other saturated by local load) so one flow shows up as `Stalled`
//! with the sim-time of its last completed step. See
//! `docs/OBSERVABILITY.md` for the telemetry model.

use datagridflows::prelude::*;

fn bar(fraction: f64, width: usize) -> String {
    let filled = ((fraction.clamp(0.0, 1.0)) * width as f64).round() as usize;
    format!("{}{}", "#".repeat(filled), "-".repeat(width - filled))
}

fn main() {
    // A two-site grid with a telemetry sampler on a 30 s sim-time
    // cadence and an aggressive watchdog (slow after 2 min without a
    // completed step, stalled after 5).
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("operator", topology.domain_ids().next().unwrap()));
    users.make_admin("operator").unwrap();
    let mut dfms = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 42));
    dfms.configure_telemetry(
        SamplingConfig { interval: Duration::from_secs(30), capacity: 512 },
        HealthConfig { slow_after: Duration::from_secs(120), stalled_after: Duration::from_secs(300) },
    );

    // Two healthy flows complete: an ingest + analysis + archive, and a
    // replication fan-out. They leave bytes on storage and transfer
    // history on the WAN link.
    for (i, dst) in [(0, "site1-disk"), (1, "site1-archive")] {
        let base = format!("/pipe{i}");
        let flow = FlowBuilder::sequential(format!("pipeline-{i}"))
            .step("mk", DglOperation::CreateCollection { path: base.clone() })
            .step("put", DglOperation::Ingest { path: format!("{base}/in"), size: "500000000".into(), resource: "site0-pfs".into() })
            .step(
                "run",
                DglOperation::Execute {
                    code: "analyze".into(),
                    nominal_secs: "120".into(),
                    resource_type: None,
                    inputs: vec![format!("{base}/in")],
                    outputs: vec![(format!("{base}/out"), "20000000".into())],
                },
            )
            .step("cp", DglOperation::Replicate { path: format!("{base}/out"), src: None, dst: dst.into() })
            .build()
            .unwrap();
        let txn = dfms.submit_flow("operator", flow).unwrap();
        dfms.pump();
        assert_eq!(dfms.status(&txn, None).unwrap().state, RunState::Completed);
    }

    // Failure injection: site1's cluster drops off the grid and site0's
    // fills up with local (non-grid) load. The next Execute step can
    // never place, so its flow queues and retries while sim time runs.
    let compute_ids: Vec<_> = dfms.grid().topology().compute_ids().collect();
    FailureEvent::Compute(compute_ids[1], false).apply(dfms.grid_mut().topology_mut());
    let slots = dfms.grid().topology().compute(compute_ids[0]).slots;
    dfms.grid_mut().topology_mut().compute_mut(compute_ids[0]).busy = slots;
    let stuck = FlowBuilder::sequential("nightly-derivation")
        .with_deadline_secs(180)
        .step("mk", DglOperation::CreateCollection { path: "/stuck".into() })
        .step("put", DglOperation::Ingest { path: "/stuck/in".into(), size: "1000000".into(), resource: "site0-disk".into() })
        .step(
            "run",
            DglOperation::Execute {
                code: "derive".into(),
                nominal_secs: "60".into(),
                resource_type: None,
                inputs: vec!["/stuck/in".into()],
                outputs: vec![("/stuck/out".into(), "1000".into())],
            },
        )
        .build()
        .unwrap();
    let stuck_txn = dfms.submit_flow("operator", stuck).unwrap();
    let start = dfms.now();
    dfms.pump_until(start + Duration::from_secs(400));

    // ---- render the snapshot ----------------------------------------
    let now = dfms.now();
    let topo = dfms.grid().topology();
    println!("dgf top — grid snapshot @ {:.1}s sim-time", now.0 as f64 / 1e6);
    println!("{}", "=".repeat(72));

    // Flows by state, from the sampled flow-state series (stable label
    // set: every state is always present, zeros included).
    let count_of = |state: &str| {
        dfms.obs()
            .ts_series("flows.state", state)
            .and_then(|s| s.last())
            .unwrap_or(0)
    };
    println!("\nflows:");
    let states = ["pending", "running", "paused", "completed", "failed", "stopped", "skipped"];
    let line = states.iter().map(|s| format!("{s}={}", count_of(s))).collect::<Vec<_>>().join("  ");
    println!("  {line}");

    // The watchdog table: every watched flow with its health state and
    // the sim-time watermark of its last completed step.
    println!("\nwatchdog ({} watched, {} stalled):", dfms.obs().health_flows().len(), {
        dfms.obs().health_flows().iter().filter(|f| f.state == HealthState::Stalled).count()
    });
    println!("  {:<8} {:<8} {:>16} {:>12}", "txn", "state", "last-progress", "idle");
    for flow in dfms.obs().health_flows() {
        let idle_s = (now.0.saturating_sub(flow.last_progress.0)) as f64 / 1e6;
        println!(
            "  {:<8} {:<8} {:>14.1}s {:>11.1}s",
            flow.txn,
            flow.state.to_string(),
            flow.last_progress.0 as f64 / 1e6,
            idle_s
        );
    }

    // Fullest storages, straight from the simulated topology.
    println!("\nstorage (fullest first):");
    let mut storages: Vec<_> = topo.storage_ids().map(|id| topo.storage(id)).collect();
    storages.sort_by(|a, b| {
        let fa = a.used as f64 / a.capacity.max(1) as f64;
        let fb = b.used as f64 / b.capacity.max(1) as f64;
        fb.partial_cmp(&fa).unwrap().then_with(|| a.name.cmp(&b.name))
    });
    for s in storages.iter().take(4) {
        let frac = s.used as f64 / s.capacity.max(1) as f64;
        println!(
            "  {:<16} [{}] {:>6.2}% of {:>6.1}GB{}",
            s.name,
            bar(frac, 24),
            frac * 100.0,
            s.capacity as f64 / 1e9,
            if s.online { "" } else { "  OFFLINE" }
        );
    }

    // Hottest links, from the sampled link-utilization series: peak and
    // current concurrent transfers per WAN link.
    println!("\nlinks (peak concurrent transfers):");
    let mut links: Vec<_> = dfms
        .obs()
        .ts_rollups()
        .into_iter()
        .filter(|(name, _, _)| name == "link.active_transfers")
        .collect();
    links.sort_by(|a, b| b.2.max.cmp(&a.2.max).then_with(|| a.1.cmp(&b.1)));
    for (_, label, rollup) in links {
        println!("  {:<16} peak={:<3} now={:<3} samples={}", label, rollup.max, rollup.last, rollup.points);
    }

    // Engine counters, the classic summary line.
    let m = dfms.metrics();
    println!(
        "\nengine: {} submitted / {} completed / {} failed · {} steps · {} dgms ops · {:.1}MB moved",
        m.runs_submitted,
        m.runs_completed,
        m.runs_failed,
        m.steps_executed,
        m.dgms_ops,
        m.bytes_moved as f64 / 1e6
    );

    // The same numbers leave the process as a Prometheus-style scrape
    // over DGL (`TelemetryQuery::scrape()`); print a taste of it.
    let scrape = dfms.telemetry_scrape();
    let stalled_line = scrape
        .lines()
        .find(|l| l.contains("flows_stalled"))
        .expect("the stalled gauge is always scraped");
    println!("\nscrape: {} bytes; e.g. `{stalled_line}`", scrape.len());

    // The stalled flow really is the injected one.
    let health = dfms.obs().health_flow(&stuck_txn).expect("stuck flow is watched");
    assert_eq!(health.state, HealthState::Stalled);
    println!("\n{} is {} — last completed step at {:.1}s sim-time", stuck_txn, health.state, health.last_progress.0 as f64 / 1e6);

    // ---- the dgf-why section: blame and SLA burn ---------------------
    // Top bottlenecks aggregate critical-path time across the completed
    // flows; the stuck flow's deadline alert is firing by now.
    let why = dfms.why_query(&WhyQuery::new().with_top_k(3).with_paths(false));
    println!("\nwhy (top bottlenecks over {:.1}s of attributed critical-path time):", why.attributed_us as f64 / 1e6);
    for b in &why.bottlenecks {
        println!(
            "  {:<20} {:<24} {:>8.1}s {:>6.1}%",
            b.state.to_string(),
            b.resource,
            b.total_us as f64 / 1e6,
            b.share_ppm as f64 / 1e4
        );
    }
    let firing: Vec<_> = why.firing().collect();
    println!("alerts firing: {}", firing.len());
    for a in &firing {
        println!(
            "  {:<8} class={:<6} burn={:.2}x budget — deadline was {:.1}s, flow still running",
            a.txn,
            a.class,
            a.burn_ppm as f64 / 1e6,
            a.deadline_us as f64 / 1e6
        );
    }
    assert!(firing.iter().any(|a| a.txn == stuck_txn), "the stuck flow's SLA must be firing");

    // ---- --profile: the dgf-prof section ----------------------------
    // Wrap the engine in the threaded server front-end, drive a few
    // concurrent clients so the contention histograms fill, then pull
    // the phase tree and lock-wait summary over the DGL wire.
    if std::env::args().any(|a| a == "--profile") {
        let server = DfmsServer::start(dfms);
        let mut joins = Vec::new();
        for i in 0..4 {
            let handle = server.handle();
            joins.push(std::thread::spawn(move || {
                let q = DataGridRequest::telemetry(format!("t{i}"), "operator", TelemetryQuery::scrape()).to_xml();
                handle.request(&q).expect("server alive");
            }));
        }
        for join in joins {
            join.join().unwrap();
        }
        let report = server
            .handle()
            .profile(ProfileQuery::new().with_folded(true))
            .expect("profile over the wire");

        println!("\nprofile (top phases by cumulative wall time; sim-time is the deterministic column):");
        let mut phases = report.phases;
        phases.sort_by(|a, b| b.wall_ns.cmp(&a.wall_ns).then_with(|| a.phase.cmp(&b.phase)));
        println!("  {:<28} {:>7} {:>10} {:>12}", "phase", "calls", "sim-ms", "wall-ms");
        for p in phases.iter().take(8) {
            let label = format!("{}{}", "· ".repeat(p.depth as usize), p.phase);
            println!(
                "  {:<28} {:>7} {:>10.1} {:>12.3}",
                label,
                p.calls,
                p.sim_us as f64 / 1e3,
                p.wall_ns as f64 / 1e6
            );
        }
        if let Some(folded) = &report.folded {
            println!("  ({} folded-stack lines; pipe to flamegraph.pl for an SVG)", folded.lines().count());
        }

        let c = report.contention.expect("server-side profile carries contention");
        println!("\nserver contention: {} enqueued / {} served, queue depth <= {}", c.enqueued, c.served, c.queue_depth_max);
        for h in &c.hists {
            println!(
                "  {:<14} n={:<4} mean={:>8}ns min={:>8}ns max={:>8}ns",
                h.name,
                h.count,
                h.mean_ns(),
                h.min_ns,
                h.max_ns
            );
        }
        let _ = server.shutdown();
    }
}
