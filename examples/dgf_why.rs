//! `dgf_why` — the attribution console: *why is this flow slow?*
//!
//! ```sh
//! cargo run --example dgf_why
//! # persist the wire-format report (the verify.sh determinism gate
//! # runs the example twice and byte-compares the two files):
//! DGF_WHY_OUT=/tmp/why.xml cargo run --example dgf_why
//! ```
//!
//! The scenario manufactures one flow per wait-state family and then
//! asks the engine to explain each of them:
//!
//! * `genome-xsite` — input lands at site0 but the job is pinned to
//!   site1's cluster, so the critical path crosses the WAN
//!   (`transfer-on-link`);
//! * `quarterly-report` — both clusters are saturated past its 120 s
//!   deadline (`queued-for-cluster`; its SLA alert fires, then resolves
//!   *breached* when the flow finally completes);
//! * `archive-sweep` — submitted in the morning with an off-hours
//!   schedule window, so it idles until 20:00 (`window-closed`);
//! * `slow-migration` — still queued at snapshot time, so its alert is
//!   caught mid-flight in the `firing` state.
//!
//! Every critical path asserts the partition invariant: the segment
//! durations sum exactly to the flow makespan. The report itself is
//! fetched over the DGL wire (`<whyQuery>` → `<whyReport>`) through the
//! threaded server front-end. See `docs/OBSERVABILITY.md`.

use datagridflows::prelude::*;

fn exec(code: &str, secs: &str, pin: Option<&str>, input: &str, output: &str) -> DglOperation {
    DglOperation::Execute {
        code: code.into(),
        nominal_secs: secs.into(),
        resource_type: pin.map(Into::into),
        inputs: vec![input.into()],
        outputs: vec![(output.into(), "50000000".into())],
    }
}

fn main() {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("operator", topology.domain_ids().next().unwrap()));
    users.make_admin("operator").unwrap();
    let mut dfms = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 42));

    // Server-side objective: everything tagged class=nightly must land
    // within 30 simulated minutes of submission.
    dfms.set_class_objective("nightly", Duration::from_secs(1800));

    // ---- 1. the WAN-bound flow --------------------------------------
    // Ingest at site0, compute pinned to site1: the scheduler must
    // stage 2 GB across the mesh before the job can start.
    let xsite = FlowBuilder::sequential("genome-xsite")
        .with_class("nightly")
        .step("mk", DglOperation::CreateCollection { path: "/xsite".into() })
        .step(
            "put",
            DglOperation::Ingest { path: "/xsite/in".into(), size: "2000000000".into(), resource: "site0-disk".into() },
        )
        .step("run", exec("align", "120", Some("compute@site1"), "/xsite/in", "/xsite/out"))
        .step("cp", DglOperation::Replicate { path: "/xsite/out".into(), src: None, dst: "site1-archive".into() })
        .build()
        .unwrap();
    let xsite_txn = dfms.submit_flow("operator", xsite).unwrap();
    dfms.pump();
    assert_eq!(dfms.status(&xsite_txn, None).unwrap().state, RunState::Completed);

    // ---- 2. the queue-bound flow ------------------------------------
    // Saturate every cluster with local load, submit with a 120 s
    // deadline, and hold the squeeze for 150 s: the alert fires at
    // deadline, and the flow finishes late → resolved *breached*.
    let compute_ids: Vec<_> = dfms.grid().topology().compute_ids().collect();
    let saturate = |dfms: &mut Dfms, on: bool| {
        for id in &compute_ids {
            let slots = dfms.grid().topology().compute(*id).slots;
            dfms.grid_mut().topology_mut().compute_mut(*id).busy = if on { slots } else { 0 };
        }
    };
    saturate(&mut dfms, true);
    let queued = FlowBuilder::sequential("quarterly-report")
        .with_deadline_secs(120)
        .step("mk", DglOperation::CreateCollection { path: "/q".into() })
        .step(
            "put",
            DglOperation::Ingest { path: "/q/in".into(), size: "1000000".into(), resource: "site0-pfs".into() },
        )
        .step("run", exec("rollup", "60", None, "/q/in", "/q/out"))
        .build()
        .unwrap();
    let queued_txn = dfms.submit_flow("operator", queued).unwrap();
    let squeeze = dfms.now();
    dfms.pump_until(squeeze + Duration::from_secs(150));
    saturate(&mut dfms, false);
    dfms.pump_until_terminal(&queued_txn);
    assert_eq!(dfms.status(&queued_txn, None).unwrap().state, RunState::Completed);

    // ---- 3. the window-bound flow -----------------------------------
    // Submitted at 08:00 with an off-hours window: pure data movement,
    // parked until the window opens at 20:00.
    let morning = SimTime(8 * 3600 * 1_000_000);
    if dfms.now() < morning {
        dfms.pump_until(morning);
    }
    let gated = FlowBuilder::sequential("archive-sweep")
        .step("mk", DglOperation::CreateCollection { path: "/cold".into() })
        .step(
            "put",
            DglOperation::Ingest { path: "/cold/in".into(), size: "300000000".into(), resource: "site0-pfs".into() },
        )
        .step("cp", DglOperation::Replicate { path: "/cold/in".into(), src: None, dst: "site1-archive".into() })
        .build()
        .unwrap();
    let gated_txn = dfms
        .submit_flow_with(
            "operator",
            gated,
            RunOptions { window: Some(ScheduleWindow::off_hours(20, 6)), ..Default::default() },
        )
        .unwrap();

    // ---- 4. the still-firing flow -----------------------------------
    // Saturate again and leave it stuck: by snapshot time its 60 s
    // deadline is long gone and the alert is caught mid-fire.
    saturate(&mut dfms, true);
    let slow = FlowBuilder::sequential("slow-migration")
        .with_deadline_secs(60)
        .step("mk", DglOperation::CreateCollection { path: "/slow".into() })
        .step(
            "put",
            DglOperation::Ingest { path: "/slow/in".into(), size: "1000000".into(), resource: "site0-disk".into() },
        )
        .step("run", exec("migrate", "60", None, "/slow/in", "/slow/out"))
        .build()
        .unwrap();
    let slow_txn = dfms.submit_flow("operator", slow).unwrap();
    dfms.pump_until_terminal(&gated_txn);
    assert_eq!(dfms.status(&gated_txn, None).unwrap().state, RunState::Completed);

    // ---- fetch the report over the DGL wire --------------------------
    let server = DfmsServer::start(dfms);
    let report = server.handle().why(WhyQuery::new().with_top_k(6)).expect("why over the wire");
    let _ = server.shutdown();

    // ---- render ------------------------------------------------------
    println!("dgf why — attribution report @ {:.1}s sim-time", report.time_us as f64 / 1e6);
    println!("{}", "=".repeat(72));
    println!(
        "\n{} flows analyzed · {:.1}s of critical-path time attributed",
        report.flows_analyzed,
        report.attributed_us as f64 / 1e6
    );

    for p in &report.paths {
        // The tentpole invariant: the critical path partitions the
        // makespan exactly — every sim-µs is accounted for, once.
        assert_eq!(p.segments_sum_us(), p.makespan_us(), "critical path must partition the makespan of {}", p.txn);
        let caused = p.caused_by.as_deref().map(|c| format!("  caused-by={c}")).unwrap_or_default();
        println!("\n{} ({}) — makespan {:.1}s{}", p.txn, p.flow, p.makespan_us() as f64 / 1e6, caused);
        println!("  {:>9} {:>9}  {:<20} {:<24} {:>6}", "at", "for", "state", "blamed resource", "share");
        for s in &p.segments {
            let dur = s.until_us - s.from_us;
            println!(
                "  {:>8.1}s {:>8.1}s  {:<20} {:<24} {:>5.1}%",
                (s.from_us - p.start_us) as f64 / 1e6,
                dur as f64 / 1e6,
                s.state.to_string(),
                s.resource,
                dur as f64 * 100.0 / p.makespan_us().max(1) as f64
            );
        }
    }

    println!("\nbottlenecks (grid-wide, by critical-path time):");
    for b in &report.bottlenecks {
        println!(
            "  {:<20} {:<24} {:>8.1}s {:>6.1}%",
            b.state.to_string(),
            b.resource,
            b.total_us as f64 / 1e6,
            b.share_ppm as f64 / 1e4
        );
    }

    println!("\nSLA alerts:");
    println!("  {:<8} {:<18} {:<9} {:<8} {:>7} outcome", "txn", "flow", "state", "class", "burn");
    for a in &report.alerts {
        let outcome = if a.resolved_at_us.is_some() {
            if a.breached { "breached".to_string() } else { "met".to_string() }
        } else if let Some(fired) = a.fired_at_us {
            format!("firing since {:.1}s", fired as f64 / 1e6)
        } else {
            "within budget".to_string()
        };
        println!(
            "  {:<8} {:<18} {:<9} {:<8} {:>6.2}x {}",
            a.txn,
            a.flow,
            a.state.to_string(),
            a.class,
            a.burn_ppm as f64 / 1e6,
            outcome
        );
    }

    // The scenario produced exactly the story the console claims.
    let has = |txn: &str, state: WaitState| {
        report.paths.iter().any(|p| p.txn == txn && p.segments.iter().any(|s| s.state == state))
    };
    assert!(has(&xsite_txn, WaitState::TransferOnLink), "xsite's path crosses the WAN");
    assert!(has(&queued_txn, WaitState::QueuedForCluster), "the squeezed flow queued");
    assert!(has(&gated_txn, WaitState::WindowClosed), "the off-hours flow waited for its window");
    let alert = |txn: &str| report.alerts.iter().find(|a| a.txn == txn).expect("alert registered");
    assert!(alert(&queued_txn).state == AlertState::Resolved && alert(&queued_txn).breached);
    assert!(alert(&xsite_txn).state == AlertState::Resolved && !alert(&xsite_txn).breached);
    assert_eq!(alert(&slow_txn).state, AlertState::Firing, "slow-migration is still stuck");
    let shares: u64 = report.bottlenecks.iter().map(|b| b.share_ppm).sum();
    assert!(shares <= 1_000_000, "shares are parts-per-million of the attributed total");

    // Wire-format dump for the byte-determinism gate in verify.sh.
    if let Ok(path) = std::env::var("DGF_WHY_OUT") {
        std::fs::write(&path, report.to_element().to_xml_pretty()).expect("write why report");
        println!("\nwrote wire-format report to {path}");
    }
}
