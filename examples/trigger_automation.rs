//! Datagrid triggers (paper §2.2): metadata on ingest, notification on
//! specific file types, metadata-driven auto-replication, and the
//! multi-user ordering question.
//!
//! ```sh
//! cargo run --example trigger_automation
//! ```

use datagridflows::prelude::*;

fn main() {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
    let mut users = UserRegistry::new();
    let d0 = topology.domain_ids().next().unwrap();
    users.register(Principal::new("curator", d0));
    users.register(Principal::new("alice", d0));
    users.register(Principal::new("bob", d0));
    users.make_admin("curator").unwrap();
    let mut dfms = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 1));
    let scope = LogicalPath::parse("/archive").unwrap();

    // §2.2 use case 1: "creating metadata when a file is created".
    let stamp = FlowBuilder::sequential("stamp")
        .step("meta", DglOperation::SetMetadata { path: "${event.path}".into(), attribute: "curated".into(), value: "true".into() })
        .build()
        .unwrap();
    dfms.triggers_mut().register(
        Trigger::new("stamp-on-ingest", "curator", scope.clone(), TriggerAction::Flow(stamp))
            .on(&[EventKind::ObjectIngested]),
    );

    // §2.2 use case 2: "sending notifications when specific types of
    // files are ingested" — big files only, via a Tcondition.
    dfms.triggers_mut().register(
        Trigger::new("big-file-alert", "curator", scope.clone(), TriggerAction::Notify("large object ${event.path} arrived".into()))
            .on(&[EventKind::ObjectIngested])
            .when(Expr::parse("object.size > 1000000000").unwrap()),
    );

    // §2.2 use case 3: "automating replication of certain data based on
    // their meta-data" — anything tagged class=master gets an off-site
    // copy, automatically.
    let auto_rep = FlowBuilder::sequential("auto-replicate")
        .add_step(
            Step::new(
                "cp",
                DglOperation::Replicate { path: "${event.path}".into(), src: None, dst: "site1-archive".into() },
            )
            .with_error_policy(ErrorPolicy::Ignore), // replica may already exist
        )
        .build()
        .unwrap();
    dfms.triggers_mut().register(
        Trigger::new("replicate-masters", "curator", scope.clone(), TriggerAction::Flow(auto_rep))
            .on(&[EventKind::MetadataSet])
            .when(Expr::parse("meta.class == 'master'").unwrap()),
    );

    // The §2.2 ordering question: alice and bob both trigger on the same
    // event; priority ordering decides who observes whose effects.
    *dfms.triggers_mut() = std::mem::take(dfms.triggers_mut()).with_policy(OrderingPolicy::Priority);
    dfms.triggers_mut().register(
        Trigger::new("alice-watch", "alice", scope.clone(), TriggerAction::Notify("alice saw ${event.path}".into()))
            .on(&[EventKind::ObjectIngested])
            .with_priority(1),
    );
    dfms.triggers_mut().register(
        Trigger::new("bob-watch", "bob", scope.clone(), TriggerAction::Notify("bob saw ${event.path}".into()))
            .on(&[EventKind::ObjectIngested])
            .with_priority(10),
    );

    // Drive the grid: ingest a small file, a big file, and tag a master.
    let work = FlowBuilder::sequential("ingest-day")
        .step("mk", DglOperation::CreateCollection { path: "/archive".into() })
        .step("small", DglOperation::Ingest { path: "/archive/notes.txt".into(), size: "1000".into(), resource: "site0-disk".into() })
        .step("big", DglOperation::Ingest { path: "/archive/film.mov".into(), size: "4000000000".into(), resource: "site0-disk".into() })
        .step("tag", DglOperation::SetMetadata { path: "/archive/film.mov".into(), attribute: "class".into(), value: "master".into() })
        .build()
        .unwrap();
    let txn = dfms.submit_flow("curator", work).unwrap();
    dfms.pump();
    assert_eq!(dfms.status(&txn, None).unwrap().state, RunState::Completed);

    println!("--- notifications (in firing order) ---");
    for n in dfms.notifications() {
        println!("  [{}] {} :: {}", n.time, n.source, n.message);
    }

    // The stamp trigger tagged both files.
    let curated = dfms.grid().query(&scope, &MetaQuery::Eq("curated".into(), "true".into()));
    println!("\ncurated objects: {curated:?}");
    assert_eq!(curated.len(), 2);

    // The auto-replication trigger copied the master off-site.
    let film = dfms.grid().stat_object(&LogicalPath::parse("/archive/film.mov").unwrap()).unwrap();
    println!("film.mov replicas: {}", film.replicas.len());
    assert_eq!(film.replicas.len(), 2);

    // Priority ordering put bob (priority 10) before alice (priority 1).
    let order: Vec<&str> = dfms
        .notifications()
        .iter()
        .filter(|n| n.message.contains("saw /archive/notes.txt"))
        .map(|n| n.source.as_str())
        .collect();
    println!("\nordering for the same event: {order:?}");
    assert_eq!(order, ["trigger:bob-watch", "trigger:alice-watch"]);

    let stats = dfms.triggers().stats();
    println!("\ntrigger engine: {} events seen, {} fired, {} suppressed", stats.events_seen, stats.fired, stats.suppressed_by_depth);
}
