#!/usr/bin/env bash
# Tier-1 verification: build, test, and a warnings-as-errors rustdoc
# pass over the whole workspace. CI and pre-merge both run this.
set -euo pipefail
cd "$(dirname "$0")/.."

# Build artifacts must never be committed.
if [ -n "$(git ls-files 'target/*')" ]; then
    echo "verify: target/ files are tracked in git; run 'git rm -r --cached target'" >&2
    exit 1
fi

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Documentation gates: the operator-facing crates must stay fully
# documented (missing_docs escalated to an error), and every relative
# markdown link in the guides and README must resolve.
for crate in dgf-journal dgf-obs dgf-dfms; do
    RUSTDOCFLAGS="-D warnings" cargo rustdoc -q -p "$crate" -- -D missing_docs
done
link_errors=0
for doc in README.md docs/*.md; do
    dir=$(dirname "$doc")
    # Relative link targets only: strip optional #anchors, skip URLs.
    for target in $(grep -oE '\]\([^)#]+[^)]*\)' "$doc" \
        | sed -e 's/^](//' -e 's/)$//' -e 's/#.*$//' \
        | grep -vE '^(https?:|mailto:|$)' | sort -u); do
        if [ ! -e "$dir/$target" ]; then
            echo "verify: $doc links to missing file $target" >&2
            link_errors=1
        fi
    done
done
[ "$link_errors" -eq 0 ] || exit 1

# Trace determinism: the observability suite must be stable across
# invocations, and two identically-seeded runs must export
# byte-identical Chrome trace JSON.
cargo test -q -p datagridflows --test observability
cargo test -q -p datagridflows --test observability
trace_a=$(mktemp) trace_b=$(mktemp)
scrape_a=$(mktemp) scrape_b=$(mktemp)
trap 'rm -f "$trace_a" "$trace_b" "$scrape_a" "$scrape_b"' EXIT
DGF_TRACE_OUT="$trace_a" cargo run -q --example observability >/dev/null
DGF_TRACE_OUT="$trace_b" cargo run -q --example observability >/dev/null
if ! cmp -s "$trace_a" "$trace_b"; then
    echo "verify: exported chrome traces differ between seeded reruns" >&2
    diff "$trace_a" "$trace_b" | head -20 >&2
    exit 1
fi

# Scrape determinism: two identically-seeded runs must render
# byte-identical telemetry scrapes (stable ordering, sim-time stamps).
DGF_SCRAPE_OUT="$scrape_a" cargo run -q --example observability >/dev/null
DGF_SCRAPE_OUT="$scrape_b" cargo run -q --example observability >/dev/null
if ! cmp -s "$scrape_a" "$scrape_b"; then
    echo "verify: telemetry scrapes differ between seeded reruns" >&2
    diff "$scrape_a" "$scrape_b" | head -20 >&2
    exit 1
fi

# Lint determinism: the static analyzer's report over the corpus must
# be byte-identical across two full CLI invocations (stable diagnostic
# ordering is part of the wire contract).
lint_a=$(mktemp) lint_b=$(mktemp)
trap 'rm -f "$trace_a" "$trace_b" "$scrape_a" "$scrape_b" "$lint_a" "$lint_b"' EXIT
cargo run -q --example dgf_lint -- tests/lint_corpus/*.xml >"$lint_a" || true
cargo run -q --example dgf_lint -- tests/lint_corpus/*.xml >"$lint_b" || true
if ! cmp -s "$lint_a" "$lint_b"; then
    echo "verify: dgf-lint reports differ between reruns over the corpus" >&2
    diff "$lint_a" "$lint_b" | head -20 >&2
    exit 1
fi
if ! grep -q 'DGF001' "$lint_a"; then
    echo "verify: dgf-lint corpus run did not surface DGF001; analyzer regressed" >&2
    exit 1
fi
cargo test -q -p datagridflows --test lint_corpus

# Crash-recovery determinism: the seeded crash/recover demo must report
# byte-identical state vs its uninterrupted control, twice over (the
# journal replay itself is deterministic), and the exhaustive
# kill-at-every-record-boundary suite must pass.
recover_a=$(mktemp) recover_b=$(mktemp)
trap 'rm -f "$trace_a" "$trace_b" "$scrape_a" "$scrape_b" "$lint_a" "$lint_b" "$recover_a" "$recover_b"' EXIT
cargo run -q --example dgf_recover >"$recover_a"
cargo run -q --example dgf_recover >"$recover_b"
if ! cmp -s "$recover_a" "$recover_b"; then
    echo "verify: crash-recovery runs differ between seeded reruns" >&2
    diff "$recover_a" "$recover_b" | head -20 >&2
    exit 1
fi
if ! grep -q 'recovery OK: crash at full flight, byte-identical state after reboot' "$recover_a"; then
    echo "verify: dgf_recover did not certify byte-identical recovery" >&2
    tail -5 "$recover_a" >&2
    exit 1
fi
if grep -qE 'divergences=[1-9]' "$recover_a"; then
    echo "verify: journal replay reported divergences" >&2
    exit 1
fi
cargo test -q -p datagridflows --test chaos kill_at_every_record_boundary

# Time-travel determinism: the scripted console demo (replay-to-
# ordinal, diff, bisect, verified Perfetto export) must be
# byte-identical across seeded reruns, and the bisections must land.
travel_a=$(mktemp) travel_b=$(mktemp)
trap 'rm -f "$trace_a" "$trace_b" "$scrape_a" "$scrape_b" "$lint_a" "$lint_b" "$recover_a" "$recover_b" "$travel_a" "$travel_b"' EXIT
cargo run -q --example dgf_time_travel >"$travel_a"
cargo run -q --example dgf_time_travel >"$travel_b"
if ! cmp -s "$travel_a" "$travel_b"; then
    echo "verify: time-travel console runs differ between seeded reruns" >&2
    diff "$travel_a" "$travel_b" | head -20 >&2
    exit 1
fi
if ! grep -q 'bisect stalled: first true at ordinal' "$travel_a"; then
    echo "verify: dgf_time_travel did not bisect the stall" >&2
    tail -5 "$travel_a" >&2
    exit 1
fi
if ! grep -q 'perfetto export: .* — verified' "$travel_a"; then
    echo "verify: dgf_time_travel perfetto export failed verification" >&2
    exit 1
fi

# Profile-structure determinism: the dgf-prof phase tree (wall/alloc
# fields zeroed; tree shape, call counts, sim-time totals kept) must be
# byte-identical across two identically-seeded runs.
profile_a=$(mktemp) profile_b=$(mktemp)
trap 'rm -f "$trace_a" "$trace_b" "$scrape_a" "$scrape_b" "$lint_a" "$lint_b" "$recover_a" "$recover_b" "$travel_a" "$travel_b" "$profile_a" "$profile_b"' EXIT
DGF_PROFILE_OUT="$profile_a" cargo run -q --example observability >/dev/null
DGF_PROFILE_OUT="$profile_b" cargo run -q --example observability >/dev/null
if ! cmp -s "$profile_a" "$profile_b"; then
    echo "verify: profile structures differ between seeded reruns" >&2
    diff "$profile_a" "$profile_b" | head -20 >&2
    exit 1
fi
if ! grep -q 'step-execute;provenance-append calls=' "$profile_a"; then
    echo "verify: profile structure lost the step-execute/provenance nesting" >&2
    cat "$profile_a" >&2
    exit 1
fi

# Attribution determinism: the dgf_why console runs a seeded scenario
# (WAN-bound, queue-bound, window-bound, and mid-fire flows), asserts
# the critical-path partition invariant and the alert lifecycles
# in-process, and dumps the full wire-format whyReport. Two runs must
# produce byte-identical reports.
why_a=$(mktemp) why_b=$(mktemp) why_console=$(mktemp)
trap 'rm -f "$trace_a" "$trace_b" "$scrape_a" "$scrape_b" "$lint_a" "$lint_b" "$recover_a" "$recover_b" "$travel_a" "$travel_b" "$profile_a" "$profile_b" "$why_a" "$why_b" "$why_console"' EXIT
DGF_WHY_OUT="$why_a" cargo run -q --example dgf_why >"$why_console"
DGF_WHY_OUT="$why_b" cargo run -q --example dgf_why >/dev/null
if ! cmp -s "$why_a" "$why_b"; then
    echo "verify: whyReport differs between seeded reruns" >&2
    diff "$why_a" "$why_b" | head -20 >&2
    exit 1
fi
if ! grep -q 'flows analyzed' "$why_console" || ! grep -q 'bottlenecks (grid-wide, by critical-path time):' "$why_console"; then
    echo "verify: dgf_why console output lost its attribution sections" >&2
    tail -10 "$why_console" >&2
    exit 1
fi
if ! grep -q '<whyReport' "$why_a"; then
    echo "verify: DGF_WHY_OUT did not capture a wire-format whyReport" >&2
    exit 1
fi

# The BENCH trajectory runner must execute end-to-end (smoke mode) and
# emit a report naming all three workloads inside a trajectory entry.
./scripts/bench_report --smoke >/dev/null
for workload in engine_throughput journal_replay dgl_parse; do
    if ! grep -q "\"name\": \"$workload\"" target/BENCH_engine.smoke.json; then
        echo "verify: bench_report smoke run is missing workload $workload" >&2
        exit 1
    fi
done
if ! grep -q '"trajectory": \[' target/BENCH_engine.smoke.json; then
    echo "verify: bench_report no longer emits the trajectory format" >&2
    exit 1
fi

echo "verify: OK"
