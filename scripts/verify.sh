#!/usr/bin/env bash
# Tier-1 verification: build, test, and a warnings-as-errors rustdoc
# pass over the whole workspace. CI and pre-merge both run this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
