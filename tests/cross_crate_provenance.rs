//! Provenance across the whole stack: DGMS audit events, DfMS records,
//! snapshot/restore "years later", and restart-from-provenance.

use datagridflows::prelude::*;

fn path(s: &str) -> LogicalPath {
    LogicalPath::parse(s).unwrap()
}

fn dfms() -> Dfms {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("nara", topology.domain_ids().next().unwrap()));
    users.make_admin("nara").unwrap();
    Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 13))
}

/// §2.1 (NARA PAT): "storing of provenance information for not only the
/// DGMS operations performed by the system, but also the operations that
/// are performed as part of the archival pipeline."
#[test]
fn provenance_covers_both_dgms_and_pipeline_levels() {
    let mut d = dfms();
    let flow = FlowBuilder::sequential("accession")
        .step("mk", DglOperation::CreateCollection { path: "/nara".into() })
        .step("put", DglOperation::Ingest { path: "/nara/doc1".into(), size: "1000".into(), resource: "site0-disk".into() })
        .step("fix", DglOperation::Checksum { path: "/nara/doc1".into(), resource: None, register: true })
        .build()
        .unwrap();
    let txn = d.submit_flow("nara", flow).unwrap();
    d.pump();

    // Pipeline level: one record per step plus the flow record.
    let records = d.provenance().query(&ProvenanceQuery::transaction(&txn));
    assert_eq!(records.len(), 4, "3 steps + the flow itself");
    let verbs: Vec<_> = records.iter().map(|r| r.verb.as_str()).collect();
    assert!(verbs.contains(&"create-collection") && verbs.contains(&"ingest") && verbs.contains(&"checksum") && verbs.contains(&"flow"));

    // DGMS level: the namespace audit trail has matching events.
    let events = d.grid().events();
    assert!(events.iter().any(|e| e.kind == EventKind::ObjectIngested && e.path == path("/nara/doc1")));
    assert!(events.iter().any(|e| e.kind == EventKind::ChecksumVerified));

    // Records carry timing consistent with the simulation clock.
    for r in &records {
        assert!(r.finished >= r.started, "{r:?}");
    }
}

/// The full archival loop: snapshot → new process → restore → query —
/// and the restart memo still works after restore.
#[test]
fn provenance_survives_process_boundaries_and_drives_restart() {
    let snapshot;
    let txn;
    {
        let mut d = dfms();
        let flow = FlowBuilder::sequential("archive")
            .step("a", DglOperation::Ingest { path: "/a".into(), size: "80000000".into(), resource: "site0-disk".into() })
            .step("b", DglOperation::Ingest { path: "/b".into(), size: "80000000".into(), resource: "site0-disk".into() })
            .step("c", DglOperation::Ingest { path: "/c".into(), size: "80000000".into(), resource: "site0-disk".into() })
            .build()
            .unwrap();
        txn = d.submit_flow("nara", flow).unwrap();
        d.pump_until(SimTime::ZERO + Duration::from_millis(1_200)); // step a done
        d.stop(&txn).unwrap();
        d.pump();
        snapshot = d.provenance().snapshot();
    } // the first "process" exits

    // Years later, a new process restores the store.
    let restored = ProvenanceStore::restore(&snapshot).unwrap();
    assert!(restored.step_completed(&txn, "/0"), "step a is on record");
    assert!(!restored.step_completed(&txn, "/2"), "step c never ran");

    // A fresh engine (fresh grid!) adopts the store; resubmitting the
    // lineage skips the completed step.
    let mut d2 = dfms();
    d2.restore_provenance(restored);
    let flow = FlowBuilder::sequential("archive")
        .step("a", DglOperation::Ingest { path: "/a".into(), size: "80000000".into(), resource: "site0-disk".into() })
        .step("b", DglOperation::Ingest { path: "/b".into(), size: "80000000".into(), resource: "site0-disk".into() })
        .step("c", DglOperation::Ingest { path: "/c".into(), size: "80000000".into(), resource: "site0-disk".into() })
        .build()
        .unwrap();
    let options = RunOptions { lineage: Some(txn.clone()), ..Default::default() };
    let txn2 = d2.submit_flow_with("nara", flow, options).unwrap();
    d2.pump();
    assert_eq!(d2.status(&txn2, None).unwrap().state, RunState::Completed);
    assert_eq!(d2.metrics().steps_skipped_restart, 1, "step a skipped via restored memo");
    // The grid is fresh, so /a does NOT exist — the memo is trusted.
    // (This mirrors real archival restarts where the catalog, not the
    // filesystem, is authoritative.)
    assert!(!d2.grid().exists(&path("/a")));
    assert!(d2.grid().exists(&path("/c")));
}

/// Provenance queries slice by node prefix, outcome, and time.
#[test]
fn provenance_query_dimensions() {
    let mut d = dfms();
    let flow = FlowBuilder::sequential("mixed")
        .step("ok", DglOperation::CreateCollection { path: "/ok".into() })
        .add_step(
            Step::new("bad", DglOperation::Delete { path: "/missing".into() })
                .with_error_policy(ErrorPolicy::Ignore),
        )
        .step("late", DglOperation::CreateCollection { path: "/late".into() })
        .build()
        .unwrap();
    let txn = d.submit_flow("nara", flow).unwrap();
    d.pump();
    let all = d.provenance().query(&ProvenanceQuery::transaction(&txn));
    assert_eq!(all.len(), 4);
    let completed_only = d.provenance().query(&ProvenanceQuery {
        transaction: Some(txn.clone()),
        outcome: Some(StepOutcome::Completed),
        ..Default::default()
    });
    assert_eq!(completed_only.len(), 4, "ignored failures record as completed-with-note");
    assert!(completed_only.iter().any(|r| r.detail.contains("ignored failure")));
    // Node prefix narrows to one step.
    let only_first = d.provenance().query(&ProvenanceQuery {
        transaction: Some(txn),
        node_prefix: Some("/0".into()),
        ..Default::default()
    });
    assert_eq!(only_first.len(), 1);
    assert_eq!(only_first[0].name, "ok");
}

/// The trigger pathway also leaves provenance: flows fired by triggers
/// are first-class transactions.
#[test]
fn trigger_flows_are_provenanced_transactions() {
    let mut d = dfms();
    let action = FlowBuilder::sequential("auto")
        .step("tag", DglOperation::SetMetadata { path: "${event.path}".into(), attribute: "auto".into(), value: "1".into() })
        .build()
        .unwrap();
    d.triggers_mut().register(
        Trigger::new("auto-tag", "nara", path("/"), TriggerAction::Flow(action)).on(&[EventKind::ObjectIngested]),
    );
    let flow = FlowBuilder::sequential("producer")
        .step("put", DglOperation::Ingest { path: "/x".into(), size: "10".into(), resource: "site0-disk".into() })
        .build()
        .unwrap();
    let user_txn = d.submit_flow("nara", flow).unwrap();
    d.pump();
    // Two transactions on record: the user's and the trigger's.
    let flows: Vec<_> = d
        .provenance()
        .records()
        .iter()
        .filter(|r| r.verb == "flow")
        .map(|r| r.transaction.clone())
        .collect();
    assert_eq!(flows.len(), 2);
    assert!(flows.contains(&user_txn));
    let trigger_txn = flows.iter().find(|t| **t != user_txn).unwrap().clone();
    let trigger_records = d.provenance().query(&ProvenanceQuery::transaction(&trigger_txn));
    assert!(trigger_records.iter().any(|r| r.verb == "set-metadata"));
}
