//! Integration tests for the `dgf-why` attribution engine: critical
//! paths over hand-built DAGs (fan-out/fan-in, overlapping transfers,
//! trigger-spawned flows), wait-state accounting for queue/window
//! stalls, SLA burn-rate alert lifecycles, and the `whyQuery` wire
//! surface. The load-bearing invariant everywhere: a critical path is
//! an exact partition — segment sim-times sum to the flow makespan.

use datagridflows::prelude::*;

fn dfms(domains: u32, seed: u64) -> Dfms {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains });
    let mut users = UserRegistry::new();
    users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
    users.make_admin("u").unwrap();
    Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, seed))
}

fn exec(code: &str, secs: &str) -> DglOperation {
    DglOperation::Execute {
        code: code.into(),
        nominal_secs: secs.into(),
        resource_type: None,
        inputs: vec![],
        outputs: vec![],
    }
}

/// The partition invariant, checked segment by segment: contiguous,
/// gap-free, covering `[start, end)` exactly once.
fn assert_partition(p: &WhyPath) {
    assert_eq!(
        p.segments_sum_us(),
        p.makespan_us(),
        "critical path of {} must sum to its makespan",
        p.txn
    );
    let mut cursor = p.start_us;
    for s in &p.segments {
        assert_eq!(s.from_us, cursor, "{}: segments must tile without gaps", p.txn);
        assert!(s.until_us >= s.from_us, "{}: segment runs backwards", p.txn);
        cursor = s.until_us;
    }
    assert_eq!(cursor, p.end_us, "{}: segments must reach the flow end", p.txn);
}

fn report(d: &mut Dfms) -> WhyReport {
    d.why_query(&WhyQuery::new().with_top_k(32))
}

#[test]
fn fan_out_critical_path_is_the_slowest_branch() {
    let mut d = dfms(1, 1);
    let flow = FlowBuilder::parallel("fan")
        .step("fast", exec("a", "30"))
        .step("slow", exec("b", "120"))
        .step("mid", exec("c", "60"))
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump();
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);

    let r = report(&mut d);
    assert_eq!(r.flows_analyzed, 1);
    let p = &r.paths[0];
    assert_partition(p);
    // The three branches overlap; the flow is as long as the slowest
    // one, not their sum, and that branch is what the path charges.
    assert!(p.makespan_us() >= 120_000_000 && p.makespan_us() < 210_000_000, "{}", p.makespan_us());
    let slowest = p.segments.iter().max_by_key(|s| s.until_us - s.from_us).unwrap();
    assert_eq!(slowest.state, WaitState::Executing);
    assert!(slowest.until_us - slowest.from_us >= 120_000_000);
    assert!(p.segments.iter().all(|s| s.state == WaitState::Executing), "{:?}", p.segments);
}

#[test]
fn fan_in_with_overlapping_transfers_blames_the_wan() {
    let mut d = dfms(2, 2);
    // prep → two concurrent cross-site replicas of the same 1 GB object
    // (overlapping on the WAN) → checksum join.
    let prep = FlowBuilder::sequential("prep")
        .step("mk", DglOperation::CreateCollection { path: "/d".into() })
        .step(
            "put",
            DglOperation::Ingest { path: "/d/in".into(), size: "1000000000".into(), resource: "site0-disk".into() },
        )
        .build()
        .unwrap();
    let spread = FlowBuilder::parallel("spread")
        .step("cp1", DglOperation::Replicate { path: "/d/in".into(), src: None, dst: "site1-disk".into() })
        .step("cp2", DglOperation::Replicate { path: "/d/in".into(), src: None, dst: "site1-archive".into() })
        .build()
        .unwrap();
    let tail = FlowBuilder::sequential("tail")
        .step("sum", DglOperation::Checksum { path: "/d/in".into(), resource: None, register: true })
        .build()
        .unwrap();
    let flow = FlowBuilder::sequential("fan-in").flow(prep).flow(spread).flow(tail).build().unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump();
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);

    let r = report(&mut d);
    let p = &r.paths[0];
    assert_partition(p);
    // The join waits for the slower replicate: transfer time dominates
    // and the blamed resource names a concrete destination.
    let wan: Vec<_> = p.segments.iter().filter(|s| s.state == WaitState::TransferOnLink).collect();
    assert!(!wan.is_empty(), "no transfer segments on the path: {:?}", p.segments);
    assert!(wan.iter().any(|s| s.resource.contains("→site1")), "{wan:?}");
    let wan_us: u64 = wan.iter().map(|s| s.until_us - s.from_us).sum();
    assert!(wan_us * 2 > p.makespan_us(), "transfers should dominate: {wan_us} of {}", p.makespan_us());
}

#[test]
fn trigger_spawned_flow_records_its_cause() {
    let mut d = dfms(2, 3);
    let stamp = FlowBuilder::sequential("stamp")
        .step(
            "meta",
            DglOperation::SetMetadata { path: "${event.path}".into(), attribute: "seen".into(), value: "1".into() },
        )
        .build()
        .unwrap();
    d.triggers_mut().register(
        Trigger::new("stamp-on-ingest", "u", LogicalPath::parse("/t").unwrap(), TriggerAction::Flow(stamp))
            .on(&[EventKind::ObjectIngested]),
    );
    let driver = FlowBuilder::sequential("driver")
        .step("mk", DglOperation::CreateCollection { path: "/t".into() })
        .step(
            "put",
            DglOperation::Ingest { path: "/t/x".into(), size: "1000000".into(), resource: "site0-disk".into() },
        )
        .build()
        .unwrap();
    let txn = d.submit_flow("u", driver).unwrap();
    d.pump();
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);

    let r = report(&mut d);
    assert_eq!(r.flows_analyzed, 2, "the trigger spawned a second analyzed flow");
    for p in &r.paths {
        assert_partition(p);
    }
    let spawned = r.paths.iter().find(|p| p.flow == "stamp").expect("spawned flow analyzed");
    assert_eq!(spawned.caused_by.as_deref(), Some("stamp-on-ingest"));
    let parent = r.paths.iter().find(|p| p.txn == txn).unwrap();
    assert_eq!(parent.caused_by, None);
}

#[test]
fn queue_and_window_stalls_are_classified() {
    let mut d = dfms(1, 4);
    // Saturate the only cluster, submit, hold ~95 s, release.
    let ids: Vec<_> = d.grid().topology().compute_ids().collect();
    let slots = d.grid().topology().compute(ids[0]).slots;
    d.grid_mut().topology_mut().compute_mut(ids[0]).busy = slots;
    let queued_txn = d
        .submit_flow("u", FlowBuilder::sequential("q").step("run", exec("j", "30")).build().unwrap())
        .unwrap();
    d.pump_until(d.now() + Duration::from_secs(95));
    d.grid_mut().topology_mut().compute_mut(ids[0]).busy = 0;
    d.pump_until_terminal(&queued_txn);

    // Park a data-only flow behind an off-hours window at 09:00.
    let morning = SimTime(9 * 3600 * 1_000_000);
    if d.now() < morning {
        d.pump_until(morning);
    }
    let gated_txn = d
        .submit_flow_with(
            "u",
            FlowBuilder::sequential("w")
                .step("mk", DglOperation::CreateCollection { path: "/w".into() })
                .build()
                .unwrap(),
            RunOptions { window: Some(ScheduleWindow::off_hours(20, 6)), ..Default::default() },
        )
        .unwrap();
    d.pump_until_terminal(&gated_txn);

    let r = report(&mut d);
    for p in &r.paths {
        assert_partition(p);
    }
    let queued = r.paths.iter().find(|p| p.txn == queued_txn).unwrap();
    let queued_us: u64 = queued
        .segments
        .iter()
        .filter(|s| s.state == WaitState::QueuedForCluster)
        .map(|s| s.until_us - s.from_us)
        .sum();
    // Held for 95 s; the queue retry cadence quantizes the tail.
    assert!((60_000_000..=150_000_000).contains(&queued_us), "{queued_us}");
    assert!(queued.segments.iter().any(|s| s.state == WaitState::QueuedForCluster && s.resource.starts_with("pool:")));

    let gated = r.paths.iter().find(|p| p.txn == gated_txn).unwrap();
    let win = gated.segments.iter().find(|s| s.state == WaitState::WindowClosed).expect("window stall attributed");
    // Submitted at 09:00, window opens at 20:00 → exactly 11 h parked.
    assert_eq!(win.until_us - win.from_us, 11 * 3600 * 1_000_000);
    assert_eq!(win.resource, "window");
}

#[test]
fn sla_alert_lifecycle_and_burn_rates() {
    let mut d = dfms(1, 5);
    d.set_class_objective("bulk", Duration::from_secs(300));

    // Meets its per-flow deadline comfortably: never fires.
    let fast_txn = d
        .submit_flow(
            "u",
            FlowBuilder::sequential("fast").with_deadline_secs(600).step("run", exec("fast-job", "30")).build().unwrap(),
        )
        .unwrap();
    d.pump();

    // Class-inherited budget (no dgf.deadline of its own).
    let class_txn = d
        .submit_flow(
            "u",
            FlowBuilder::sequential("bulky").with_class("bulk").step("run", exec("bulk-job", "30")).build().unwrap(),
        )
        .unwrap();
    let class_started = d.now();
    d.pump();

    // Breaches: saturate the cluster past a 60 s deadline.
    let ids: Vec<_> = d.grid().topology().compute_ids().collect();
    let slots = d.grid().topology().compute(ids[0]).slots;
    d.grid_mut().topology_mut().compute_mut(ids[0]).busy = slots;
    let late_txn = d
        .submit_flow(
            "u",
            FlowBuilder::sequential("late").with_deadline_secs(60).step("run", exec("late-job", "30")).build().unwrap(),
        )
        .unwrap();
    d.pump_until(d.now() + Duration::from_secs(90));

    // Mid-flight: the late flow's alert is firing, burn past 1x budget.
    let mid = report(&mut d);
    let firing: Vec<_> = mid.firing().collect();
    assert_eq!(firing.len(), 1);
    assert_eq!(firing[0].txn, late_txn);
    assert!(firing[0].burn_ppm > 1_000_000, "burn {} must exceed the budget", firing[0].burn_ppm);
    assert!(firing[0].fired_at_us.is_some() && firing[0].resolved_at_us.is_none());

    d.grid_mut().topology_mut().compute_mut(ids[0]).busy = 0;
    d.pump_until_terminal(&late_txn);

    let r = report(&mut d);
    let alert = |txn: &str| r.alerts.iter().find(|a| a.txn == txn).unwrap();
    let fast = alert(&fast_txn);
    assert_eq!((fast.state, fast.breached, fast.fired_at_us), (AlertState::Resolved, false, None));
    assert!(fast.burn_ppm < 1_000_000);
    let class = alert(&class_txn);
    assert_eq!(class.class, "bulk");
    assert_eq!(class.deadline_us, class_started.0 + 300_000_000, "deadline = submission + class budget");
    let late = alert(&late_txn);
    assert_eq!((late.state, late.breached), (AlertState::Resolved, true));
    assert!(late.fired_at_us.is_some() && late.resolved_at_us.is_some());

    // Burn freezes at resolution: querying later must not move it.
    d.pump_until(d.now() + Duration::from_secs(3600));
    let later = report(&mut d);
    let frozen = later.alerts.iter().find(|a| a.txn == late_txn).unwrap();
    assert_eq!(frozen.burn_ppm, late.burn_ppm, "resolved burn is frozen");
}

#[test]
fn why_query_filters_and_stability() {
    let mut d = dfms(1, 6);
    let t1 = d
        .submit_flow(
            "u",
            FlowBuilder::sequential("one").with_deadline_secs(600).step("run", exec("a", "10")).build().unwrap(),
        )
        .unwrap();
    let t2 = d
        .submit_flow(
            "u",
            FlowBuilder::sequential("two").with_deadline_secs(600).step("run", exec("b", "20")).build().unwrap(),
        )
        .unwrap();
    d.pump();

    let full = d.why_query(&WhyQuery::new());
    assert_eq!(full.flows_analyzed, 2);
    assert_eq!(full.paths.len(), 2);
    assert_eq!(full.alerts.len(), 2);
    assert_eq!(
        full.attributed_us,
        full.paths.iter().map(WhyPath::makespan_us).sum::<u64>(),
        "attributed time is the sum of analyzed makespans"
    );
    let shares: u64 = full.bottlenecks.iter().map(|b| b.share_ppm).sum();
    assert!(shares <= 1_000_000);

    let only_t2 = d.why_query(&WhyQuery::new().with_flow(&t2));
    assert!(only_t2.paths.iter().all(|p| p.txn == t2) && only_t2.paths.len() == 1);
    assert!(only_t2.alerts.iter().all(|a| a.txn == t2) && only_t2.alerts.len() == 1);
    let _ = t1;

    let lean = d.why_query(&WhyQuery::new().with_paths(false).with_alerts(false).with_top_k(1));
    assert!(lean.paths.is_empty() && lean.alerts.is_empty());
    assert_eq!(lean.bottlenecks.len(), 1);
    assert_eq!(lean.flows_analyzed, 2, "filters do not hide the analysis count");

    // The query is read-only: asking twice yields byte-identical XML.
    let a = d.why_query(&WhyQuery::new()).to_element().to_xml_pretty();
    let b = d.why_query(&WhyQuery::new()).to_element().to_xml_pretty();
    assert_eq!(a, b);
}

/// The E1 scalability shape (many steps per flow, many concurrent
/// flows): the partition invariant holds for *every* completed flow.
#[test]
fn e1_shape_invariant_holds_for_every_flow() {
    let mut d = dfms(3, 7);
    let mut b = FlowBuilder::sequential("deep");
    for i in 0..100 {
        b = b.step(format!("n{i}"), DglOperation::Notify { message: format!("step {i}") });
    }
    d.submit_flow("u", b.build().unwrap()).unwrap();
    for i in 0..40 {
        let f = FlowBuilder::sequential(format!("wide{i}"))
            .step("run", exec(&format!("job{i}"), "60"))
            .build()
            .unwrap();
        d.submit_flow("u", f).unwrap();
    }
    d.pump();

    let r = report(&mut d);
    assert_eq!(r.flows_analyzed, 41);
    assert_eq!(r.paths.len(), 41);
    for p in &r.paths {
        assert_partition(p);
    }
}
