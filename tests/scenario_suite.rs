//! The paper's three motivating scenarios (§2), end to end, plus the
//! scheduler/ILM interplay: compressed versions of the examples,
//! asserted tightly enough to serve as regression tests.

use datagridflows::prelude::*;

fn path(s: &str) -> LogicalPath {
    LogicalPath::parse(s).unwrap()
}

/// §2.1 — datagrid ILM with the policy engine: data cools, migrates down
/// the tiers, and is eventually retired, all via generated DGL flows.
#[test]
fn ilm_lifecycle_hot_to_tape_to_deleted() {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 1 });
    let mut users = UserRegistry::new();
    let d0 = topology.domain_ids().next().unwrap();
    users.register(Principal::new("ilm", d0));
    users.make_admin("ilm").unwrap();
    let mut dfms = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 1));

    // Hot data on the parallel filesystem.
    let seed = FlowBuilder::sequential("seed")
        .step("mk", DglOperation::CreateCollection { path: "/proj".into() })
        .step("put", DglOperation::Ingest { path: "/proj/hot.dat".into(), size: "1000000".into(), resource: "site0-pfs".into() })
        .build()
        .unwrap();
    dfms.submit_flow("ilm", seed).unwrap();
    dfms.pump();

    // Value decays with a 10-day half-life.
    let mut model = DomainValueModel::new();
    model.assert_value(datagridflows::ilm::ValueEntry {
        domain: d0,
        scope: path("/proj"),
        value: 1.0,
        asserted_at: SimTime::ZERO,
        half_life_days: 10.0,
    });
    let engine = PolicyEngine::standard();

    // Day 20 (value 0.25): the engine wants pfs → archive.
    let day20 = SimTime::from_days(20);
    let actions = engine.evaluate(dfms.grid(), &model, d0, day20);
    assert_eq!(actions.len(), 1);
    let flow = engine.compile_flow("ilm-day20", &actions);
    dfms.pump_until(day20);
    let txn = dfms.submit_flow("ilm", flow).unwrap();
    dfms.pump();
    assert_eq!(dfms.status(&txn, None).unwrap().state, RunState::Completed);
    let archive = dfms.grid().resolve_resource("site0-archive").unwrap();
    assert!(dfms.grid().stat_object(&path("/proj/hot.dat")).unwrap().replica_on(archive).is_some());

    // Day 120 (value ≈ 0): retention deletes it.
    let day120 = SimTime::from_days(120);
    let actions = engine.evaluate(dfms.grid(), &model, d0, day120);
    assert!(matches!(actions[..], [datagridflows::ilm::IlmAction::Delete { .. }]), "{actions:?}");
    let flow = engine.compile_flow("ilm-day120", &actions);
    dfms.pump_until(day120);
    let txn = dfms.submit_flow("ilm", flow).unwrap();
    dfms.pump();
    assert_eq!(dfms.status(&txn, None).unwrap().state, RunState::Completed);
    assert!(!dfms.grid().exists(&path("/proj/hot.dat")));
}

/// §2.1 — the imploding star as a windowed DfMS run vs. the cron
/// baseline: same work, but only the DfMS honours the window and leaves
/// provenance.
#[test]
fn imploding_star_dfms_vs_cron_baseline() {
    let make = || {
        let topology = GridBuilder::preset(GridPreset::ImplodingStar { sources: 3 });
        let mut users = UserRegistry::new();
        users.register(Principal::new("admin", topology.domain_by_name("archiver").unwrap()));
        users.make_admin("admin").unwrap();
        let mut g = DataGrid::new(topology, users);
        for h in 0..3 {
            g.execute("admin", Operation::CreateCollection { path: path(&format!("/h{h}")) }, SimTime::ZERO).unwrap();
            for s in 0..2 {
                g.execute(
                    "admin",
                    Operation::Ingest { path: path(&format!("/h{h}/scan{s}")), size: 1_000_000, resource: format!("hospital0{h}-disk") },
                    SimTime::ZERO,
                )
                .unwrap();
            }
        }
        g
    };

    // DfMS path: windowed, provenanced.
    let mut dfms = Dfms::new(make(), Scheduler::new(PlannerKind::CostBased, 1));
    let sources: Vec<_> = (0..3).map(|h| (path(&format!("/h{h}")), format!("hospital0{h}-disk"))).collect();
    let star = imploding_star_flow(dfms.grid(), &sources, "archiver-disk", "archiver-tape").unwrap();
    let options = RunOptions { window: Some(ScheduleWindow::weekends()), ..Default::default() };
    let txn = dfms.submit_flow_with("admin", star, options).unwrap();
    dfms.pump_until(SimTime::from_days(7));
    assert_eq!(dfms.status(&txn, None).unwrap().state, RunState::Completed);
    let tape = dfms.grid().resolve_resource("archiver-tape").unwrap();
    assert_eq!(dfms.grid().objects_on(tape).len(), 6);
    // Every tape arrival happened inside the weekend window.
    for event in dfms.grid().events().iter().filter(|e| e.kind == EventKind::ObjectMigrated) {
        let dow = event.time.day_of_week();
        assert!(dow == 5 || dow == 6, "migration at day-of-week {dow} violates the window");
    }
    assert!(dfms.provenance().len() > 6, "full provenance trail");

    // Cron path: does the copies, but mid-week and with no records.
    let mut grid = make();
    let mut cron = CronScriptIlm::new();
    for h in 0..3 {
        cron.add_entry(CronEntry {
            domain: format!("hospital0{h}"),
            user: "admin".into(),
            hour: 2,
            rule: CronRule::PushTo { scope: path(&format!("/h{h}")), dst_resource: "archiver-disk".into() },
        });
    }
    cron.run_between(&mut grid, SimTime::ZERO, SimTime::from_days(1));
    let s = cron.stats();
    assert_eq!(s.ops_succeeded, 6, "cron did the copies too");
    // ...but on Tuesday, with zero provenance and no lifecycle control.
    let disk = grid.resolve_resource("archiver-disk").unwrap();
    assert_eq!(grid.objects_on(disk).len(), 6);
}

/// §2.3 — a data-intensive workflow where the cost-based planner places
/// compute at the data while round-robin drags bytes across the WAN.
#[test]
fn cost_based_beats_round_robin_on_data_movement() {
    let run = |kind: PlannerKind| -> (u64, SimTime) {
        let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 4 });
        let mut users = UserRegistry::new();
        users.register(Principal::new("sci", topology.domain_ids().next().unwrap()));
        users.make_admin("sci").unwrap();
        let mut dfms = Dfms::new(DataGrid::new(topology, users), Scheduler::new(kind, 42));
        // All input data at site0.
        let mut b = FlowBuilder::sequential("seed")
            .step("mk", DglOperation::CreateCollection { path: "/data".into() });
        for i in 0..6 {
            b = b.step(
                format!("put{i}"),
                DglOperation::Ingest { path: format!("/data/in{i}"), size: "2000000000".into(), resource: "site0-pfs".into() },
            );
        }
        dfms.submit_flow("sci", b.build().unwrap()).unwrap();
        dfms.pump();
        let seeded = dfms.metrics().bytes_moved;
        // Six independent analysis tasks over that data.
        let mut b = FlowBuilder::sequential("analysis");
        for i in 0..6 {
            b = b.step(
                format!("t{i}"),
                DglOperation::Execute {
                    code: format!("analyze{i}"),
                    nominal_secs: "300".into(),
                    resource_type: None,
                    inputs: vec![format!("/data/in{i}")],
                    outputs: vec![(format!("/data/out{i}"), "1000000".into())],
                },
            );
        }
        let started = dfms.now();
        let txn = dfms.submit_flow("sci", b.build().unwrap()).unwrap();
        dfms.pump();
        assert_eq!(dfms.status(&txn, None).unwrap().state, RunState::Completed);
        (dfms.metrics().bytes_moved - seeded, SimTime(dfms.now().since(started).0))
    };
    let (cost_bytes, cost_time) = run(PlannerKind::CostBased);
    let (rr_bytes, rr_time) = run(PlannerKind::RoundRobin);
    assert_eq!(cost_bytes, 0, "cost-based moved nothing: compute went to the data");
    assert!(rr_bytes > 4_000_000_000, "round-robin dragged GBs across the WAN: {rr_bytes}");
    assert!(cost_time < rr_time, "and it finished sooner ({cost_time} vs {rr_time})");
}

/// §2.3 — late binding routes around failures that early binding trips
/// over.
#[test]
fn late_binding_survives_resource_failure() {
    let build = |mode: BindingMode| {
        let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 3 });
        let mut users = UserRegistry::new();
        users.register(Principal::new("sci", topology.domain_ids().next().unwrap()));
        users.make_admin("sci").unwrap();
        let mut dfms = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::RoundRobin, 0));
        dfms.set_binding_mode(mode);
        dfms
    };
    let flow = |n: usize| {
        let mut b = FlowBuilder::sequential("work");
        for i in 0..n {
            b = b.step(
                format!("t{i}"),
                DglOperation::Execute { code: format!("job{i}"), nominal_secs: "60".into(), resource_type: None, inputs: vec![], outputs: vec![] },
            );
        }
        b.build().unwrap()
    };

    // Late binding: kill a cluster mid-run; later tasks avoid it.
    let mut late = build(BindingMode::Late);
    let txn = late.submit_flow("sci", flow(6)).unwrap();
    late.pump_until(SimTime::from_secs(90)); // task 0 done, task 1 running
    let victim = late.grid().topology().compute_ids().next().unwrap();
    late.grid_mut().topology_mut().compute_mut(victim).online = false;
    late.pump();
    assert_eq!(late.status(&txn, None).unwrap().state, RunState::Completed, "late binding replanned");

    // Early binding with retries disabled: the pinned placement fails.
    let mut early = build(BindingMode::Early);
    // Plan everything up-front by submitting, then fail a resource before
    // execution reaches it.
    let txn = early.submit_flow("sci", flow(6)).unwrap();
    early.pump_until(SimTime::from_secs(90));
    let victim = early.grid().topology().compute_ids().next().unwrap();
    early.grid_mut().topology_mut().compute_mut(victim).online = false;
    early.pump();
    let state = early.status(&txn, None).unwrap().state;
    // Round-robin cycles across 3 clusters, so one of the remaining tasks
    // was pinned to the dead one → the run fails.
    assert_eq!(state, RunState::Failed, "early binding hit the stale placement");
}
