//! Cross-crate telemetry tests: scrape determinism, the DGL telemetry
//! wire surface, cursor-based event tailing, and the flow-health
//! watchdog (`docs/OBSERVABILITY.md`).

use datagridflows::prelude::*;

/// A two-site grid with one admin and a cost-based scheduler.
fn dfms(seed: u64) -> Dfms {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
    users.make_admin("u").unwrap();
    Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, seed))
}

/// The observability-suite workload under `base`: DGMS ops, a placement,
/// a transfer.
fn run_workload_at(d: &mut Dfms, base: &str) -> String {
    let flow = FlowBuilder::sequential("wf")
        .step("mk", DglOperation::CreateCollection { path: base.into() })
        .step("put", DglOperation::Ingest { path: format!("{base}/in"), size: "100000000".into(), resource: "site0-pfs".into() })
        .step(
            "run",
            DglOperation::Execute {
                code: "job".into(),
                nominal_secs: "60".into(),
                resource_type: None,
                inputs: vec![format!("{base}/in")],
                outputs: vec![(format!("{base}/out"), "5000".into())],
            },
        )
        .step("cp", DglOperation::Replicate { path: format!("{base}/out"), src: None, dst: "site1-disk".into() })
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump();
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
    txn
}

fn run_workload(d: &mut Dfms) -> String {
    run_workload_at(d, "/w")
}

#[test]
fn scrapes_of_identically_seeded_runs_are_byte_identical() {
    let scrape_of = |seed| {
        let mut d = dfms(seed);
        d.configure_telemetry(
            SamplingConfig { interval: Duration::from_secs(60), capacity: 512 },
            HealthConfig::default(),
        );
        run_workload(&mut d);
        d.sample_telemetry();
        d.telemetry_scrape()
    };
    let a = scrape_of(7);
    let b = scrape_of(7);
    assert!(!a.is_empty());
    assert_eq!(a, b, "telemetry scrape must be deterministic");
    // Stable ordering: metric lines arrive sorted by (scope, name).
    let keys: Vec<(&str, &str)> = a
        .lines()
        .filter(|l| l.starts_with("dgf_metric{"))
        .map(|l| {
            let scope = l.split("scope=\"").nth(1).unwrap().split('"').next().unwrap();
            let name = l.split("name=\"").nth(1).unwrap().split('"').next().unwrap();
            (scope, name)
        })
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "dgf_metric lines must be sorted by (scope, name)");
    // The scrape covers metrics and series, and ends in one newline.
    assert!(a.starts_with("# dgf telemetry scrape at "));
    assert!(a.contains("dgf_series{name=\"storage.used_bytes\",label=\"site0-pfs\""));
    assert!(a.ends_with('\n') && !a.ends_with("\n\n"));
}

#[test]
fn telemetry_queries_travel_over_the_dgl_wire() {
    let mut d = dfms(3);
    run_workload(&mut d);
    // Scrape-only query.
    let xml = DataGridRequest::telemetry("q1", "u", TelemetryQuery::scrape()).to_xml();
    let response = datagridflows::dgl::parse_response(&d.handle_xml(&xml)).unwrap();
    assert_eq!(response.request_id, "q1");
    let ResponseBody::Telemetry(report) = response.body else { panic!("expected telemetry") };
    let scrape = report.scrape.expect("scrape requested");
    assert!(scrape.contains("dgf_metric{scope=\"engine\",name=\"steps.executed\""));
    assert!(report.events.is_empty() && report.next_cursor.is_none() && report.dropped.is_none());
    // Tail query: events come back oldest-first with their sequence ids.
    let xml = DataGridRequest::telemetry("q2", "u", TelemetryQuery::tail(0).with_limit(5)).to_xml();
    let response = datagridflows::dgl::parse_response(&d.handle_xml(&xml)).unwrap();
    let ResponseBody::Telemetry(report) = response.body else { panic!("expected telemetry") };
    assert!(report.scrape.is_none());
    assert_eq!(report.events.len(), 5);
    let seqs: Vec<u64> = report.events.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    assert_eq!(report.next_cursor, Some(5));
    assert_eq!(report.dropped, Some(0));
}

#[test]
fn tail_resume_over_the_server_yields_no_gaps_or_duplicates() {
    let server = DfmsServer::start(dfms(11));
    let handle = server.handle();
    run_workload(&mut server.engine().lock());
    // Page through everything recorded so far in small pages.
    let mut cursor = 0u64;
    let mut seen: Vec<u64> = Vec::new();
    loop {
        let page = handle.tail(cursor, Some(7)).unwrap();
        assert_eq!(page.dropped, Some(0), "nothing evicted in this test");
        if page.events.is_empty() {
            break;
        }
        seen.extend(page.events.iter().map(|e| e.seq));
        cursor = page.next_cursor.unwrap();
    }
    // Gap-free, duplicate-free, and aligned with the recorder itself.
    for (i, w) in seen.windows(2).enumerate() {
        assert_eq!(w[1], w[0] + 1, "gap or duplicate after tail item {i}");
    }
    let recorded = server.engine().lock().obs().events().len() as u64;
    assert_eq!(seen.len() as u64, recorded, "tail must deliver every recorded event");
    // New work arrives; resuming from the saved cursor delivers exactly
    // the new events, never a repeat.
    run_workload_at(&mut server.engine().lock(), "/w2");
    let page = handle.tail(cursor, None).unwrap();
    assert!(!page.events.is_empty());
    assert!(page.events.iter().all(|e| e.seq >= cursor), "no event before the cursor");
    assert_eq!(page.events[0].seq, cursor, "no gap at the resume point");
    drop(handle);
    let _ = server.shutdown();
}

#[test]
fn watchdog_flags_a_stalled_flow_then_sees_it_recover() {
    let mut d = dfms(5);
    d.configure_telemetry(
        SamplingConfig { interval: Duration::from_secs(30), capacity: 512 },
        HealthConfig { slow_after: Duration::from_secs(120), stalled_after: Duration::from_secs(300) },
    );
    // Failure injection: site1's cluster goes down; site0's is saturated
    // by local (non-grid) load. Execute steps queue and retry forever.
    let compute_ids: Vec<_> = d.grid().topology().compute_ids().collect();
    FailureEvent::Compute(compute_ids[1], false).apply(d.grid_mut().topology_mut());
    let busy = d.grid().topology().compute(compute_ids[0]).slots;
    d.grid_mut().topology_mut().compute_mut(compute_ids[0]).busy = busy;
    let flow = FlowBuilder::sequential("stuck")
        .step("mk", DglOperation::CreateCollection { path: "/s".into() })
        .step("put", DglOperation::Ingest { path: "/s/in".into(), size: "1000".into(), resource: "site0-disk".into() })
        .step(
            "run",
            DglOperation::Execute {
                code: "job".into(),
                nominal_secs: "10".into(),
                resource_type: None,
                inputs: vec!["/s/in".into()],
                outputs: vec![("/s/out".into(), "10".into())],
            },
        )
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    let start = d.now();
    d.pump_until(start + Duration::from_secs(60));
    let health = d.obs().health_flow(&txn).expect("flow is watched");
    assert_eq!(health.state, HealthState::Healthy);
    assert!(health.last_progress > start, "the ingest step set the watermark");
    let watermark = health.last_progress;
    // Past slow_after with no progress → Slow; past stalled_after → Stalled.
    d.pump_until(start + Duration::from_secs(200));
    assert_eq!(d.obs().health_flow(&txn).unwrap().state, HealthState::Slow);
    d.pump_until(start + Duration::from_secs(400));
    let health = d.obs().health_flow(&txn).unwrap();
    assert_eq!(health.state, HealthState::Stalled);
    assert_eq!(health.last_progress, watermark, "no progress while stuck");
    // The transitions were recorded and the gauge published.
    let kinds: Vec<String> =
        d.obs().events().iter().map(|e| e.kind.name().to_owned()).collect();
    assert!(kinds.contains(&"health.slow".to_owned()));
    assert!(kinds.contains(&"health.stalled".to_owned()));
    d.sample_telemetry();
    assert!(d.telemetry_scrape().contains("dgf_metric{scope=\"dfms\",name=\"flows_stalled\",kind=\"gauge\"} 1"));
    // The cluster comes back; the retry loop picks the step up and the
    // flow completes, leaving the watch list.
    FailureEvent::Compute(compute_ids[1], true).apply(d.grid_mut().topology_mut());
    d.pump_until_terminal(&txn);
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
    assert!(d.obs().health_flow(&txn).is_none(), "finished flows are unwatched");
    let kinds: Vec<String> =
        d.obs().events().iter().map(|e| e.kind.name().to_owned()).collect();
    assert!(kinds.contains(&"health.healthy".to_owned()), "recovery is recorded");
    d.sample_telemetry();
    assert!(d.telemetry_scrape().contains("dgf_metric{scope=\"dfms\",name=\"flows_stalled\",kind=\"gauge\"} 0"));
}

#[test]
fn resource_series_accumulate_over_sim_time() {
    let mut d = dfms(9);
    d.configure_telemetry(
        SamplingConfig { interval: Duration::from_secs(10), capacity: 64 },
        HealthConfig::default(),
    );
    run_workload(&mut d);
    d.sample_telemetry();
    let series = d.obs().ts_series("storage.used_bytes", "site0-pfs").expect("sampled");
    assert!(series.len() >= 2, "the event loop samples while time advances");
    let rollup = series.rollup().unwrap();
    assert!(rollup.last > 0, "the ingest left bytes on site0-pfs");
    assert!(rollup.max >= rollup.min);
    // Flow-state series keep a stable label set: every state, every sample.
    for state in ["pending", "running", "completed", "failed", "paused", "stopped", "skipped"] {
        assert!(
            d.obs().ts_series("flows.state", state).is_some(),
            "missing flows.state series for {state}"
        );
    }
    // Ring capacity bounds retention.
    assert!(series.len() <= 64);
}
