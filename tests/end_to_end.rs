//! Whole-system tests: DGL documents over the wire, through the server,
//! against the grid — the full Appendix A protocol.

use datagridflows::prelude::*;

fn path(s: &str) -> LogicalPath {
    LogicalPath::parse(s).unwrap()
}

fn dfms_with_users(user_names: &[&str]) -> Dfms {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 3 });
    let mut users = UserRegistry::new();
    let d0 = topology.domain_ids().next().unwrap();
    for name in user_names {
        users.register(Principal::new(*name, d0));
        users.make_admin(name).unwrap();
    }
    Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 99))
}

/// The complete request→ack→poll→status loop, entirely in DGL XML.
#[test]
fn asynchronous_protocol_in_pure_xml() {
    let mut dfms = dfms_with_users(&["arun"]);
    let request_xml = r#"<?xml version="1.0" encoding="UTF-8"?>
<dataGridRequest id="req-001" mode="asynchronous">
  <documentMetadata><description>nightly pipeline</description></documentMetadata>
  <gridUser name="arun" vo="sdsc"/>
  <flow name="pipeline">
    <flowLogic><sequential/></flowLogic>
    <children>
      <step name="mk"><operation><createCollection path="/nightly"/></operation></step>
      <step name="put"><operation><ingest path="/nightly/log.dat" size="1000000" resource="site0-disk"/></operation></step>
      <step name="sum"><operation><checksum path="/nightly/log.dat" register="true"/></operation></step>
    </children>
  </flow>
</dataGridRequest>"#;
    let ack_xml = dfms.handle_xml(request_xml);
    let ack = datagridflows::dgl::parse_response(&ack_xml).unwrap();
    let txn = ack.transaction().to_owned();
    match &ack.body {
        ResponseBody::Ack(a) => {
            assert!(a.valid);
            assert_eq!(a.state, RunState::Pending);
        }
        other => panic!("expected ack, got {other:?}"),
    }

    dfms.pump();

    let query_xml = format!(
        r#"<dataGridRequest id="req-002"><gridUser name="arun"/><flowStatusQuery transaction="{txn}"/></dataGridRequest>"#
    );
    let status_xml = dfms.handle_xml(&query_xml);
    let status = datagridflows::dgl::parse_response(&status_xml).unwrap();
    match status.body {
        ResponseBody::Status(s) => {
            assert_eq!(s.state, RunState::Completed);
            assert_eq!(s.steps_completed, 3);
        }
        other => panic!("expected status, got {other:?}"),
    }
    assert!(dfms.grid().stat_object(&path("/nightly/log.dat")).unwrap().checksum.is_some());
}

/// Node-granular status queries over XML (the "any level of granularity"
/// requirement of §4).
#[test]
fn granular_status_queries_in_xml() {
    let mut dfms = dfms_with_users(&["arun"]);
    let flow = FlowBuilder::sequential("outer")
        .flow(
            FlowBuilder::parallel("fan")
                .step("a", DglOperation::CreateCollection { path: "/a".into() })
                .step("b", DglOperation::CreateCollection { path: "/b".into() })
                .build()
                .unwrap(),
        )
        .build()
        .unwrap();
    let txn = dfms.submit_flow("arun", flow).unwrap();
    dfms.pump();
    let query = DataGridRequest::status("q", "arun", FlowStatusQuery::node(&txn, "/0/1"));
    let response = dfms.handle(query);
    match response.body {
        ResponseBody::Status(s) => {
            assert_eq!(s.name, "b");
            assert_eq!(s.state, RunState::Completed);
            assert_eq!(s.node, "/0/1");
        }
        other => panic!("{other:?}"),
    }
}

/// Multi-user isolation: ACLs hold across the engine boundary.
#[test]
fn acl_enforcement_through_the_engine() {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
    let mut users = UserRegistry::new();
    let d0 = topology.domain_ids().next().unwrap();
    users.register(Principal::new("owner", d0));
    users.register(Principal::new("intruder", d0));
    users.make_admin("owner").unwrap();
    let mut dfms = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 1));

    let setup = FlowBuilder::sequential("setup")
        .step("mk", DglOperation::CreateCollection { path: "/private".into() })
        .step("put", DglOperation::Ingest { path: "/private/secret".into(), size: "10".into(), resource: "site0-disk".into() })
        .build()
        .unwrap();
    dfms.submit_flow("owner", setup).unwrap();
    dfms.pump();

    let attack = FlowBuilder::sequential("attack")
        .step("steal", DglOperation::Delete { path: "/private/secret".into() })
        .build()
        .unwrap();
    let txn = dfms.submit_flow("intruder", attack).unwrap();
    dfms.pump();
    let report = dfms.status(&txn, None).unwrap();
    assert_eq!(report.state, RunState::Failed);
    assert!(report.message.as_deref().unwrap().contains("lacks"));
    assert!(dfms.grid().exists(&path("/private/secret")), "the data survived");
}

/// The P2P network routes DGL documents between zones.
#[test]
fn p2p_network_federates_two_zones() {
    let mut net = DfmsNetwork::new();
    net.add_server("us-west", dfms_with_users(&["arun"]));
    net.add_server("uk", dfms_with_users(&["peter"]));
    net.lookup_mut().register(path("/sdsc"), "us-west");
    net.lookup_mut().register(path("/cclrc"), "uk");

    for (user, zone) in [("arun", "/sdsc"), ("peter", "/cclrc")] {
        let flow = FlowBuilder::sequential("seed")
            .step("mk", DglOperation::CreateCollection { path: zone.into() })
            .step("put", DglOperation::Ingest { path: format!("{zone}/data"), size: "100".into(), resource: "site0-disk".into() })
            .build()
            .unwrap();
        let (routed, response) = net.route(DataGridRequest::flow(format!("r-{user}"), user, flow)).unwrap();
        match response.body {
            ResponseBody::Status(s) => assert_eq!(s.state, RunState::Completed),
            other => panic!("{other:?}"),
        }
        let expected = if zone == "/sdsc" { "us-west" } else { "uk" };
        assert_eq!(routed, expected);
    }
    assert!(net.server("us-west").unwrap().grid().exists(&path("/sdsc/data")));
    assert!(net.server("uk").unwrap().grid().exists(&path("/cclrc/data")));
    assert!(!net.server("uk").unwrap().grid().exists(&path("/sdsc/data")), "zones are disjoint");
}

/// The threaded server: many clients, one deterministic engine.
#[test]
fn threaded_server_handles_concurrent_dgl_clients() {
    let server = DfmsServer::start(dfms_with_users(&["arun"]));
    let setup = FlowBuilder::sequential("setup")
        .step("mk", DglOperation::CreateCollection { path: "/shared".into() })
        .build()
        .unwrap();
    server.handle().request(&DataGridRequest::flow("setup", "arun", setup).to_xml()).unwrap();

    let mut joins = Vec::new();
    for i in 0..6 {
        let handle = server.handle();
        joins.push(std::thread::spawn(move || {
            let flow = FlowBuilder::sequential(format!("client{i}"))
                .step("put", DglOperation::Ingest { path: format!("/shared/f{i}"), size: "1000".into(), resource: "site0-disk".into() })
                .build()
                .unwrap();
            let xml = DataGridRequest::flow(format!("r{i}"), "arun", flow).to_xml();
            let response = handle.request(&xml).unwrap();
            datagridflows::dgl::parse_response(&response).unwrap()
        }));
    }
    for join in joins {
        match join.join().unwrap().body {
            ResponseBody::Status(s) => assert_eq!(s.state, RunState::Completed),
            other => panic!("{other:?}"),
        }
    }
    let (_, engine) = server.shutdown();
    assert_eq!(engine.lock().grid().stats().objects, 6);
}

/// Failure mid-flow leaves earlier effects visible (non-transactional,
/// §2.2) and the status explains where it broke.
#[test]
fn non_transactional_failure_reporting() {
    let mut dfms = dfms_with_users(&["arun"]);
    let flow = FlowBuilder::sequential("doomed")
        .step("good", DglOperation::CreateCollection { path: "/done".into() })
        .step("bad", DglOperation::Replicate { path: "/missing".into(), src: None, dst: "site1-disk".into() })
        .build()
        .unwrap();
    let txn = dfms.submit_flow("arun", flow).unwrap();
    dfms.pump();
    let report = dfms.status(&txn, None).unwrap();
    assert_eq!(report.state, RunState::Failed);
    assert!(dfms.grid().exists(&path("/done")));
    // The failing child is identifiable from the report tree.
    let children = &report.children;
    assert_eq!(children.len(), 2);
    assert_eq!(children[0].2, RunState::Completed);
    assert_eq!(children[1].2, RunState::Failed);
}
