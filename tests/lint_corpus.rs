//! Golden-file tests for the `dgf-lint` static analyzer.
//!
//! Every `tests/lint_corpus/*.xml` is a DGL `<flow>` document; its
//! `.expected` sibling is the exact, deterministic rendering of the
//! lint report against the reference grid (a two-site uniform mesh
//! with open SLAs — the same grid `examples/dgf_lint.rs` uses).
//!
//! To regenerate after an intentional analyzer change:
//!
//! ```sh
//! UPDATE_LINT_CORPUS=1 cargo test --test lint_corpus
//! ```
//!
//! then review the diff like any other code change.

use datagridflows::lint::{lint_with_grid, GridContext};
use datagridflows::prelude::*;
use datagridflows::scheduler::InfraDescription;
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/lint_corpus")
}

/// The deterministic text rendering the goldens pin: verdict line, then
/// one line per diagnostic with its hint indented underneath.
fn render(report: &ValidationReport) -> String {
    let mut out = format!(
        "flow `{}`: {} — {} error(s), {} warning(s)\n",
        report.flow,
        if report.valid { "ok" } else { "rejected" },
        report.errors(),
        report.warnings()
    );
    for d in &report.diagnostics {
        out.push_str(&format!("{d}\n"));
        if !d.hint.is_empty() {
            out.push_str(&format!("    hint: {}\n", d.hint));
        }
    }
    out
}

#[test]
fn corpus_reports_match_goldens() {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
    let infra = InfraDescription::open();
    let ctx = GridContext { topology: &topology, infra: &infra, vo: None };
    let update = std::env::var_os("UPDATE_LINT_CORPUS").is_some();

    let mut cases: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "xml"))
        .collect();
    cases.sort();
    assert!(cases.len() >= 8, "corpus unexpectedly small: {} cases", cases.len());

    let mut failures = Vec::new();
    for case in &cases {
        let xml = std::fs::read_to_string(case).expect("corpus file reads");
        let flow = Flow::from_element(&datagridflows::xml::parse(&xml).expect("corpus XML parses"))
            .expect("corpus flow decodes");
        let got = render(&lint_with_grid(&flow, &ctx));
        let golden = case.with_extension("expected");
        if update {
            std::fs::write(&golden, &got).expect("golden writes");
            continue;
        }
        let want = std::fs::read_to_string(&golden)
            .unwrap_or_else(|_| panic!("missing golden {golden:?}; run with UPDATE_LINT_CORPUS=1"));
        if got != want {
            failures.push(format!(
                "{}:\n--- expected ---\n{want}--- got ---\n{got}",
                case.file_name().unwrap().to_string_lossy()
            ));
        }
    }
    assert!(failures.is_empty(), "{} corpus mismatch(es):\n{}", failures.len(), failures.join("\n"));
}

#[test]
fn corpus_is_deterministic_across_runs() {
    // Two full passes over the corpus must render byte-identically —
    // the property the verify-script gate relies on.
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
    let infra = InfraDescription::open();
    let ctx = GridContext { topology: &topology, infra: &infra, vo: None };
    let mut cases: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "xml"))
        .collect();
    cases.sort();
    for case in &cases {
        let xml = std::fs::read_to_string(case).unwrap();
        let flow = Flow::from_element(&datagridflows::xml::parse(&xml).unwrap()).unwrap();
        let a = render(&lint_with_grid(&flow, &ctx));
        let b = render(&lint_with_grid(&flow, &ctx));
        assert_eq!(a, b, "nondeterministic report for {case:?}");
    }
}

#[test]
fn engine_gate_rejects_error_flows_and_reports_codes() {
    // The corpus' undefined-variable flow must be refused at submit,
    // with the DGF code in the structured error and the ack message.
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("arun", topology.domain_ids().next().unwrap()));
    users.make_admin("arun").unwrap();
    let mut dfms = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 7));

    let xml = std::fs::read_to_string(corpus_dir().join("undef_var.xml")).unwrap();
    let flow = Flow::from_element(&datagridflows::xml::parse(&xml).unwrap()).unwrap();

    let err = dfms.submit_flow("arun", flow.clone()).unwrap_err();
    match &err {
        datagridflows::dfms::DfmsError::Lint(report) => {
            assert!(!report.valid);
            assert!(report.diagnostics.iter().any(|d| d.code == "DGF001"));
        }
        other => panic!("expected a lint rejection, got {other:?}"),
    }
    assert!(err.to_string().contains("DGF001"), "{err}");

    // Over the wire: the ack is invalid and carries the code.
    let request = DataGridRequest::flow("r1", "arun", flow);
    let response = dfms.handle(request);
    let ResponseBody::Ack(ack) = &response.body else { panic!("expected ack") };
    assert!(!ack.valid);
    assert!(ack.message.as_deref().unwrap_or_default().contains("DGF001"));

    // Observability: the rejection is a flight-recorder event and a
    // metric.
    let events = dfms.obs().events();
    assert!(events.iter().any(|e| e.kind.name() == "lint.rejected"));
    let snap = dfms.metrics_snapshot();
    assert_eq!(snap.counter("lint", "flows.checked"), 2, "both submit paths linted");
    assert_eq!(snap.counter("lint", "flows.rejected"), 2, "both submit paths refused");
}

#[test]
fn validation_query_answers_over_the_wire_without_executing() {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("arun", topology.domain_ids().next().unwrap()));
    users.make_admin("arun").unwrap();
    let mut dfms = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 7));

    let xml = std::fs::read_to_string(corpus_dir().join("grid_feasibility.xml")).unwrap();
    let flow = Flow::from_element(&datagridflows::xml::parse(&xml).unwrap()).unwrap();

    let request = DataGridRequest::validation("v1", "arun", flow);
    let response = dfms.handle(request.clone());
    let ResponseBody::Validation(report) = &response.body else { panic!("expected report") };
    assert!(!report.valid);
    assert!(report.diagnostics.iter().any(|d| d.code == "DGF020"));
    assert!(report.diagnostics.iter().any(|d| d.code == "DGF024"));

    // Nothing ran: no transaction was opened.
    assert_eq!(dfms.metrics().runs_submitted, 0);

    // And the XML round trip of the full exchange is lossless.
    let wire = request.to_xml();
    let reparsed = datagridflows::dgl::parse_request(&wire).unwrap();
    assert_eq!(reparsed, request);
    let wire = response.to_xml();
    let reparsed = datagridflows::dgl::parse_response(&wire).unwrap();
    assert_eq!(reparsed, response);
}
