//! Failure-injection (chaos) tests: the engine under deterministic
//! resource churn. The point is not that every run completes — with
//! enough churn and bounded retries some cannot — but that the system
//! *degrades cleanly*: terminal states, honest reports, no leaked slots
//! or transfer shares, consistent storage accounting.

use datagridflows::prelude::*;

fn dfms(domains: u32, seed: u64) -> Dfms {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains });
    let mut users = UserRegistry::new();
    users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
    users.make_admin("u").unwrap();
    Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, seed))
}

/// Pump the engine while applying a failure plan minute by minute.
fn pump_with_chaos(d: &mut Dfms, plan: &FailurePlan, txn: &str, horizon: SimTime) -> RunState {
    let mut cursor = d.now();
    loop {
        let next = cursor + Duration::from_secs(60);
        d.pump_until(next);
        plan.apply_between(d.grid_mut().topology_mut(), cursor, next);
        cursor = next;
        let state = d.status(txn, None).unwrap().state;
        if state.is_terminal() || cursor > horizon {
            // Bring everything back up so queued work can drain.
            for (_, event) in plan.events() {
                match event {
                    FailureEvent::Compute(id, _) => d.grid_mut().topology_mut().compute_mut(*id).online = true,
                    FailureEvent::Link(id, _) => d.grid_mut().topology_mut().link_mut(*id).online = true,
                    FailureEvent::Storage(id, _) => d.grid_mut().topology_mut().storage_mut(*id).online = true,
                }
            }
            d.pump();
            return d.status(txn, None).unwrap().state;
        }
    }
}

use datagridflows::simgrid::FailureEvent;

fn assert_no_leaks(d: &Dfms) {
    let topo = d.grid().topology();
    for c in topo.compute_ids() {
        assert_eq!(topo.compute(c).busy, 0, "leaked slot on {}", topo.compute(c).name);
    }
    assert_eq!(d.grid().transfer_model().total_active_shares(), 0, "leaked transfer shares");
}

#[test]
fn compute_churn_with_retries_completes_or_fails_cleanly() {
    let mut completed = 0;
    for seed in 0..6u64 {
        let mut d = dfms(4, seed);
        let mut b = FlowBuilder::sequential("chaos-exec");
        for i in 0..12 {
            b = b.add_step(
                Step::new(
                    format!("t{i}"),
                    DglOperation::Execute {
                        code: format!("job{i}"),
                        nominal_secs: "180".into(),
                        resource_type: None,
                        inputs: vec![],
                        outputs: vec![],
                    },
                )
                .with_error_policy(ErrorPolicy::Retry(2)),
            );
        }
        let txn = d.submit_flow("u", b.build().unwrap()).unwrap();
        let plan = FailurePlan::generate(
            d.grid().topology(),
            Duration::from_hours(6),
            Duration::from_secs(1200), // aggressive: MTBF 20 min
            Duration::from_secs(600),
            seed,
        );
        let state = pump_with_chaos(&mut d, &plan, &txn, SimTime::from_hours(12));
        assert!(state.is_terminal(), "seed {seed} wedged in {state}");
        if state == RunState::Completed {
            completed += 1;
        } else {
            // Failed runs must say why.
            let report = d.status(&txn, None).unwrap();
            assert!(report.message.is_some(), "failure without a message: {report}");
        }
        assert_no_leaks(&d);
    }
    assert!(completed >= 3, "retry+late-binding should save most runs: {completed}/6");
}

#[test]
fn transfer_flows_survive_link_churn() {
    for seed in 0..4u64 {
        let mut d = dfms(3, seed);
        // Seed objects at site0.
        let mut b = FlowBuilder::sequential("seed")
            .step("mk", DglOperation::CreateCollection { path: "/data".into() });
        for i in 0..6 {
            b = b.step(
                format!("p{i}"),
                DglOperation::Ingest { path: format!("/data/f{i}"), size: "500000000".into(), resource: "site0-disk".into() },
            );
        }
        d.submit_flow("u", b.build().unwrap()).unwrap();
        d.pump();

        // Replicate everything off-site with retries, under link churn.
        let mut b = FlowBuilder::sequential("spread");
        for i in 0..6 {
            b = b.add_step(
                Step::new(
                    format!("cp{i}"),
                    DglOperation::Replicate { path: format!("/data/f{i}"), src: None, dst: "site1-disk".into() },
                )
                .with_error_policy(ErrorPolicy::Retry(3)),
            );
        }
        let txn = d.submit_flow("u", b.build().unwrap()).unwrap();
        let plan = FailurePlan::generate(
            d.grid().topology(),
            Duration::from_hours(2),
            Duration::from_secs(900),
            Duration::from_secs(300),
            seed + 100,
        );
        let state = pump_with_chaos(&mut d, &plan, &txn, SimTime::from_hours(6));
        assert!(state.is_terminal());
        assert_no_leaks(&d);
        // Storage accounting stays exact regardless of outcome.
        let catalog_bytes: u64 = d.grid().stats().physical_bytes;
        let used: u64 = {
            let topo = d.grid().topology();
            topo.storage_ids().map(|s| topo.storage(s).used).sum()
        };
        assert_eq!(used, catalog_bytes, "seed {seed}: storage accounting drifted");
    }
}

#[test]
fn storage_outage_mid_flow_is_a_clean_failure() {
    let mut d = dfms(2, 9);
    let flow = FlowBuilder::sequential("doomed")
        .step("a", DglOperation::Ingest { path: "/a".into(), size: "80000000".into(), resource: "site1-disk".into() })
        .step("b", DglOperation::Ingest { path: "/b".into(), size: "80000000".into(), resource: "site1-disk".into() })
        .step("c", DglOperation::Ingest { path: "/c".into(), size: "80000000".into(), resource: "site1-disk".into() })
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    // Step a finishes (~1s); kill the destination store before b begins.
    d.pump_until(SimTime::ZERO + Duration::from_millis(1_500));
    let sid = d.grid().resolve_resource("site1-disk").unwrap();
    d.grid_mut().topology_mut().storage_mut(sid).online = false;
    d.pump();
    let report = d.status(&txn, None).unwrap();
    assert_eq!(report.state, RunState::Failed);
    assert!(report.message.as_deref().unwrap().contains("offline"), "{report}");
    assert!(d.grid().exists(&LogicalPath::parse("/a").unwrap()), "completed work persists");
    assert_no_leaks(&d);
    // The run is restartable once the resource returns.
    d.grid_mut().topology_mut().storage_mut(sid).online = true;
    let txn2 = d.restart(&txn).unwrap();
    d.pump();
    assert_eq!(d.status(&txn2, None).unwrap().state, RunState::Completed);
    // Steps a (and possibly the in-flight b, which completes before the
    // outage is observed) are skipped on restart.
    assert!(d.metrics().steps_skipped_restart >= 1);
}

#[test]
fn disconnected_grid_heals_and_work_resumes() {
    let mut d = dfms(2, 5);
    d.grid_mut()
        .execute(
            "u",
            Operation::Ingest { path: LogicalPath::parse("/big").unwrap(), size: 1_000_000_000, resource: "site0-disk".into() },
            SimTime::ZERO,
        )
        .unwrap();
    // Sever the only link, then submit a cross-site replicate with retries.
    let link = datagridflows::simgrid::LinkId(0);
    d.grid_mut().topology_mut().link_mut(link).online = false;
    let flow = FlowBuilder::sequential("cross")
        .add_step(
            Step::new("cp", DglOperation::Replicate { path: "/big".into(), src: None, dst: "site1-disk".into() })
                .with_error_policy(ErrorPolicy::Retry(5)),
        )
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump();
    // Retries exhausted while the island persists → failed...
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Failed);
    // ...but healing the link and restarting succeeds.
    d.grid_mut().topology_mut().link_mut(link).online = true;
    let txn2 = d.restart(&txn).unwrap();
    d.pump();
    assert_eq!(d.status(&txn2, None).unwrap().state, RunState::Completed);
    let obj = d.grid().stat_object(&LogicalPath::parse("/big").unwrap()).unwrap();
    assert_eq!(obj.replicas.len(), 2);
}
