//! Failure-injection (chaos) tests: the engine under deterministic
//! resource churn and under hard kills. The point is not that every run
//! completes — with enough churn and bounded retries some cannot — but
//! that the system *degrades cleanly*: terminal states, honest reports,
//! no leaked slots or transfer shares, consistent storage accounting,
//! and — with a journal attached — byte-identical state after a crash
//! at *any* record boundary (see `docs/RECOVERY.md`).

use datagridflows::prelude::*;
use std::path::{Path, PathBuf};

fn dfms(domains: u32, seed: u64) -> Dfms {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains });
    let mut users = UserRegistry::new();
    users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
    users.make_admin("u").unwrap();
    Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, seed))
}

/// Pump the engine while applying a failure plan minute by minute.
fn pump_with_chaos(d: &mut Dfms, plan: &FailurePlan, txn: &str, horizon: SimTime) -> RunState {
    let mut cursor = d.now();
    loop {
        let next = cursor + Duration::from_secs(60);
        d.pump_until(next);
        plan.apply_between(d.grid_mut().topology_mut(), cursor, next);
        cursor = next;
        let state = d.status(txn, None).unwrap().state;
        if state.is_terminal() || cursor > horizon {
            // Bring everything back up so queued work can drain.
            for (_, event) in plan.events() {
                match event {
                    FailureEvent::Compute(id, _) => d.grid_mut().topology_mut().compute_mut(*id).online = true,
                    FailureEvent::Link(id, _) => d.grid_mut().topology_mut().link_mut(*id).online = true,
                    FailureEvent::Storage(id, _) => d.grid_mut().topology_mut().storage_mut(*id).online = true,
                }
            }
            d.pump();
            return d.status(txn, None).unwrap().state;
        }
    }
}

use datagridflows::simgrid::{ComputeId, FailureEvent};

fn assert_no_leaks(d: &Dfms) {
    let topo = d.grid().topology();
    for c in topo.compute_ids() {
        assert_eq!(topo.compute(c).busy, 0, "leaked slot on {}", topo.compute(c).name);
    }
    assert_eq!(d.grid().transfer_model().total_active_shares(), 0, "leaked transfer shares");
}

#[test]
fn compute_churn_with_retries_completes_or_fails_cleanly() {
    let mut completed = 0;
    for seed in 0..6u64 {
        let mut d = dfms(4, seed);
        let mut b = FlowBuilder::sequential("chaos-exec");
        for i in 0..12 {
            b = b.add_step(
                Step::new(
                    format!("t{i}"),
                    DglOperation::Execute {
                        code: format!("job{i}"),
                        nominal_secs: "180".into(),
                        resource_type: None,
                        inputs: vec![],
                        outputs: vec![],
                    },
                )
                .with_error_policy(ErrorPolicy::Retry(2)),
            );
        }
        let txn = d.submit_flow("u", b.build().unwrap()).unwrap();
        let plan = FailurePlan::generate(
            d.grid().topology(),
            Duration::from_hours(6),
            Duration::from_secs(1200), // aggressive: MTBF 20 min
            Duration::from_secs(600),
            seed,
        );
        let state = pump_with_chaos(&mut d, &plan, &txn, SimTime::from_hours(12));
        assert!(state.is_terminal(), "seed {seed} wedged in {state}");
        if state == RunState::Completed {
            completed += 1;
        } else {
            // Failed runs must say why.
            let report = d.status(&txn, None).unwrap();
            assert!(report.message.is_some(), "failure without a message: {report}");
        }
        assert_no_leaks(&d);
        assert_attribution_invariant(&d);
    }
    assert!(completed >= 3, "retry+late-binding should save most runs: {completed}/6");
}

#[test]
fn transfer_flows_survive_link_churn() {
    for seed in 0..4u64 {
        let mut d = dfms(3, seed);
        // Seed objects at site0.
        let mut b = FlowBuilder::sequential("seed")
            .step("mk", DglOperation::CreateCollection { path: "/data".into() });
        for i in 0..6 {
            b = b.step(
                format!("p{i}"),
                DglOperation::Ingest { path: format!("/data/f{i}"), size: "500000000".into(), resource: "site0-disk".into() },
            );
        }
        d.submit_flow("u", b.build().unwrap()).unwrap();
        d.pump();

        // Replicate everything off-site with retries, under link churn.
        let mut b = FlowBuilder::sequential("spread");
        for i in 0..6 {
            b = b.add_step(
                Step::new(
                    format!("cp{i}"),
                    DglOperation::Replicate { path: format!("/data/f{i}"), src: None, dst: "site1-disk".into() },
                )
                .with_error_policy(ErrorPolicy::Retry(3)),
            );
        }
        let txn = d.submit_flow("u", b.build().unwrap()).unwrap();
        let plan = FailurePlan::generate(
            d.grid().topology(),
            Duration::from_hours(2),
            Duration::from_secs(900),
            Duration::from_secs(300),
            seed + 100,
        );
        let state = pump_with_chaos(&mut d, &plan, &txn, SimTime::from_hours(6));
        assert!(state.is_terminal());
        assert_no_leaks(&d);
        assert_attribution_invariant(&d);
        // Storage accounting stays exact regardless of outcome.
        let catalog_bytes: u64 = d.grid().stats().physical_bytes;
        let used: u64 = {
            let topo = d.grid().topology();
            topo.storage_ids().map(|s| topo.storage(s).used).sum()
        };
        assert_eq!(used, catalog_bytes, "seed {seed}: storage accounting drifted");
    }
}

#[test]
fn storage_outage_mid_flow_is_a_clean_failure() {
    let mut d = dfms(2, 9);
    let flow = FlowBuilder::sequential("doomed")
        .step("a", DglOperation::Ingest { path: "/a".into(), size: "80000000".into(), resource: "site1-disk".into() })
        .step("b", DglOperation::Ingest { path: "/b".into(), size: "80000000".into(), resource: "site1-disk".into() })
        .step("c", DglOperation::Ingest { path: "/c".into(), size: "80000000".into(), resource: "site1-disk".into() })
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    // Step a finishes (~1s); kill the destination store before b begins.
    d.pump_until(SimTime::ZERO + Duration::from_millis(1_500));
    let sid = d.grid().resolve_resource("site1-disk").unwrap();
    d.grid_mut().topology_mut().storage_mut(sid).online = false;
    d.pump();
    let report = d.status(&txn, None).unwrap();
    assert_eq!(report.state, RunState::Failed);
    assert!(report.message.as_deref().unwrap().contains("offline"), "{report}");
    assert!(d.grid().exists(&LogicalPath::parse("/a").unwrap()), "completed work persists");
    assert_no_leaks(&d);
    // The run is restartable once the resource returns.
    d.grid_mut().topology_mut().storage_mut(sid).online = true;
    let txn2 = d.restart(&txn).unwrap();
    d.pump();
    assert_eq!(d.status(&txn2, None).unwrap().state, RunState::Completed);
    // Steps a (and possibly the in-flight b, which completes before the
    // outage is observed) are skipped on restart.
    assert!(d.metrics().steps_skipped_restart >= 1);
}

#[test]
fn disconnected_grid_heals_and_work_resumes() {
    let mut d = dfms(2, 5);
    d.grid_mut()
        .execute(
            "u",
            Operation::Ingest { path: LogicalPath::parse("/big").unwrap(), size: 1_000_000_000, resource: "site0-disk".into() },
            SimTime::ZERO,
        )
        .unwrap();
    // Sever the only link, then submit a cross-site replicate with retries.
    let link = datagridflows::simgrid::LinkId(0);
    d.grid_mut().topology_mut().link_mut(link).online = false;
    let flow = FlowBuilder::sequential("cross")
        .add_step(
            Step::new("cp", DglOperation::Replicate { path: "/big".into(), src: None, dst: "site1-disk".into() })
                .with_error_policy(ErrorPolicy::Retry(5)),
        )
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump();
    // Retries exhausted while the island persists → failed...
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Failed);
    // ...but healing the link and restarting succeeds.
    d.grid_mut().topology_mut().link_mut(link).online = true;
    let txn2 = d.restart(&txn).unwrap();
    d.pump();
    assert_eq!(d.status(&txn2, None).unwrap().state, RunState::Completed);
    let obj = d.grid().stat_object(&LogicalPath::parse("/big").unwrap()).unwrap();
    assert_eq!(obj.replicas.len(), 2);
}

// ----------------------------------------------------------------------
// Crash recovery: hard kills against the write-ahead journal
// ----------------------------------------------------------------------

const LABEL: &str = "chaos-grid";

fn temp_journal(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dgf-chaos");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}-{}.dgj", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn exec_flow(name: &str, steps: usize, secs: u32) -> Flow {
    let mut b = FlowBuilder::sequential(name);
    for i in 0..steps {
        b = b.add_step(
            Step::new(
                format!("s{i}"),
                DglOperation::Execute {
                    code: format!("{name}-job{i}"),
                    nominal_secs: secs.to_string(),
                    resource_type: None,
                    inputs: vec![],
                    outputs: vec![],
                },
            )
            .with_error_policy(ErrorPolicy::Retry(2)),
        );
    }
    b.build().unwrap()
}

fn transfer_flow() -> Flow {
    FlowBuilder::sequential("xfer")
        .step("mk", DglOperation::CreateCollection { path: "/chaos".into() })
        .step(
            "put",
            DglOperation::Ingest { path: "/chaos/big".into(), size: "800000000".into(), resource: "site0-disk".into() },
        )
        .step("cp", DglOperation::Replicate { path: "/chaos/big".into(), src: None, dst: "site1-disk".into() })
        .build()
        .unwrap()
}

/// One external input to the engine — the unit the journal records.
/// Transaction ids are deterministic (`t1`, `t2`, ...), so lifecycle
/// commands can name them statically.
enum Cmd {
    Submit(Flow),
    PumpUntil(u64), // absolute sim-seconds
    Pump,
    Pause(&'static str),
    Resume(&'static str),
    Stop(&'static str),
    Restart(&'static str),
    Failure(FailureEvent),
    Procedure(&'static str, Flow),
    Call(&'static str),
}

impl Cmd {
    fn apply(&self, d: &mut Dfms) {
        match self {
            Cmd::Submit(flow) => drop(d.submit_flow("u", flow.clone())),
            Cmd::PumpUntil(secs) => drop(d.pump_until(SimTime::ZERO + Duration::from_secs(*secs))),
            Cmd::Pump => drop(d.pump()),
            Cmd::Pause(txn) => drop(d.pause(txn)),
            Cmd::Resume(txn) => drop(d.resume(txn)),
            Cmd::Stop(txn) => drop(d.stop(txn)),
            Cmd::Restart(txn) => drop(d.restart(txn)),
            Cmd::Failure(event) => d.apply_failure_event(*event),
            Cmd::Procedure(name, flow) => drop(d.register_procedure(*name, flow.clone())),
            Cmd::Call(name) => drop(d.call_procedure("u", name, &[])),
        }
    }
}

/// A deterministic scenario exercising the whole command vocabulary:
/// submissions, incremental pumping, pause/resume, failure injection,
/// stop/restart (restart-memo skips), procedures.
fn crash_script() -> Vec<Cmd> {
    vec![
        Cmd::Submit(exec_flow("alpha", 6, 180)), // t1
        Cmd::PumpUntil(400),
        Cmd::Pause("t1"),
        Cmd::Submit(transfer_flow()), // t2
        Cmd::PumpUntil(900),
        Cmd::Failure(FailureEvent::Compute(ComputeId(1), false)),
        Cmd::Resume("t1"),
        Cmd::PumpUntil(1500),
        Cmd::Failure(FailureEvent::Compute(ComputeId(1), true)),
        Cmd::Submit(exec_flow("beta", 4, 240)), // t3
        Cmd::PumpUntil(2000),
        Cmd::Stop("t3"),
        Cmd::Restart("t3"), // t4: resumes beta, skipping completed steps
        Cmd::Procedure("finisher", exec_flow("fin", 2, 60)),
        Cmd::Call("finisher"), // t5
        Cmd::Pump,
    ]
}

/// Everything that must survive a crash, as one comparable string: the
/// full provenance snapshot plus every flow's plain status report.
/// Metrics are deliberately excluded — a recovered engine legitimately
/// differs there (`steps.skipped.restart` counts replay fast-forwards).
fn fingerprint(d: &Dfms) -> String {
    let mut out = d.provenance().snapshot();
    for flow in d.recovery_query().flows {
        let report = d.status(&flow.transaction, None).unwrap();
        out.push_str(&format!("\n{}: {report}", flow.transaction));
    }
    out
}

fn journaled_reference(name: &str, config: JournalConfig) -> (Dfms, PathBuf) {
    let path = temp_journal(name);
    let mut reference = dfms(4, 7);
    reference.attach_journal(&path, LABEL, config).unwrap();
    for cmd in &crash_script() {
        cmd.apply(&mut reference);
    }
    (reference, path)
}

/// Recover from `path`, finish the remainder of the script live, and
/// return the engine plus the boot report.
fn recover_and_finish(path: &Path, config: JournalConfig) -> (Dfms, RecoveryReport) {
    let (mut revived, report) = Dfms::recover(path, LABEL, config, || dfms(4, 7)).unwrap();
    let replayed = report.replay.map(|r| r.commands_replayed).unwrap_or(0) as usize;
    for cmd in &crash_script()[replayed..] {
        cmd.apply(&mut revived);
    }
    (revived, report)
}

/// The dgf-why partition invariant: every completed flow's critical
/// path sums exactly to its makespan, chaos or not.
fn assert_attribution_invariant(d: &Dfms) {
    for p in d.obs().why_paths() {
        assert_eq!(
            p.segments_sum_us(),
            p.makespan_us(),
            "critical path of {} must partition its makespan",
            p.txn
        );
    }
}

#[test]
fn kill_at_every_record_boundary_recovers_byte_identically() {
    let config = JournalConfig { checkpoint_every: 3, ..Default::default() };
    let (reference, ref_path) = journaled_reference("boundary", config);
    let expected = fingerprint(&reference);
    let (records, _) = Journal::read(&ref_path).unwrap();
    let total = records.len();
    assert!(total > 20, "scenario too small to be interesting: {total} records");

    for keep in 0..=total {
        let crash_path = temp_journal(&format!("boundary-k{keep}"));
        std::fs::copy(&ref_path, &crash_path).unwrap();
        Journal::truncate_records(&crash_path, keep).unwrap();
        let (revived, report) = recover_and_finish(&crash_path, config);
        if let Some(replay) = report.replay {
            assert_eq!(replay.divergences, 0, "kill at record {keep}/{total}: replay diverged: {report}");
        }
        assert_eq!(fingerprint(&revived), expected, "kill at record {keep}/{total}");
        assert_no_leaks(&revived);
        let _ = std::fs::remove_file(&crash_path);
    }
    let _ = std::fs::remove_file(&ref_path);
}

#[test]
fn crash_during_paused_flow_recovers_paused() {
    let config = JournalConfig { checkpoint_every: 3, ..Default::default() };
    let (_, ref_path) = journaled_reference("paused", config);
    let (records, _) = Journal::read(&ref_path).unwrap();
    // Kill immediately after the pause command hit the disk (and before
    // the resume did).
    let pause_at = records
        .iter()
        .position(|r| r.body.name == "command" && r.body.attr("kind") == Some("pause"))
        .expect("script pauses t1");
    let crash_path = temp_journal("paused-crash");
    std::fs::copy(&ref_path, &crash_path).unwrap();
    Journal::truncate_records(&crash_path, pause_at + 1).unwrap();
    let (mut revived, report) = Dfms::recover(&crash_path, LABEL, config, || dfms(4, 7)).unwrap();
    assert_eq!(report.replay.unwrap().divergences, 0);
    // The recovered t1 is genuinely paused: resume succeeds (it errors
    // on anything not paused), and the run then drains to completion.
    revived.resume("t1").expect("t1 recovered in the paused state");
    revived.pump();
    assert_eq!(revived.status("t1", None).unwrap().state, RunState::Completed);
    let _ = std::fs::remove_file(&crash_path);
    let _ = std::fs::remove_file(&ref_path);
}

#[test]
fn crash_mid_transfer_replays_the_transfer_to_completion() {
    let config = JournalConfig { checkpoint_every: 3, ..Default::default() };
    let (_, ref_path) = journaled_reference("transfer", config);
    let (records, _) = Journal::read(&ref_path).unwrap();
    // The cross-site replicate of /chaos/big runs inside the pumpUntil
    // after t2's submission. Kill right after that pump command was
    // journaled but before any of its derived transitions: the command
    // replays to completion, staging included.
    let submit_t2 = records
        .iter()
        .position(|r| {
            r.body.name == "command"
                && r.body.attr("kind") == Some("submit")
                && r.body.to_xml().contains("xfer")
        })
        .or_else(|| {
            records.iter().position(|r| {
                r.body.name == "command"
                    && r.body.attr("kind") == Some("submitFlow")
                    && r.body.to_xml().contains("xfer")
            })
        })
        .expect("script submits the transfer flow");
    let pump_after = submit_t2
        + 1
        + records[submit_t2 + 1..]
            .iter()
            .position(|r| r.body.name == "command" && r.body.attr("kind") == Some("pumpUntil"))
            .expect("a pump follows the transfer submission");
    let crash_path = temp_journal("transfer-crash");
    std::fs::copy(&ref_path, &crash_path).unwrap();
    Journal::truncate_records(&crash_path, pump_after + 1).unwrap();
    let (revived, report) = Dfms::recover(&crash_path, LABEL, config, || dfms(4, 7)).unwrap();
    assert_eq!(report.replay.unwrap().divergences, 0);
    // The replicate finished during replay: both replicas exist.
    let obj = revived.grid().stat_object(&LogicalPath::parse("/chaos/big").unwrap()).unwrap();
    assert_eq!(obj.replicas.len(), 2, "mid-transfer crash must not lose the staging replicate");
    assert_no_leaks(&revived);
    let _ = std::fs::remove_file(&crash_path);
    let _ = std::fs::remove_file(&ref_path);
}

#[test]
fn crash_between_checkpoint_and_first_tail_record() {
    let config = JournalConfig { checkpoint_every: 3, ..Default::default() };
    let (reference, ref_path) = journaled_reference("ckpt", config);
    let expected = fingerprint(&reference);
    let (records, _) = Journal::read(&ref_path).unwrap();
    let ckpt_at = records
        .iter()
        .position(|r| r.body.name == "checkpoint")
        .expect("checkpoint_every=3 writes checkpoints");
    let crash_path = temp_journal("ckpt-crash");
    std::fs::copy(&ref_path, &crash_path).unwrap();
    Journal::truncate_records(&crash_path, ckpt_at + 1).unwrap();
    let (revived, report) = recover_and_finish(&crash_path, config);
    let replay = report.replay.unwrap();
    assert_eq!(replay.divergences, 0);
    // The checkpoint's provenance seeded the completed-step memo, and
    // replay accounted every one of those steps as a skip.
    assert!(
        replay.steps_skipped_restart > 0,
        "a post-checkpoint crash must fast-forward the checkpointed steps: {report}"
    );
    assert_eq!(fingerprint(&revived), expected);
    let _ = std::fs::remove_file(&crash_path);
    let _ = std::fs::remove_file(&ref_path);
}

#[test]
fn torn_tail_is_truncated_and_recovery_proceeds() {
    let config = JournalConfig { checkpoint_every: 3, ..Default::default() };
    let (reference, ref_path) = journaled_reference("torn", config);
    let expected = fingerprint(&reference);
    // Chop the file mid-record: a crash during a write leaves a frame
    // whose length/CRC cannot verify.
    let crash_path = temp_journal("torn-crash");
    let bytes = std::fs::read(&ref_path).unwrap();
    std::fs::write(&crash_path, &bytes[..bytes.len() - 7]).unwrap();
    let (revived, report) = recover_and_finish(&crash_path, config);
    let replay = report.replay.unwrap();
    assert!(replay.truncated_bytes > 0, "the torn frame must be reported: {report}");
    assert_eq!(replay.divergences, 0);
    assert_eq!(fingerprint(&revived), expected);
    let _ = std::fs::remove_file(&crash_path);
    let _ = std::fs::remove_file(&ref_path);
}

// ----------------------------------------------------------------------
// SLA alerts across crashes: lifecycles must replay byte-identically
// ----------------------------------------------------------------------

fn sla_flow(name: &str, steps: usize, secs: u32, deadline: u32) -> Flow {
    let mut b = FlowBuilder::sequential(name).with_deadline_secs(deadline);
    for i in 0..steps {
        b = b.step(
            format!("s{i}"),
            DglOperation::Execute {
                code: format!("{name}-job{i}"),
                nominal_secs: secs.to_string(),
                resource_type: None,
                inputs: vec![],
                outputs: vec![],
            },
        );
    }
    b.build().unwrap()
}

/// Alerts through every lifecycle edge: t1 meets its deadline (pending
/// → resolved, never fired); t2 blows through its 180 s budget while
/// paused and resumed (pending → firing → resolved, breached).
fn alert_script() -> Vec<Cmd> {
    vec![
        Cmd::Submit(sla_flow("sla-meet", 1, 60, 600)), // t1
        Cmd::PumpUntil(120),
        Cmd::Submit(sla_flow("sla-burn", 5, 300, 180)), // t2
        Cmd::PumpUntil(400), // fires at 300 s
        Cmd::Pause("t2"),
        Cmd::PumpUntil(600),
        Cmd::Resume("t2"),
        Cmd::Pump, // t2 resolves, breached
    ]
}

#[test]
fn crash_replays_alert_lifecycles_identically() {
    // No checkpoints: compaction would drop early transition records,
    // and this test wants the full alert lifecycle on disk (the
    // checkpointed paths are exercised by the boundary test above).
    let config = JournalConfig { checkpoint_every: u64::MAX, ..Default::default() };
    let ref_path = temp_journal("alerts");
    let mut reference = dfms(4, 7);
    reference.attach_journal(&ref_path, LABEL, config).unwrap();
    for cmd in &alert_script() {
        cmd.apply(&mut reference);
    }
    let expected = reference.why_query(&WhyQuery::new()).to_element().to_xml_pretty();

    // The scenario really exercised both lifecycles, and the partition
    // invariant holds for the analyzed flows.
    let report = reference.why_query(&WhyQuery::new());
    assert!(report.alerts.iter().any(|a| a.breached && a.fired_at_us.is_some()), "{report}");
    assert!(report.alerts.iter().any(|a| !a.breached && a.fired_at_us.is_none()), "{report}");
    assert_attribution_invariant(&reference);

    // Alert transitions are first-class journal records.
    let (records, _) = Journal::read(&ref_path).unwrap();
    let alert_states: Vec<&str> = records
        .iter()
        .filter(|r| r.body.name == "transition" && r.body.attr("kind") == Some("alert"))
        .filter_map(|r| r.body.attr("state"))
        .collect();
    assert!(alert_states.contains(&"pending") && alert_states.contains(&"firing") && alert_states.contains(&"resolved"), "{alert_states:?}");

    // Kill at every record boundary: replay never diverges, and the
    // full whyReport — paths, bottlenecks, and alert lifecycles with
    // their burn rates — is byte-identical after recovery.
    let total = records.len();
    for keep in 0..=total {
        let crash_path = temp_journal(&format!("alerts-k{keep}"));
        std::fs::copy(&ref_path, &crash_path).unwrap();
        Journal::truncate_records(&crash_path, keep).unwrap();
        let (mut revived, boot) = Dfms::recover(&crash_path, LABEL, config, || dfms(4, 7)).unwrap();
        let replayed = boot.replay.as_ref().map(|r| r.commands_replayed).unwrap_or(0) as usize;
        if let Some(replay) = boot.replay {
            assert_eq!(replay.divergences, 0, "kill at record {keep}/{total}: alert replay diverged");
        }
        for cmd in &alert_script()[replayed..] {
            cmd.apply(&mut revived);
        }
        assert_eq!(
            revived.why_query(&WhyQuery::new()).to_element().to_xml_pretty(),
            expected,
            "kill at record {keep}/{total}: recovered whyReport drifted"
        );
        let _ = std::fs::remove_file(&crash_path);
    }
    let _ = std::fs::remove_file(&ref_path);
}
