//! Wire-format conformance for the schema structures of Figures 1–4:
//! hand-written DGL documents (as the paper's IDE would emit) parse,
//! execute, and round-trip; property tests fuzz the document layer.

use datagridflows::dgl::{self, parse_request, DataGridRequest, RequestBody};
use datagridflows::prelude::*;
use proptest::prelude::*;

/// Figure 1 + Figure 3: a hand-authored flow using every section —
/// variables, flowLogic with control choice and userDefinedRules,
/// children.
#[test]
fn hand_written_figure1_document_parses_and_runs() {
    let doc = r#"<?xml version="1.0"?>
<dataGridRequest id="fig1" mode="synchronous">
  <gridUser name="arun"/>
  <flow name="figure-one">
    <variables>
      <variable name="base" value="/demo"/>
      <variable name="i" value="0"/>
    </variables>
    <flowLogic>
      <while><tcondition>i &lt; 2</tcondition></while>
      <userDefinedRule name="beforeEntry">
        <tcondition>'go'</tcondition>
        <action name="go">
          <step name="announce"><operation><notify>starting over ${base}</notify></operation></step>
        </action>
      </userDefinedRule>
    </flowLogic>
    <children>
      <step name="mk"><operation><createCollection path="${base}-${i}"/></operation></step>
      <step name="advance"><operation><assign variable="i"><expr>i + 1</expr></assign></operation></step>
    </children>
  </flow>
</dataGridRequest>"#;
    let request = parse_request(doc).unwrap();
    match &request.body {
        RequestBody::Flow(flow) => {
            assert_eq!(flow.name, "figure-one");
            assert_eq!(flow.variables.len(), 2);
            assert_eq!(flow.logic.rules.len(), 1);
            flow.validate().unwrap();
        }
        other => panic!("{other:?}"),
    }

    // And it executes.
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 1 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("arun", topology.domain_ids().next().unwrap()));
    users.make_admin("arun").unwrap();
    let mut dfms = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 1));
    let response = dfms.handle(request);
    match response.body {
        ResponseBody::Status(s) => assert_eq!(s.state, RunState::Completed),
        other => panic!("{other:?}"),
    }
    assert!(dfms.grid().exists(&LogicalPath::parse("/demo-0").unwrap()));
    assert!(dfms.grid().exists(&LogicalPath::parse("/demo-1").unwrap()));
    assert_eq!(dfms.notifications().len(), 1, "beforeEntry rule fired once, at flow entry");
}

/// Figure 2: both request payload kinds.
#[test]
fn figure2_request_variants() {
    let flow_doc = r#"<dataGridRequest id="a"><gridUser name="u"/><flow name="f"><flowLogic><sequential/></flowLogic><children/></flow></dataGridRequest>"#;
    let request = parse_request(flow_doc).unwrap();
    assert!(matches!(request.body, RequestBody::Flow(_)));

    let query_doc = r#"<dataGridRequest id="b" mode="asynchronous"><gridUser name="u" vo="cms"/><flowStatusQuery transaction="t7" node="/0/3/1"/></dataGridRequest>"#;
    let request = parse_request(query_doc).unwrap();
    assert_eq!(request.vo.as_deref(), Some("cms"));
    match request.body {
        RequestBody::StatusQuery(q) => {
            assert_eq!(q.transaction, "t7");
            assert_eq!(q.node.as_deref(), Some("/0/3/1"));
        }
        other => panic!("{other:?}"),
    }
}

/// Figure 4: both response payload kinds, round-tripped.
#[test]
fn figure4_response_variants_round_trip() {
    let ack = dgl::DataGridResponse::ack(
        "r1",
        dgl::RequestAck { transaction: "t1".into(), state: RunState::Pending, valid: true, message: None },
    );
    assert_eq!(dgl::parse_response(&ack.to_xml()).unwrap(), ack);
    let status = dgl::DataGridResponse::status(
        "r2",
        dgl::StatusReport {
            transaction: "t1".into(),
            node: "/0".into(),
            name: "stage".into(),
            state: RunState::Running,
            steps_completed: 2,
            steps_total: 8,
            message: Some("staging tier-1".into()),
            children: vec![("/0/0".into(), "cp".into(), RunState::Completed)],
            events: vec![],
            metrics: vec![],
            spans: vec![],
        },
    );
    assert_eq!(dgl::parse_response(&status.to_xml()).unwrap(), status);
}

// ----------------------------------------------------------------------
// Property tests over the wire format
// ----------------------------------------------------------------------

fn op_strategy() -> impl Strategy<Value = DglOperation> {
    let name = "[a-z][a-z0-9-]{0,10}";
    let path = "/[a-z][a-z0-9/]{0,14}";
    prop_oneof![
        path.prop_map(|p: String| DglOperation::CreateCollection { path: p }),
        (path, 1u64..1_000_000, name).prop_map(|(p, s, r)| DglOperation::Ingest { path: p, size: s.to_string(), resource: r }),
        (path, name).prop_map(|(p, r)| DglOperation::Replicate { path: p, src: None, dst: r }),
        (path, name, name).prop_map(|(p, a, b)| DglOperation::Migrate { path: p, from: a, to: b }),
        path.prop_map(|p: String| DglOperation::Delete { path: p }),
        (path, any::<bool>()).prop_map(|(p, r)| DglOperation::Checksum { path: p, resource: None, register: r }),
        (path, name, name).prop_map(|(p, a, v)| DglOperation::SetMetadata { path: p, attribute: a, value: v }),
        "[ -~]{0,30}".prop_map(|m| DglOperation::Notify { message: m.replace("${", "$ {") }),
    ]
}

fn flow_strategy() -> impl Strategy<Value = Flow> {
    let step = ("[a-z][a-z0-9]{0,8}", op_strategy()).prop_map(|(n, op)| Step::new(n, op));
    let leaf = ("[a-z][a-z0-9]{0,8}", proptest::collection::vec(step, 0..5)).prop_map(|(name, mut steps)| {
        // Deduplicate sibling names to keep the flow valid.
        for (i, s) in steps.iter_mut().enumerate() {
            s.name = format!("{}{i}", s.name);
        }
        Flow::sequence(name, steps)
    });
    leaf.prop_recursive(3, 24, 4, |inner| {
        ("[a-z][a-z0-9]{0,8}", proptest::collection::vec(inner, 1..4)).prop_map(|(name, mut flows)| {
            for (i, f) in flows.iter_mut().enumerate() {
                f.name = format!("{}{i}", f.name);
            }
            Flow::parallel_flows(name, flows)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any structurally valid flow survives request XML round-trips.
    #[test]
    fn arbitrary_flows_round_trip_the_wire(flow in flow_strategy()) {
        prop_assume!(flow.validate().is_ok());
        let request = DataGridRequest::flow("prop", "user", flow.clone()).asynchronous();
        let xml = request.to_xml();
        let parsed = parse_request(&xml).expect("round trip parses");
        prop_assert_eq!(parsed, request);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn request_parser_is_panic_free(input in "\\PC{0,300}") {
        let _ = parse_request(&input);
    }

    /// Any structurally valid flow survives a validation-query XML
    /// round trip (the lint wire pair's request half).
    #[test]
    fn validation_queries_round_trip_the_wire(flow in flow_strategy()) {
        prop_assume!(flow.validate().is_ok());
        let request = DataGridRequest::validation("prop", "user", flow);
        let xml = request.to_xml();
        let parsed = parse_request(&xml).expect("round trip parses");
        prop_assert_eq!(parsed, request);
    }

    /// Any diagnostic list survives a validation-report XML round trip
    /// (the lint wire pair's response half).
    #[test]
    fn validation_reports_round_trip_the_wire(
        flow_name in "[a-z][a-z0-9-]{0,10}",
        valid in any::<bool>(),
        diags in proptest::collection::vec(diagnostic_strategy(), 0..6),
    ) {
        let report = ValidationReport { flow: flow_name, valid, diagnostics: diags };
        let response = dgl::DataGridResponse::validation("prop", report);
        let xml = response.to_xml();
        let parsed = dgl::parse_response(&xml).expect("round trip parses");
        prop_assert_eq!(parsed, response);
    }
}

fn diagnostic_strategy() -> impl Strategy<Value = Diagnostic> {
    (
        "DGF0[0-9]{2}",
        prop_oneof![Just(Severity::Info), Just(Severity::Warning), Just(Severity::Error)],
        "/[a-z][a-z0-9/]{0,14}",
        // Printable, with inner whitespace but no leading/trailing runs
        // (attribute values survive; the codec never trims interior).
        "[!-~]([ -~]{0,20}[!-~])?",
        proptest::option::of("[!-~]([ -~]{0,20}[!-~])?"),
    )
        .prop_map(|(code, severity, node, message, hint)| {
            let d = Diagnostic::new(code, severity, node, message);
            match hint {
                Some(h) => d.with_hint(h),
                None => d,
            }
        })
}

fn replay_strategy() -> impl Strategy<Value = ReplayStats> {
    (0u64..10_000, 0u64..500, 0u64..5_000, 0u64..5, 0u64..200).prop_map(
        |(truncated_bytes, commands_replayed, records_matched, divergences, steps_skipped_restart)| {
            ReplayStats {
                truncated_bytes,
                commands_replayed,
                records_matched,
                divergences,
                steps_skipped_restart,
            }
        },
    )
}

fn flow_recovery_strategy() -> impl Strategy<Value = dgl::FlowRecovery> {
    (
        "t[1-9][0-9]{0,3}",
        "[a-z][a-z0-9-]{0,10}",
        prop_oneof![
            Just(RunState::Pending),
            Just(RunState::Running),
            Just(RunState::Paused),
            Just(RunState::Completed),
            Just(RunState::Failed),
            Just(RunState::Stopped),
            Just(RunState::Skipped),
        ],
        0u64..50,
        0u64..50,
        any::<bool>(),
    )
        .prop_map(|(transaction, lineage, state, steps_completed, extra, resumed)| {
            dgl::FlowRecovery {
                transaction,
                lineage,
                state,
                steps_completed,
                steps_total: steps_completed + extra,
                resumed,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The crash-recovery wire pair's request half: any recovery query
    /// survives a request XML round trip.
    #[test]
    fn recovery_queries_round_trip_the_wire(flows in any::<bool>()) {
        let request = DataGridRequest::recovery("prop", "operator", RecoveryQuery { flows });
        let xml = request.to_xml();
        let parsed = parse_request(&xml).expect("round trip parses");
        prop_assert_eq!(parsed, request);
    }

    /// The crash-recovery wire pair's response half: any recovery
    /// report — journaled or not, replayed or not, with any mix of
    /// per-flow outcomes — survives a response XML round trip.
    #[test]
    fn recovery_reports_round_trip_the_wire(
        time_us in 0u64..u64::MAX / 2,
        journaled in any::<bool>(),
        journal_records in 0u64..100_000,
        journal_bytes in 0u64..10_000_000,
        last_checkpoint_seq in proptest::option::of(0u64..100_000),
        replay in proptest::option::of(replay_strategy()),
        flows in proptest::collection::vec(flow_recovery_strategy(), 0..5),
    ) {
        let report = RecoveryReport {
            time_us,
            journaled,
            journal_records,
            journal_bytes,
            last_checkpoint_seq,
            replay,
            flows,
        };
        let response = dgl::DataGridResponse::recovery("prop", report);
        let xml = response.to_xml();
        let parsed = dgl::parse_response(&xml).expect("round trip parses");
        prop_assert_eq!(parsed, response);
    }
}

fn profile_phase_strategy() -> impl Strategy<Value = dgl::ProfilePhase> {
    (
        0u32..5,
        "[a-z][a-z-]{0,14}",
        0u64..1_000_000,
        0u64..u64::MAX / 2,
        0u64..u64::MAX / 2,
        0u64..1_000_000,
    )
        .prop_map(|(depth, phase, calls, sim_us, wall_ns, allocs)| dgl::ProfilePhase {
            depth,
            phase,
            calls,
            sim_us,
            wall_ns,
            allocs,
        })
}

fn lock_histogram_strategy() -> impl Strategy<Value = dgl::LockHistogram> {
    ("[a-z][a-z-]{0,14}", 0u64..100_000, 0u64..u64::MAX / 2, 0u64..1_000_000, 0u64..u64::MAX / 2)
        .prop_map(|(name, count, sum_ns, min_ns, max_ns)| dgl::LockHistogram {
            name,
            count,
            sum_ns,
            min_ns,
            max_ns,
        })
}

/// Folded-stack text as [`dgf_obs::ProfileSnapshot::folded`] emits it:
/// one `path;to;phase self_ns` line per node, newline-terminated.
fn folded_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(("[a-z][a-z-]{0,10}(;[a-z][a-z-]{0,10}){0,3}", 0u64..1_000_000), 1..6)
        .prop_map(|lines| lines.into_iter().map(|(path, ns)| format!("{path} {ns}\n")).collect())
}

fn contention_strategy() -> impl Strategy<Value = dgl::ServerContention> {
    (0u64..100_000, 0u64..100_000, 0u64..64, proptest::collection::vec(lock_histogram_strategy(), 0..4))
        .prop_map(|(enqueued, served, queue_depth_max, hists)| dgl::ServerContention {
            enqueued,
            served,
            queue_depth_max,
            hists,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The profiler wire pair's request half: every flag combination
    /// survives a request XML round trip.
    #[test]
    fn profile_queries_round_trip_the_wire(folded in any::<bool>(), reset in any::<bool>()) {
        let query = dgl::ProfileQuery::new().with_folded(folded).with_reset(reset);
        let request = DataGridRequest::profile("prop", "operator", query);
        let xml = request.to_xml();
        let parsed = parse_request(&xml).expect("round trip parses");
        prop_assert_eq!(parsed, request);
    }

    /// The profiler wire pair's response half: any phase tree, folded
    /// text, and contention block survives a response XML round trip —
    /// byte-exact on the folded text, which flamegraph tooling consumes.
    #[test]
    fn profile_reports_round_trip_the_wire(
        time_us in 0u64..u64::MAX / 2,
        phases in proptest::collection::vec(profile_phase_strategy(), 0..8),
        folded in proptest::option::of(folded_strategy()),
        contention in proptest::option::of(contention_strategy()),
    ) {
        let report = dgl::ProfileReport { time_us, phases, folded: folded.clone(), contention };
        let response = dgl::DataGridResponse::profile("prop", report);
        let xml = response.to_xml();
        let parsed = dgl::parse_response(&xml).expect("round trip parses");
        if let (Some(sent), dgl::ResponseBody::Profile(got)) = (folded, &parsed.body) {
            prop_assert_eq!(Some(sent), got.folded.clone());
        }
        prop_assert_eq!(parsed, response);
    }
}

fn wait_state_strategy() -> impl Strategy<Value = WaitState> {
    (0usize..WaitState::ALL.len()).prop_map(|i| WaitState::ALL[i])
}

/// Blame labels as the engine emits them: pool labels, window, and
/// link endpoints with the non-ASCII `→` separator.
fn resource_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z][a-z0-9-]{0,10}",
        "pool:[a-z][a-z0-9]{0,6}",
        "[a-z][a-z0-9-]{0,8}→[a-z][a-z0-9-]{0,8}",
        Just("window".to_string()),
    ]
}

fn why_segment_strategy() -> impl Strategy<Value = WhySegment> {
    (0u64..u64::MAX / 4, 0u64..u64::MAX / 4, wait_state_strategy(), resource_strategy(), "/[0-9/]{0,6}")
        .prop_map(|(from_us, len, state, resource, node)| WhySegment {
            from_us,
            until_us: from_us + len,
            state,
            resource,
            node,
        })
}

fn why_path_strategy() -> impl Strategy<Value = WhyPath> {
    (
        "t[1-9][0-9]{0,3}",
        "[a-z][a-z0-9-]{0,10}",
        0u64..u64::MAX / 4,
        0u64..u64::MAX / 4,
        proptest::option::of("[a-z][a-z0-9-]{0,10}"),
        proptest::collection::vec(why_segment_strategy(), 0..5),
    )
        .prop_map(|(txn, flow, start_us, len, caused_by, segments)| WhyPath {
            txn,
            flow,
            start_us,
            end_us: start_us + len,
            caused_by,
            segments,
        })
}

fn why_alert_strategy() -> impl Strategy<Value = WhyAlert> {
    (
        ("t[1-9][0-9]{0,3}", "[a-z][a-z0-9-]{0,8}", "[a-z][a-z0-9-]{0,10}", 0u64..u64::MAX / 4, 1u64..u64::MAX / 4),
        (
            prop_oneof![Just(AlertState::Pending), Just(AlertState::Firing), Just(AlertState::Resolved)],
            0u64..100_000_000,
            proptest::option::of(0u64..u64::MAX / 2),
            proptest::option::of(0u64..u64::MAX / 2),
            any::<bool>(),
        ),
    )
        .prop_map(|((txn, class, flow, started_us, budget), (state, burn_ppm, fired_at_us, resolved_at_us, breached))| {
            WhyAlert {
                txn,
                class,
                flow,
                started_us,
                deadline_us: started_us + budget,
                state,
                burn_ppm,
                fired_at_us,
                resolved_at_us,
                breached,
            }
        })
}

fn why_bottleneck_strategy() -> impl Strategy<Value = WhyBottleneck> {
    (wait_state_strategy(), resource_strategy(), 0u64..u64::MAX / 2, 0u64..1_000_001)
        .prop_map(|(state, resource, total_us, share_ppm)| WhyBottleneck { state, resource, total_us, share_ppm })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The attribution wire pair's request half: any filter/flag
    /// combination survives a request XML round trip.
    #[test]
    fn why_queries_round_trip_the_wire(
        flow in proptest::option::of("t[1-9][0-9]{0,3}"),
        top_k in 0u32..1000,
        paths in any::<bool>(),
        alerts in any::<bool>(),
    ) {
        let mut query = WhyQuery::new().with_top_k(top_k).with_paths(paths).with_alerts(alerts);
        if let Some(f) = flow {
            query = query.with_flow(f);
        }
        let request = DataGridRequest::why("prop", "operator", query);
        let xml = request.to_xml();
        let parsed = parse_request(&xml).expect("round trip parses");
        prop_assert_eq!(parsed, request);
    }

    /// The attribution wire pair's response half: any mix of critical
    /// paths (every wait state, `→`-labelled links), bottleneck rows,
    /// and alerts in any lifecycle state survives a response XML round
    /// trip.
    #[test]
    fn why_reports_round_trip_the_wire(
        time_us in 0u64..u64::MAX / 2,
        flows_analyzed in 0u64..100_000,
        attributed_us in 0u64..u64::MAX / 2,
        paths in proptest::collection::vec(why_path_strategy(), 0..4),
        bottlenecks in proptest::collection::vec(why_bottleneck_strategy(), 0..6),
        alerts in proptest::collection::vec(why_alert_strategy(), 0..4),
    ) {
        let report = WhyReport { time_us, flows_analyzed, attributed_us, paths, bottlenecks, alerts };
        let response = dgl::DataGridResponse::why("prop", report);
        let xml = response.to_xml();
        let parsed = dgl::parse_response(&xml).expect("round trip parses");
        prop_assert_eq!(parsed, response);
    }
}
