//! Time-travel semantics: replay-to-ordinal must be *exactly* a
//! truncated recovery (byte-identical provenance), `diff(a, a)` must
//! always be empty, bisection must stay inside its probe budget, and
//! the Perfetto exporter must round-trip large traces without
//! truncation. Journals are sampled from the same command vocabulary
//! the chaos suite kills engines with (see `tests/chaos.rs` and
//! `docs/TIME_TRAVEL.md`).

use datagridflows::dfms::{BisectPredicate, TimeTravel};
use datagridflows::obs::{SLICE_BEGIN, SLICE_END};
use datagridflows::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const LABEL: &str = "tt-grid";

fn dfms(domains: u32, seed: u64) -> Dfms {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains });
    let mut users = UserRegistry::new();
    users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
    users.make_admin("u").unwrap();
    Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, seed))
}

fn temp_journal(name: &str) -> PathBuf {
    static SERIAL: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("dgf-time-travel-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let serial = SERIAL.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("{name}-{}-{serial}.dgj", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn exec_flow(name: &str, steps: usize, secs: u32) -> Flow {
    let mut b = FlowBuilder::sequential(name);
    for i in 0..steps {
        b = b.add_step(
            Step::new(
                format!("s{i}"),
                DglOperation::Execute {
                    code: format!("{name}-job{i}"),
                    nominal_secs: secs.to_string(),
                    resource_type: None,
                    inputs: vec![],
                    outputs: vec![],
                },
            )
            .with_error_policy(ErrorPolicy::Retry(2)),
        );
    }
    b.build().unwrap()
}

fn transfer_flow(name: &str) -> Flow {
    FlowBuilder::sequential(name)
        .step("mk", DglOperation::CreateCollection { path: format!("/{name}") })
        .step(
            "put",
            DglOperation::Ingest {
                path: format!("/{name}/big"),
                size: "400000000".into(),
                resource: "site0-disk".into(),
            },
        )
        .step(
            "cp",
            DglOperation::Replicate { path: format!("/{name}/big"), src: None, dst: "site1-disk".into() },
        )
        .build()
        .unwrap()
}

/// One journaled input, drawn from the chaos-test command vocabulary.
/// Lifecycle commands target `t1` (transaction ids are deterministic);
/// they may fail depending on `t1`'s state — that is fine, the failure
/// replays identically.
#[derive(Debug, Clone)]
enum Cmd {
    SubmitExec { steps: usize, secs: u32 },
    SubmitTransfer,
    PumpSecs(u64),
    Pump,
    Pause,
    Resume,
    Stop,
}

impl Cmd {
    fn apply(&self, d: &mut Dfms, serial: usize) {
        match self {
            Cmd::SubmitExec { steps, secs } => {
                drop(d.submit_flow("u", exec_flow(&format!("e{serial}"), *steps, *secs)))
            }
            Cmd::SubmitTransfer => drop(d.submit_flow("u", transfer_flow(&format!("x{serial}")))),
            Cmd::PumpSecs(secs) => drop(d.pump_until(d.now() + Duration::from_secs(*secs))),
            Cmd::Pump => drop(d.pump()),
            Cmd::Pause => drop(d.pause("t1")),
            Cmd::Resume => drop(d.resume("t1")),
            Cmd::Stop => drop(d.stop("t1")),
        }
    }
}

fn cmd_strategy() -> impl Strategy<Value = Cmd> {
    prop_oneof![
        3 => (1usize..5, 30u32..300).prop_map(|(steps, secs)| Cmd::SubmitExec { steps, secs }),
        2 => Just(Cmd::SubmitTransfer),
        3 => (30u64..900).prop_map(Cmd::PumpSecs),
        1 => Just(Cmd::Pump),
        1 => Just(Cmd::Pause),
        1 => Just(Cmd::Resume),
        1 => Just(Cmd::Stop),
    ]
}

fn script_strategy() -> impl Strategy<Value = Vec<Cmd>> {
    proptest::collection::vec(cmd_strategy(), 3..12)
}

/// Run a script against a journaled engine and "crash" it (drop with
/// the journal as the only survivor).
fn grow_journal(name: &str, script: &[Cmd], config: JournalConfig) -> PathBuf {
    let path = temp_journal(name);
    let mut d = dfms(3, 7);
    d.attach_journal(&path, LABEL, config).unwrap();
    // A submission up front so lifecycle commands have a target.
    d.submit_flow("u", exec_flow("seed", 3, 120)).unwrap();
    for (i, cmd) in script.iter().enumerate() {
        cmd.apply(&mut d, i);
    }
    path
}

/// Everything `recover_to` promises to reproduce, as one comparable
/// string: the provenance snapshot plus every flow's status report.
fn fingerprint(d: &Dfms) -> String {
    let mut out = d.provenance().snapshot();
    for flow in d.flow_summaries() {
        out.push_str(&format!(
            "\n{} [{}] {}/{}",
            flow.transaction, flow.state, flow.steps_completed, flow.steps_total
        ));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `recover_to(None)` and `recover_to(last_ordinal)` are the full
    /// replay: byte-identical provenance and flow state to `recover()`.
    /// And `diff(a, a)` is empty at genesis, midpoint, and end.
    #[test]
    fn recover_to_end_matches_full_recovery(script in script_strategy(), checkpoint in 0u64..5) {
        let config = JournalConfig {
            checkpoint_every: checkpoint,
            compact_on_checkpoint: checkpoint > 0,
            ..Default::default()
        };
        let path = grow_journal("prop-full", &script, config);

        // Read-only materializations first (recover() writes a fresh
        // checkpoint into the file).
        let full = Dfms::recover_to(&path, LABEL, None, || dfms(3, 7)).unwrap();
        prop_assert!(full.complete);
        let at_last = full.ordinal.map(|last| {
            Dfms::recover_to(&path, LABEL, Some(last), || dfms(3, 7)).unwrap()
        });

        let travel = TimeTravel::new(&path, LABEL, || dfms(3, 7));
        if let Some(last) = full.ordinal {
            for a in [0, last / 2, last] {
                let d = travel.diff(a, a).unwrap();
                prop_assert!(d.is_empty(), "diff({a}, {a}) not empty: {d:?}");
            }
        }

        let (recovered, report) = Dfms::recover(&path, LABEL, config, || dfms(3, 7)).unwrap();
        if let Some(replay) = report.replay {
            prop_assert_eq!(replay.divergences, 0);
        }
        let expected = fingerprint(&recovered);
        prop_assert_eq!(&fingerprint(&full.engine), &expected, "recover_to(None) diverged");
        if let Some(m) = at_last {
            prop_assert_eq!(&fingerprint(&m.engine), &expected, "recover_to(last) diverged");
        }
        let _ = std::fs::remove_file(&path);
    }

    /// The provenance at ordinal `o` is an exact prefix of the full
    /// replay's provenance — the truncation is record-precise.
    #[test]
    fn recover_to_is_an_exact_provenance_prefix(script in script_strategy(), frac in 0u64..5) {
        let path = grow_journal("prop-prefix", &script, JournalConfig::default());
        let full = Dfms::recover_to(&path, LABEL, None, || dfms(3, 7)).unwrap();
        if let Some(last) = full.ordinal {
            let o = last * frac / 4;
            let partial = Dfms::recover_to(&path, LABEL, Some(o), || dfms(3, 7)).unwrap();
            prop_assert_eq!(partial.ordinal, Some(o));
            let full_records = full.engine.provenance().records();
            let partial_records = partial.engine.provenance().records();
            prop_assert!(partial_records.len() <= full_records.len());
            prop_assert_eq!(partial_records, &full_records[..partial_records.len()],
                "ordinal {} is not a prefix of the full replay", o);
        }
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn bisect_stays_inside_the_probe_budget_and_is_exact() {
    // No compaction, so the journal keeps every derived transition and
    // the record count bounds the ordinal count from above.
    let config = JournalConfig { checkpoint_every: 0, compact_on_checkpoint: false, ..Default::default() };
    let path = temp_journal("bisect");
    let mut d = dfms(3, 7);
    d.attach_journal(&path, LABEL, config).unwrap();
    let t1 = d.submit_flow("u", exec_flow("alpha", 25, 60)).unwrap();
    let t2 = d.submit_flow("u", exec_flow("beta", 10, 300)).unwrap();
    d.pump();
    drop(d);

    let (records, _) = Journal::read(&path).unwrap();
    let budget = 1 + (records.len() as f64).log2().ceil() as u64;

    let travel = TimeTravel::new(&path, LABEL, || dfms(3, 7));
    for (txn, what) in [(t1, "alpha"), (t2.clone(), "beta")] {
        let predicate = BisectPredicate::FlowState { transaction: txn, state: RunState::Completed };
        let outcome = travel.bisect(&predicate).unwrap();
        assert!(
            outcome.probes <= budget,
            "{what}: {} probes over the ⌈log2({})⌉ + 1 = {budget} budget",
            outcome.probes,
            records.len()
        );
        let first = outcome.first_true.expect("both flows complete");
        // Exactness: true at `first`, false one ordinal earlier.
        let at = travel.materialize(Some(first)).unwrap();
        assert!(predicate.eval(&at.engine), "{what}: predicate false at its first-true ordinal");
        if first > 0 {
            let before = travel.materialize(Some(first - 1)).unwrap();
            assert!(!predicate.eval(&before.engine), "{what}: predicate already true at {}", first - 1);
        }
    }

    // A predicate that never holds reports so after the single full probe.
    let never = BisectPredicate::FlowState { transaction: t2, state: RunState::Paused };
    let outcome = travel.bisect(&never).unwrap();
    assert_eq!(outcome.first_true, None);
    assert_eq!(outcome.probes, 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn diff_reports_exactly_the_delta_between_ordinals() {
    let path = temp_journal("diff");
    let mut d = dfms(3, 7);
    d.attach_journal(&path, LABEL, JournalConfig::default()).unwrap();
    let t1 = d.submit_flow("u", exec_flow("alpha", 6, 120)).unwrap();
    d.pump();
    drop(d);

    let travel = TimeTravel::new(&path, LABEL, || dfms(3, 7));
    let last = travel.last_ordinal().unwrap().expect("the flow derives transitions");
    let delta = travel.diff(0, last).unwrap();
    assert_eq!((delta.from, delta.to), (0, last));
    assert!(!delta.is_empty());
    assert!(delta.time_from_us <= delta.time_to_us);
    // The whole run's provenance beyond ordinal 0 shows up, and the
    // flow's state change is reported once.
    let full = travel.materialize(None).unwrap();
    let at_zero = travel.materialize(Some(0)).unwrap();
    assert_eq!(
        delta.provenance_added.len(),
        full.engine.provenance().records().len() - at_zero.engine.provenance().records().len()
    );
    assert_eq!(delta.flows.len(), 1);
    assert_eq!(delta.flows[0].transaction, t1);
    assert_eq!(delta.flows[0].to_state, Some(RunState::Completed));
    // Order-insensitive: diff(b, a) == diff(a, b).
    assert_eq!(travel.diff(last, 0).unwrap(), delta);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn time_travel_queries_answer_over_the_dgl_wire() {
    use datagridflows::dfms::DfmsServer;

    let path = temp_journal("wire");
    let factory = || dfms(3, 7);
    let server = DfmsServer::start_journaled(factory(), &path, LABEL, JournalConfig::default()).unwrap();
    {
        let engine = server.engine();
        let mut engine = engine.lock();
        engine.enable_time_travel(factory).unwrap();
        engine.submit_flow("u", exec_flow("alpha", 4, 120)).unwrap();
        engine.pump();
    }
    let handle = server.handle();

    let report = handle.time_travel(TimeTravelQuery::last()).expect("server alive");
    assert!(report.enabled);
    let last = report.last_ordinal.expect("the flow derived transitions");
    let inspect = report.inspect.expect("inspect op returns a summary");
    assert!(inspect.complete);
    assert_eq!(inspect.flows.len(), 1);
    assert_eq!(inspect.flows[0].state, RunState::Completed);

    let report = handle.time_travel(TimeTravelQuery::inspect(0)).unwrap();
    assert_eq!(report.inspect.unwrap().ordinal, Some(0));

    let report = handle.time_travel(TimeTravelQuery::diff(0, last)).unwrap();
    let diff = report.diff.expect("diff op returns a summary");
    assert_eq!((diff.from, diff.to), (0, last));
    assert!(diff.provenance_added > 0);

    let report = handle
        .time_travel(TimeTravelQuery::bisect(BisectSpec::State {
            transaction: "t1".into(),
            state: RunState::Completed,
        }))
        .unwrap();
    let bisect = report.bisect.expect("bisect op returns a summary");
    assert!(bisect.first_true.is_some());
    assert!(bisect.probes >= 1);

    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn time_travel_is_refused_without_a_console() {
    let mut d = dfms(2, 1);
    let report = d.time_travel_query(&TimeTravelQuery::last());
    assert!(!report.enabled);
    assert!(report.inspect.is_none() && report.diff.is_none() && report.bisect.is_none());
}

#[test]
fn perfetto_round_trips_a_hundred_thousand_spans() {
    // A synthetic forest: 50 traces of 2000 spans each, in overlapping
    // waves so the greedy lane packer actually has to multiplex.
    let mut spans = Vec::with_capacity(100_000);
    for trace in 0..50u64 {
        for i in 0..2_000u64 {
            let id = trace * 2_000 + i + 1;
            let start = i * 7;
            let open = i % 97 == 0;
            spans.push(Span {
                id: SpanId(id),
                trace: TraceId(trace + 1),
                parent: (i > 0).then(|| SpanId(trace * 2_000 + 1)),
                kind: SpanKind::ALL[(i % 6) as usize],
                name: format!("span-{id}"),
                start: SimTime(start),
                end: (!open).then(|| SimTime(start + 5 + i % 11)),
                attrs: vec![("seq".into(), i.to_string())],
            });
        }
    }
    assert_eq!(spans.len(), 100_000);
    let closed = spans.iter().filter(|s| s.end.is_some()).count();

    let bytes = to_perfetto_trace(&spans);
    let packets = decode_perfetto(&bytes).expect("the writer emits well-formed protobuf");

    let begins = packets
        .iter()
        .filter(|p| p.event.as_ref().is_some_and(|e| e.event_type == SLICE_BEGIN))
        .count();
    let ends = packets
        .iter()
        .filter(|p| p.event.as_ref().is_some_and(|e| e.event_type == SLICE_END))
        .count();
    assert_eq!(begins, 100_000, "every span must survive the export");
    assert_eq!(ends, closed, "every closed span must get its end packet");

    // Every event lands on a declared track, and lanes chain to roots.
    use std::collections::HashMap;
    let tracks: HashMap<u64, Option<u64>> = packets
        .iter()
        .filter_map(|p| p.track.as_ref())
        .map(|t| (t.uuid, t.parent_uuid))
        .collect();
    let roots = tracks.values().filter(|p| p.is_none()).count();
    assert_eq!(roots, 50, "one root track per trace");
    for p in &packets {
        if let Some(e) = &p.event {
            let parent = tracks.get(&e.track_uuid).expect("event on an undeclared track");
            assert!(parent.is_some_and(|pu| tracks.contains_key(&pu)), "lane without a root");
        }
    }

    // Determinism: the exporter is a pure function of the span list.
    assert_eq!(bytes, to_perfetto_trace(&spans));
}
