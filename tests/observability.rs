//! Cross-crate observability tests: flight-recorder determinism and the
//! DGL-visible query surface (`docs/OBSERVABILITY.md`).

use datagridflows::prelude::*;

/// A grid + workload that exercises every subsystem the recorder hooks:
/// DGMS ops, a compute placement (planner decision + staging), a trigger
/// firing, and a replication.
fn seeded_run(seed: u64) -> (Dfms, String) {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
    users.make_admin("u").unwrap();
    let mut d = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, seed));
    d.triggers_mut().register(
        Trigger::new("audit", "u", LogicalPath::parse("/w").unwrap(), TriggerAction::Notify("saw ${event.path}".into()))
            .on(&[EventKind::ObjectIngested]),
    );
    let flow = FlowBuilder::sequential("wf")
        .step("mk", DglOperation::CreateCollection { path: "/w".into() })
        .step("put", DglOperation::Ingest { path: "/w/in".into(), size: "100000000".into(), resource: "site0-pfs".into() })
        .step(
            "run",
            DglOperation::Execute {
                code: "job".into(),
                nominal_secs: "60".into(),
                resource_type: None,
                inputs: vec!["/w/in".into()],
                outputs: vec![("/w/out".into(), "5000".into())],
            },
        )
        .step("cp", DglOperation::Replicate { path: "/w/out".into(), src: None, dst: "site1-disk".into() })
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump();
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
    (d, txn)
}

#[test]
fn seeded_runs_record_identical_event_streams() {
    let (a, _) = seeded_run(7);
    let (b, _) = seeded_run(7);
    let ea: Vec<ObsEvent> = a.obs().events();
    let eb: Vec<ObsEvent> = b.obs().events();
    assert!(!ea.is_empty(), "a seeded run must record events");
    assert_eq!(ea, eb, "two identically-seeded runs must record identical streams");
    // The stream covers the whole stack, not just the engine.
    let names: Vec<&str> = ea.iter().map(|e| e.kind.name()).collect();
    for expected in ["run.submitted", "step.started", "planner.decision", "trigger.fired", "provenance.write", "run.finished"] {
        assert!(names.contains(&expected), "missing {expected} in {names:?}");
    }
    // Sequence numbers are gap-free and times never go backwards.
    for (i, w) in ea.windows(2).enumerate() {
        assert_eq!(w[1].seq, w[0].seq + 1, "gap after event {i}");
        assert!(w[1].time >= w[0].time, "clock went backwards at event {i}");
    }
}

#[test]
fn different_seeds_still_complete_and_record() {
    let (a, _) = seeded_run(7);
    let (b, _) = seeded_run(8);
    assert!(!a.obs().events().is_empty());
    assert!(!b.obs().events().is_empty());
}

#[test]
fn status_query_returns_events_and_metrics_over_the_wire() {
    let (mut d, txn) = seeded_run(7);
    let query = FlowStatusQuery::whole(&txn).with_events(10).with_metrics();
    let request = DataGridRequest::status("q1", "u", query);
    let response = datagridflows::dgl::parse_response(&d.handle_xml(&request.to_xml())).unwrap();
    let ResponseBody::Status(report) = response.body else { panic!("expected a status report") };
    assert_eq!(report.state, RunState::Completed);
    assert!(!report.events.is_empty() && report.events.len() <= 10);
    assert!(report.events.windows(2).all(|w| w[0].seq < w[1].seq), "events arrive oldest-first");
    // The metrics include engine counters and this run's scope, rendered.
    let counter = |scope: &str, name: &str| {
        report
            .metrics
            .iter()
            .find(|m| m.scope == scope && m.name == name)
            .unwrap_or_else(|| panic!("missing {scope}/{name}"))
            .value
            .parse::<u64>()
            .unwrap()
    };
    assert_eq!(counter("engine", "runs.completed"), 1);
    assert_eq!(counter("engine", "steps.executed"), 4);
    assert_eq!(counter(&format!("run:{txn}"), "steps.completed"), 4);
    assert!(counter("triggers", "fired") >= 1);
}

#[test]
fn node_scoped_event_queries_filter_to_the_subtree() {
    let (mut d, txn) = seeded_run(7);
    let query = FlowStatusQuery::node(&txn, "/2").with_events(100);
    let request = DataGridRequest::status("q2", "u", query);
    let response = datagridflows::dgl::parse_response(&d.handle_xml(&request.to_xml())).unwrap();
    let ResponseBody::Status(report) = response.body else { panic!("expected a status report") };
    assert!(!report.events.is_empty(), "the compute step has events");
    for e in &report.events {
        assert!(
            e.detail.contains("/2") || e.kind == "planner.decision" || e.kind == "transfer.scheduled",
            "event outside /2 subtree: {} {}",
            e.kind,
            e.detail
        );
    }
}

#[test]
fn legacy_metrics_shape_agrees_with_the_registry() {
    let (d, txn) = seeded_run(7);
    let legacy = d.metrics();
    let snap = d.metrics_snapshot();
    assert_eq!(legacy.runs_completed, snap.counter("engine", "runs.completed"));
    assert_eq!(legacy.steps_executed, snap.counter("engine", "steps.executed"));
    assert_eq!(legacy.bytes_moved, snap.counter("engine", "bytes.moved"));
    assert_eq!(snap.counter(&format!("run:{txn}"), "steps.completed"), legacy.steps_executed);
}
