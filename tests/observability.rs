//! Cross-crate observability tests: flight-recorder determinism and the
//! DGL-visible query surface (`docs/OBSERVABILITY.md`).

use datagridflows::prelude::*;

/// A grid + workload that exercises every subsystem the recorder hooks:
/// DGMS ops, a compute placement (planner decision + staging), a trigger
/// firing, and a replication.
fn seeded_run(seed: u64) -> (Dfms, String) {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
    users.make_admin("u").unwrap();
    let mut d = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, seed));
    d.triggers_mut().register(
        Trigger::new("audit", "u", LogicalPath::parse("/w").unwrap(), TriggerAction::Notify("saw ${event.path}".into()))
            .on(&[EventKind::ObjectIngested]),
    );
    let flow = FlowBuilder::sequential("wf")
        .step("mk", DglOperation::CreateCollection { path: "/w".into() })
        .step("put", DglOperation::Ingest { path: "/w/in".into(), size: "100000000".into(), resource: "site0-pfs".into() })
        .step(
            "run",
            DglOperation::Execute {
                code: "job".into(),
                nominal_secs: "60".into(),
                resource_type: None,
                inputs: vec!["/w/in".into()],
                outputs: vec![("/w/out".into(), "5000".into())],
            },
        )
        .step("cp", DglOperation::Replicate { path: "/w/out".into(), src: None, dst: "site1-disk".into() })
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump();
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
    (d, txn)
}

#[test]
fn seeded_runs_record_identical_event_streams() {
    let (a, _) = seeded_run(7);
    let (b, _) = seeded_run(7);
    let ea: Vec<ObsEvent> = a.obs().events();
    let eb: Vec<ObsEvent> = b.obs().events();
    assert!(!ea.is_empty(), "a seeded run must record events");
    assert_eq!(ea, eb, "two identically-seeded runs must record identical streams");
    // The stream covers the whole stack, not just the engine.
    let names: Vec<&str> = ea.iter().map(|e| e.kind.name()).collect();
    for expected in ["run.submitted", "step.started", "planner.decision", "trigger.fired", "provenance.write", "run.finished"] {
        assert!(names.contains(&expected), "missing {expected} in {names:?}");
    }
    // Sequence numbers are gap-free and times never go backwards.
    for (i, w) in ea.windows(2).enumerate() {
        assert_eq!(w[1].seq, w[0].seq + 1, "gap after event {i}");
        assert!(w[1].time >= w[0].time, "clock went backwards at event {i}");
    }
}

#[test]
fn different_seeds_still_complete_and_record() {
    let (a, _) = seeded_run(7);
    let (b, _) = seeded_run(8);
    assert!(!a.obs().events().is_empty());
    assert!(!b.obs().events().is_empty());
}

#[test]
fn status_query_returns_events_and_metrics_over_the_wire() {
    let (mut d, txn) = seeded_run(7);
    let query = FlowStatusQuery::whole(&txn).with_events(10).with_metrics();
    let request = DataGridRequest::status("q1", "u", query);
    let response = datagridflows::dgl::parse_response(&d.handle_xml(&request.to_xml())).unwrap();
    let ResponseBody::Status(report) = response.body else { panic!("expected a status report") };
    assert_eq!(report.state, RunState::Completed);
    assert!(!report.events.is_empty() && report.events.len() <= 10);
    assert!(report.events.windows(2).all(|w| w[0].seq < w[1].seq), "events arrive oldest-first");
    // The metrics include engine counters and this run's scope, rendered.
    let counter = |scope: &str, name: &str| {
        report
            .metrics
            .iter()
            .find(|m| m.scope == scope && m.name == name)
            .unwrap_or_else(|| panic!("missing {scope}/{name}"))
            .value
            .parse::<u64>()
            .unwrap()
    };
    assert_eq!(counter("engine", "runs.completed"), 1);
    assert_eq!(counter("engine", "steps.executed"), 4);
    assert_eq!(counter(&format!("run:{txn}"), "steps.completed"), 4);
    assert!(counter("triggers", "fired") >= 1);
}

#[test]
fn node_scoped_event_queries_filter_to_the_subtree() {
    let (mut d, txn) = seeded_run(7);
    let query = FlowStatusQuery::node(&txn, "/2").with_events(100);
    let request = DataGridRequest::status("q2", "u", query);
    let response = datagridflows::dgl::parse_response(&d.handle_xml(&request.to_xml())).unwrap();
    let ResponseBody::Status(report) = response.body else { panic!("expected a status report") };
    assert!(!report.events.is_empty(), "the compute step has events");
    for e in &report.events {
        assert!(
            e.detail.contains("/2") || e.kind == "planner.decision" || e.kind == "transfer.scheduled",
            "event outside /2 subtree: {} {}",
            e.kind,
            e.detail
        );
    }
}

#[test]
fn every_activity_span_parents_back_to_a_flow_root() {
    let (d, _) = seeded_run(7);
    let spans = d.obs().spans();
    assert!(!spans.is_empty(), "a seeded run must produce spans");
    let by_id: std::collections::HashMap<u64, &Span> = spans.iter().map(|s| (s.id.0, s)).collect();
    let activity = [
        SpanKind::SchedulerBinding,
        SpanKind::DgmsOp,
        SpanKind::NetworkTransfer,
        SpanKind::TriggerAction,
    ];
    for kind in activity {
        assert!(spans.iter().any(|s| s.kind == kind), "no {} span recorded", kind.name());
    }
    for s in &spans {
        assert!(s.end.is_some(), "span {} ({}) left open", s.id.0, s.name);
        assert!(s.end.unwrap() >= s.start, "span {} ends before it starts", s.id.0);
        if !activity.contains(&s.kind) {
            continue;
        }
        // Walk the parent chain: it must terminate at a flow span of the
        // same trace.
        let mut at = s;
        let mut hops = 0;
        while let Some(parent) = at.parent {
            at = by_id[&parent.0];
            assert_eq!(at.trace, s.trace, "parent chain crossed traces");
            hops += 1;
            assert!(hops < 64, "parent chain of span {} does not terminate", s.id.0);
        }
        assert_eq!(at.kind, SpanKind::Flow, "span {} ({}) roots at {:?}, not a flow", s.id.0, s.name, at.kind);
    }
}

#[test]
fn seeded_runs_export_byte_identical_chrome_traces() {
    let (a, _) = seeded_run(7);
    let (b, _) = seeded_run(7);
    let ja = a.obs().export_chrome_trace();
    let jb = b.obs().export_chrome_trace();
    assert!(ja.contains("\"traceEvents\""), "export is not chrome trace-event JSON: {ja}");
    assert!(ja.contains("\"ph\""), "export carries no events");
    assert_eq!(ja, jb, "identically-seeded runs must export byte-identical traces");
}

#[test]
fn trace_query_round_trips_the_dgl_wire() {
    let (mut d, txn) = seeded_run(7);
    let query = FlowStatusQuery::whole(&txn).with_trace();
    let request = DataGridRequest::status("q3", "u", query);
    let response = datagridflows::dgl::parse_response(&d.handle_xml(&request.to_xml())).unwrap();
    let ResponseBody::Status(report) = response.body else { panic!("expected a status report") };
    assert!(!report.spans.is_empty(), "with_trace must return spans");
    let ids: std::collections::HashSet<u64> = report.spans.iter().map(|s| s.id).collect();
    let root = report.spans.iter().find(|s| s.parent.is_none()).expect("a trace root");
    assert_eq!(root.kind, "flow");
    for s in &report.spans {
        assert_eq!(s.trace, root.trace, "whole-flow query returns a single trace");
        if let Some(p) = s.parent {
            assert!(ids.contains(&p), "span {} has a dangling parent {p}", s.id);
        }
        assert!(s.end_us.is_some(), "span {} still open in a completed run", s.id);
    }
    // The span tree reaches every instrumented layer over the wire.
    for kind in ["request", "scheduler-binding", "dgms-op", "network-transfer"] {
        assert!(report.spans.iter().any(|s| s.kind == kind), "missing {kind} span on the wire");
    }
    // Node-scoped queries narrow the tree to the subtree.
    let sub_q = FlowStatusQuery::node(&txn, "/2").with_trace();
    let sub_req = DataGridRequest::status("q4", "u", sub_q);
    let sub_resp = datagridflows::dgl::parse_response(&d.handle_xml(&sub_req.to_xml())).unwrap();
    let ResponseBody::Status(sub) = sub_resp.body else { panic!("expected a status report") };
    assert!(!sub.spans.is_empty(), "the compute node has spans");
    assert!(sub.spans.len() < report.spans.len(), "subtree query must narrow the span set");
}

#[test]
fn provenance_records_join_the_trace() {
    let (d, txn) = seeded_run(7);
    let records = d.provenance().query(&ProvenanceQuery::transaction(&txn));
    assert!(!records.is_empty());
    let spans = d.obs().spans();
    for r in records {
        let trace = r.trace_id.unwrap_or_else(|| panic!("record {} missing trace join", r.node));
        let span = r.span_id.expect("span join");
        let joined = spans
            .iter()
            .find(|s| s.trace.0 == trace && s.id.0 == span)
            .unwrap_or_else(|| panic!("record {} joins a missing span", r.node));
        assert!(
            matches!(joined.kind, SpanKind::Flow | SpanKind::Request),
            "provenance joins node spans, got {:?}",
            joined.kind
        );
    }
}

#[test]
fn legacy_metrics_shape_agrees_with_the_registry() {
    let (d, txn) = seeded_run(7);
    let legacy = d.metrics();
    let snap = d.metrics_snapshot();
    assert_eq!(legacy.runs_completed, snap.counter("engine", "runs.completed"));
    assert_eq!(legacy.steps_executed, snap.counter("engine", "steps.executed"));
    assert_eq!(legacy.bytes_moved, snap.counter("engine", "bytes.moved"));
    assert_eq!(snap.counter(&format!("run:{txn}"), "steps.completed"), legacy.steps_executed);
}
