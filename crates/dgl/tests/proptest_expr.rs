//! Property tests for the Tcondition expression language.

use dgf_dgl::{Expr, Scope, Value};
use proptest::prelude::*;

/// Random small integer arithmetic ASTs rendered to source text.
#[derive(Debug, Clone)]
enum Ast {
    Lit(i32),
    Add(Box<Ast>, Box<Ast>),
    Sub(Box<Ast>, Box<Ast>),
    Mul(Box<Ast>, Box<Ast>),
}

impl Ast {
    fn render(&self) -> String {
        match self {
            Ast::Lit(n) => {
                if *n < 0 {
                    format!("({n})")
                } else {
                    n.to_string()
                }
            }
            Ast::Add(l, r) => format!("({} + {})", l.render(), r.render()),
            Ast::Sub(l, r) => format!("({} - {})", l.render(), r.render()),
            Ast::Mul(l, r) => format!("({} * {})", l.render(), r.render()),
        }
    }

    fn eval(&self) -> i64 {
        match self {
            Ast::Lit(n) => *n as i64,
            Ast::Add(l, r) => l.eval().wrapping_add(r.eval()),
            Ast::Sub(l, r) => l.eval().wrapping_sub(r.eval()),
            Ast::Mul(l, r) => l.eval().wrapping_mul(r.eval()),
        }
    }
}

fn ast_strategy() -> impl Strategy<Value = Ast> {
    let leaf = (-100i32..100).prop_map(Ast::Lit);
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Ast::Add(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Ast::Sub(Box::new(l), Box::new(r))),
            (inner.clone(), inner).prop_map(|(l, r)| Ast::Mul(Box::new(l), Box::new(r))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The evaluator agrees with a reference interpreter on integer
    /// arithmetic (with explicit parentheses: the grammar oracle).
    #[test]
    fn arithmetic_matches_reference(ast in ast_strategy()) {
        let expr = Expr::parse(&ast.render()).unwrap();
        let v = expr.eval(&Scope::root()).unwrap();
        prop_assert_eq!(v, Value::Int(ast.eval()));
    }

    /// Comparison operators form a total order consistent with i64.
    #[test]
    fn comparisons_are_consistent(a in -1000i64..1000, b in -1000i64..1000) {
        let scope = Scope::root();
        let eval = |src: String| Expr::parse(&src).unwrap().eval_bool(&scope).unwrap();
        prop_assert_eq!(eval(format!("({a}) < ({b})")), a < b);
        prop_assert_eq!(eval(format!("({a}) <= ({b})")), a <= b);
        prop_assert_eq!(eval(format!("({a}) == ({b})")), a == b);
        prop_assert_eq!(eval(format!("({a}) != ({b})")), a != b);
        prop_assert_eq!(eval(format!("({a}) > ({b})")), a > b);
        prop_assert_eq!(eval(format!("({a}) >= ({b})")), a >= b);
    }

    /// Boolean operators satisfy De Morgan's laws.
    #[test]
    fn de_morgan(a in any::<bool>(), b in any::<bool>()) {
        let scope = Scope::root();
        let eval = |src: String| Expr::parse(&src).unwrap().eval_bool(&scope).unwrap();
        prop_assert_eq!(eval(format!("!({a} && {b})")), eval(format!("!{a} || !{b}")));
        prop_assert_eq!(eval(format!("!({a} || {b})")), eval(format!("!{a} && !{b}")));
    }

    /// Parsing is total (never panics) on arbitrary input.
    #[test]
    fn parser_never_panics(input in "\\PC{0,80}") {
        let _ = Expr::parse(&input);
    }

    /// source() is a faithful re-parseable rendering.
    #[test]
    fn source_reparses_to_equal_ast(ast in ast_strategy()) {
        let expr = Expr::parse(&ast.render()).unwrap();
        let again = Expr::parse(expr.source()).unwrap();
        prop_assert_eq!(again, expr);
    }

    /// Variables: an expression over declared variables equals the same
    /// expression with values inlined.
    #[test]
    fn variable_substitution(x in -50i64..50, y in -50i64..50) {
        let mut scope = Scope::root();
        scope.declare("x", Value::Int(x));
        scope.declare("y", Value::Int(y));
        let with_vars = Expr::parse("x * 2 + y").unwrap().eval(&scope).unwrap();
        let inlined = Expr::parse(&format!("({x}) * 2 + ({y})")).unwrap().eval(&Scope::root()).unwrap();
        prop_assert_eq!(with_vars, inlined);
    }

    /// String concatenation with + is associative at the value level.
    #[test]
    fn concat_associativity(a in "[a-z]{0,6}", b in "[a-z]{0,6}", c in "[a-z]{0,6}") {
        let scope = Scope::root();
        let left = Expr::parse(&format!("('{a}' + '{b}') + '{c}'")).unwrap().eval(&scope).unwrap();
        let right = Expr::parse(&format!("'{a}' + ('{b}' + '{c}')")).unwrap().eval(&scope).unwrap();
        prop_assert_eq!(left, right);
    }

    /// Interpolation never drops or duplicates literal text around a
    /// single variable reference.
    #[test]
    fn interpolation_preserves_surroundings(
        prefix in "[a-zA-Z0-9 /._-]{0,12}",
        suffix in "[a-zA-Z0-9 /._-]{0,12}",
        value in "[a-zA-Z0-9]{0,8}",
    ) {
        let mut scope = Scope::root();
        scope.declare("v", Value::Str(value.clone()));
        let template = format!("{prefix}${{v}}{suffix}");
        let rendered = dgf_dgl::interpolate(&template, &scope).unwrap();
        prop_assert_eq!(rendered, format!("{prefix}{value}{suffix}"));
    }
}
