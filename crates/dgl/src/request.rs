//! [`DataGridRequest`]: the client→DfMS document of Figure 2.

use crate::flow::Flow;
use crate::profile::ProfileQuery;
use crate::recovery::RecoveryQuery;
use crate::status::FlowStatusQuery;
use crate::telemetry::TelemetryQuery;
use crate::time_travel::TimeTravelQuery;
use crate::validation::FlowValidationQuery;
use crate::why::WhyQuery;

/// Whether the client wants to wait for execution or get an immediate
/// acknowledgement (Appendix A: "the requests can be synchronous or
/// asynchronous").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RequestMode {
    /// Reply after the flow finishes, with its final status.
    #[default]
    Synchronous,
    /// Reply immediately with a [`crate::RequestAck`]; poll via
    /// [`FlowStatusQuery`].
    Asynchronous,
}

/// The request's core component: "either a Flow or a FlowStatusQuery"
/// (Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// A workflow to execute.
    Flow(Flow),
    /// A status query on a previous transaction.
    StatusQuery(FlowStatusQuery),
    /// A grid-global telemetry query (metric scrape / event tail).
    Telemetry(TelemetryQuery),
    /// A lint-only request: analyze the flow, do not execute it.
    Validation(FlowValidationQuery),
    /// A journal/recovery status query (position, checkpoint, per-flow
    /// recovery outcome).
    Recovery(RecoveryQuery),
    /// A time-travel query over the server's journaled history
    /// (inspect an ordinal, diff two, or bisect for a predicate).
    TimeTravel(TimeTravelQuery),
    /// A performance-profile query (phase tree, folded stacks, server
    /// contention counters).
    Profile(ProfileQuery),
    /// An attribution query (critical paths, wait-state bottlenecks,
    /// SLA alerts).
    Why(WhyQuery),
}

/// A complete Data Grid Request: "general information including document
/// metadata, grid user information and the virtual organization to which
/// the user belongs," plus the body (Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub struct DataGridRequest {
    /// Client-chosen document id (echoed in the response).
    pub id: String,
    /// Human description of the request.
    pub description: String,
    /// The authenticated grid user submitting the request.
    pub user: String,
    /// The user's virtual organization, when acting within one.
    pub vo: Option<String>,
    /// Synchronous or asynchronous handling.
    pub mode: RequestMode,
    /// The flow or status query.
    pub body: RequestBody,
}

impl DataGridRequest {
    /// A synchronous flow-execution request.
    pub fn flow(id: impl Into<String>, user: impl Into<String>, flow: Flow) -> Self {
        DataGridRequest {
            id: id.into(),
            description: String::new(),
            user: user.into(),
            vo: None,
            mode: RequestMode::Synchronous,
            body: RequestBody::Flow(flow),
        }
    }

    /// A status-query request.
    pub fn status(id: impl Into<String>, user: impl Into<String>, query: FlowStatusQuery) -> Self {
        DataGridRequest {
            id: id.into(),
            description: String::new(),
            user: user.into(),
            vo: None,
            mode: RequestMode::Synchronous,
            body: RequestBody::StatusQuery(query),
        }
    }

    /// A telemetry request (grid-global scrape / event tail).
    pub fn telemetry(id: impl Into<String>, user: impl Into<String>, query: TelemetryQuery) -> Self {
        DataGridRequest {
            id: id.into(),
            description: String::new(),
            user: user.into(),
            vo: None,
            mode: RequestMode::Synchronous,
            body: RequestBody::Telemetry(query),
        }
    }

    /// A validation request: lint the flow without running it.
    pub fn validation(id: impl Into<String>, user: impl Into<String>, flow: Flow) -> Self {
        DataGridRequest {
            id: id.into(),
            description: String::new(),
            user: user.into(),
            vo: None,
            mode: RequestMode::Synchronous,
            body: RequestBody::Validation(FlowValidationQuery::new(flow)),
        }
    }

    /// A recovery request: where does the server's journal stand, and
    /// how did the last recovery go?
    pub fn recovery(id: impl Into<String>, user: impl Into<String>, query: RecoveryQuery) -> Self {
        DataGridRequest {
            id: id.into(),
            description: String::new(),
            user: user.into(),
            vo: None,
            mode: RequestMode::Synchronous,
            body: RequestBody::Recovery(query),
        }
    }

    /// A time-travel request over the server's journaled history.
    pub fn time_travel(id: impl Into<String>, user: impl Into<String>, query: TimeTravelQuery) -> Self {
        DataGridRequest {
            id: id.into(),
            description: String::new(),
            user: user.into(),
            vo: None,
            mode: RequestMode::Synchronous,
            body: RequestBody::TimeTravel(query),
        }
    }

    /// A profile request: phase attribution and server contention.
    pub fn profile(id: impl Into<String>, user: impl Into<String>, query: ProfileQuery) -> Self {
        DataGridRequest {
            id: id.into(),
            description: String::new(),
            user: user.into(),
            vo: None,
            mode: RequestMode::Synchronous,
            body: RequestBody::Profile(query),
        }
    }

    /// An attribution request: why flows took as long as they did.
    pub fn why(id: impl Into<String>, user: impl Into<String>, query: WhyQuery) -> Self {
        DataGridRequest {
            id: id.into(),
            description: String::new(),
            user: user.into(),
            vo: None,
            mode: RequestMode::Synchronous,
            body: RequestBody::Why(query),
        }
    }

    /// Builder-style async marking.
    #[must_use]
    pub fn asynchronous(mut self) -> Self {
        self.mode = RequestMode::Asynchronous;
        self
    }

    /// Builder-style description.
    #[must_use]
    pub fn with_description(mut self, d: impl Into<String>) -> Self {
        self.description = d.into();
        self
    }

    /// Builder-style VO.
    #[must_use]
    pub fn with_vo(mut self, vo: impl Into<String>) -> Self {
        self.vo = Some(vo.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Flow;

    #[test]
    fn builders_compose() {
        let r = DataGridRequest::flow("req-1", "arun", Flow::sequence("f", vec![]))
            .asynchronous()
            .with_description("nightly ILM")
            .with_vo("scec");
        assert_eq!(r.mode, RequestMode::Asynchronous);
        assert_eq!(r.vo.as_deref(), Some("scec"));
        assert!(matches!(r.body, RequestBody::Flow(_)));

        let q = DataGridRequest::status("req-2", "arun", FlowStatusQuery::whole("t9"));
        assert!(matches!(q.body, RequestBody::StatusQuery(_)));
        assert_eq!(q.mode, RequestMode::Synchronous);
    }
}
