//! [`DataGridResponse`]: the DfMS→client document of Figure 4.

use crate::profile::ProfileReport;
use crate::recovery::RecoveryReport;
use crate::status::{RunState, StatusReport};
use crate::telemetry::TelemetryReport;
use crate::time_travel::TimeTravelReport;
use crate::validation::ValidationReport;
use crate::why::WhyReport;

/// A Request Acknowledgement: "contains a unique identifier for each
/// request and the initial status of the request and its validity"
/// (Appendix A).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestAck {
    /// The transaction id assigned by the DfMS server.
    pub transaction: String,
    /// Initial state (normally [`RunState::Pending`] or
    /// [`RunState::Running`]).
    pub state: RunState,
    /// Whether the request passed validation; invalid requests carry a
    /// diagnostic in `message`.
    pub valid: bool,
    /// Optional diagnostic message.
    pub message: Option<String>,
}

/// The response payload.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Immediate acknowledgement (asynchronous requests, or rejects).
    Ack(RequestAck),
    /// Final or queried status (synchronous completions and status
    /// queries).
    Status(StatusReport),
    /// Grid-global telemetry (scrape text and/or event-tail page).
    Telemetry(TelemetryReport),
    /// Static-analysis diagnostics for a flow that was linted, not run.
    Validation(ValidationReport),
    /// Journal position and crash-recovery outcome.
    Recovery(RecoveryReport),
    /// A time-travel answer: an ordinal summary, a diff, or a
    /// bisection outcome over the server's journaled history.
    TimeTravel(TimeTravelReport),
    /// A performance-profile snapshot (phase tree, folded stacks,
    /// server contention counters).
    Profile(ProfileReport),
    /// An attribution snapshot (critical paths, wait-state
    /// bottlenecks, SLA alerts).
    Why(WhyReport),
}

/// A complete Data Grid Response, paired to a request by `request_id`.
#[derive(Debug, Clone, PartialEq)]
pub struct DataGridResponse {
    /// Echo of the request's document id.
    pub request_id: String,
    /// The payload.
    pub body: ResponseBody,
}

impl DataGridResponse {
    /// An acknowledgement response.
    pub fn ack(request_id: impl Into<String>, ack: RequestAck) -> Self {
        DataGridResponse { request_id: request_id.into(), body: ResponseBody::Ack(ack) }
    }

    /// A status response.
    pub fn status(request_id: impl Into<String>, report: StatusReport) -> Self {
        DataGridResponse { request_id: request_id.into(), body: ResponseBody::Status(report) }
    }

    /// A telemetry response.
    pub fn telemetry(request_id: impl Into<String>, report: TelemetryReport) -> Self {
        DataGridResponse { request_id: request_id.into(), body: ResponseBody::Telemetry(report) }
    }

    /// A validation (lint) response.
    pub fn validation(request_id: impl Into<String>, report: ValidationReport) -> Self {
        DataGridResponse { request_id: request_id.into(), body: ResponseBody::Validation(report) }
    }

    /// A recovery response.
    pub fn recovery(request_id: impl Into<String>, report: RecoveryReport) -> Self {
        DataGridResponse { request_id: request_id.into(), body: ResponseBody::Recovery(report) }
    }

    /// A time-travel response.
    pub fn time_travel(request_id: impl Into<String>, report: TimeTravelReport) -> Self {
        DataGridResponse { request_id: request_id.into(), body: ResponseBody::TimeTravel(report) }
    }

    /// A profile response.
    pub fn profile(request_id: impl Into<String>, report: ProfileReport) -> Self {
        DataGridResponse { request_id: request_id.into(), body: ResponseBody::Profile(report) }
    }

    /// A why (attribution) response.
    pub fn why(request_id: impl Into<String>, report: WhyReport) -> Self {
        DataGridResponse { request_id: request_id.into(), body: ResponseBody::Why(report) }
    }

    /// The transaction this response refers to. Telemetry, validation,
    /// recovery, time-travel, profile, and why responses describe no
    /// transaction (empty string): they are grid-global, or lint a flow
    /// that never ran.
    pub fn transaction(&self) -> &str {
        match &self.body {
            ResponseBody::Ack(a) => &a.transaction,
            ResponseBody::Status(s) => &s.transaction,
            ResponseBody::Telemetry(_)
            | ResponseBody::Validation(_)
            | ResponseBody::Recovery(_)
            | ResponseBody::TimeTravel(_)
            | ResponseBody::Profile(_)
            | ResponseBody::Why(_) => "",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transaction_extraction_covers_both_bodies() {
        let ack = DataGridResponse::ack(
            "r1",
            RequestAck { transaction: "t5".into(), state: RunState::Pending, valid: true, message: None },
        );
        assert_eq!(ack.transaction(), "t5");
        let st = DataGridResponse::status(
            "r2",
            StatusReport {
                transaction: "t6".into(),
                node: "/".into(),
                name: "f".into(),
                state: RunState::Completed,
                steps_completed: 1,
                steps_total: 1,
                message: None,
                children: vec![],
                events: vec![],
                metrics: vec![],
                spans: vec![],
            },
        );
        assert_eq!(st.transaction(), "t6");
        assert_eq!(st.request_id, "r2");
    }
}
