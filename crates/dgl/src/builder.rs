//! [`FlowBuilder`]: the programmatic API for composing flows.
//!
//! §3.1 requires "an API based interface for developers and expert users
//! to programmatically interact with the DfMS"; this builder is that
//! interface (the IDE of §3.2 would emit the same structures as XML).

use crate::error::DglError;
use crate::expr::Expr;
use crate::flow::{Case, Children, ControlPattern, Flow, FlowLogic, IterSource, UserDefinedRule, VarDecl};
use crate::step::{DglOperation, Step};

/// A fluent builder for [`Flow`] trees.
///
/// ```
/// use dgf_dgl::{DglOperation, FlowBuilder};
///
/// let flow = FlowBuilder::sequential("backup")
///     .var("src", "/home/scec/run1")
///     .step("snapshot", DglOperation::Replicate {
///         path: "${src}".into(), src: None, dst: "archive".into(),
///     })
///     .step("note", DglOperation::Notify { message: "backed up ${src}".into() })
///     .build()
///     .unwrap();
/// assert_eq!(flow.step_count(), 2);
/// ```
#[derive(Debug)]
pub struct FlowBuilder {
    name: String,
    variables: Vec<VarDecl>,
    pattern: ControlPattern,
    rules: Vec<UserDefinedRule>,
    steps: Vec<Step>,
    flows: Vec<Flow>,
}

impl FlowBuilder {
    fn new(name: impl Into<String>, pattern: ControlPattern) -> Self {
        FlowBuilder {
            name: name.into(),
            variables: Vec::new(),
            pattern,
            rules: Vec::new(),
            steps: Vec::new(),
            flows: Vec::new(),
        }
    }

    /// A flow whose children run in order.
    pub fn sequential(name: impl Into<String>) -> Self {
        Self::new(name, ControlPattern::Sequential)
    }

    /// A flow whose children run concurrently.
    pub fn parallel(name: impl Into<String>) -> Self {
        Self::new(name, ControlPattern::Parallel)
    }

    /// A while loop; `condition` is a Tcondition source string.
    pub fn while_loop(name: impl Into<String>, condition: &str) -> Result<Self, DglError> {
        Ok(Self::new(name, ControlPattern::While(Expr::parse(condition)?)))
    }

    /// A for-each over an explicit item list.
    pub fn for_each_items<I, S>(name: impl Into<String>, var: impl Into<String>, items: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::new(
            name,
            ControlPattern::ForEach {
                var: var.into(),
                source: IterSource::Items(items.into_iter().map(Into::into).collect()),
                parallel: false,
            },
        )
    }

    /// A for-each over every object in a collection.
    pub fn for_each_in_collection(
        name: impl Into<String>,
        var: impl Into<String>,
        collection: impl Into<String>,
    ) -> Self {
        Self::new(
            name,
            ControlPattern::ForEach {
                var: var.into(),
                source: IterSource::Collection(collection.into()),
                parallel: false,
            },
        )
    }

    /// A for-each over a metadata query's results.
    pub fn for_each_query(
        name: impl Into<String>,
        var: impl Into<String>,
        collection: impl Into<String>,
        attribute: impl Into<String>,
        value: impl Into<String>,
    ) -> Self {
        Self::new(
            name,
            ControlPattern::ForEach {
                var: var.into(),
                source: IterSource::Query {
                    collection: collection.into(),
                    attribute: attribute.into(),
                    value: value.into(),
                },
                parallel: false,
            },
        )
    }

    /// A switch on an expression; add one child per case via
    /// [`case`](Self::case) / [`default_case`](Self::default_case).
    pub fn switch(name: impl Into<String>, on: &str) -> Result<Self, DglError> {
        Ok(Self::new(name, ControlPattern::Switch { on: Expr::parse(on)?, cases: Vec::new() }))
    }

    /// Make a for-each run its iterations concurrently.
    #[must_use]
    pub fn concurrent(mut self) -> Self {
        if let ControlPattern::ForEach { parallel, .. } = &mut self.pattern {
            *parallel = true;
        }
        self
    }

    /// Declare a flow variable.
    #[must_use]
    pub fn var(mut self, name: impl Into<String>, initial: impl Into<String>) -> Self {
        self.variables.push(VarDecl::new(name, initial));
        self
    }

    /// Declare a per-flow SLA deadline via the reserved `dgf.deadline`
    /// variable: the engine opens a burn-rate alert that fires when
    /// the flow is still running `secs` simulated seconds after
    /// submission (see `docs/OBSERVABILITY.md`).
    #[must_use]
    pub fn with_deadline_secs(self, secs: impl std::fmt::Display) -> Self {
        self.var("dgf.deadline", secs.to_string())
    }

    /// Tag the flow with an SLA objective class via the reserved
    /// `dgf.class` variable. Flows without their own `dgf.deadline`
    /// inherit the budget registered for the class on the server.
    #[must_use]
    pub fn with_class(self, class: impl Into<String>) -> Self {
        self.var("dgf.class", class)
    }

    /// Attach a user-defined rule.
    #[must_use]
    pub fn rule(mut self, rule: UserDefinedRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Shorthand: an unconditional `beforeEntry` rule running `steps`.
    #[must_use]
    pub fn before_entry(mut self, steps: Vec<Step>) -> Self {
        self.rules.push(UserDefinedRule::unconditional(crate::flow::RULE_BEFORE_ENTRY, steps));
        self
    }

    /// Shorthand: an unconditional `afterExit` rule running `steps`.
    #[must_use]
    pub fn after_exit(mut self, steps: Vec<Step>) -> Self {
        self.rules.push(UserDefinedRule::unconditional(crate::flow::RULE_AFTER_EXIT, steps));
        self
    }

    /// Append a step child.
    #[must_use]
    pub fn step(mut self, name: impl Into<String>, op: DglOperation) -> Self {
        self.steps.push(Step::new(name, op));
        self
    }

    /// Append a pre-built step child.
    #[must_use]
    pub fn add_step(mut self, step: Step) -> Self {
        self.steps.push(step);
        self
    }

    /// Append a sub-flow child.
    #[must_use]
    pub fn flow(mut self, flow: Flow) -> Self {
        self.flows.push(flow);
        self
    }

    /// Append a switch arm matching `value`, executing `child`.
    #[must_use]
    pub fn case(mut self, value: impl Into<String>, child: Flow) -> Self {
        if let ControlPattern::Switch { cases, .. } = &mut self.pattern {
            cases.push(Case { value: Some(value.into()) });
        }
        self.flows.push(child);
        self
    }

    /// Append the default switch arm.
    #[must_use]
    pub fn default_case(mut self, child: Flow) -> Self {
        if let ControlPattern::Switch { cases, .. } = &mut self.pattern {
            cases.push(Case { value: None });
        }
        self.flows.push(child);
        self
    }

    /// Finish, validating the resulting tree.
    pub fn build(self) -> Result<Flow, DglError> {
        if !self.steps.is_empty() && !self.flows.is_empty() {
            return Err(DglError::Invalid(format!(
                "flow {:?}: children are sub-flows or steps, not both",
                self.name
            )));
        }
        let children = if self.flows.is_empty() {
            Children::Steps(self.steps)
        } else {
            Children::Flows(self.flows)
        };
        let flow = Flow {
            name: self.name,
            variables: self.variables,
            logic: FlowLogic { pattern: self.pattern, rules: self.rules },
            children,
        };
        flow.validate()?;
        Ok(flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::RULE_BEFORE_ENTRY;

    fn notify(msg: &str) -> DglOperation {
        DglOperation::Notify { message: msg.into() }
    }

    #[test]
    fn builds_nested_flows() {
        let inner = FlowBuilder::parallel("fan-out")
            .step("a", notify("a"))
            .step("b", notify("b"))
            .build()
            .unwrap();
        let outer = FlowBuilder::sequential("pipeline")
            .var("run", "42")
            .flow(inner)
            .flow(FlowBuilder::sequential("tail").step("c", notify("c")).build().unwrap())
            .build()
            .unwrap();
        assert_eq!(outer.step_count(), 3);
        assert_eq!(outer.depth(), 2);
    }

    #[test]
    fn rejects_mixed_children() {
        let err = FlowBuilder::sequential("bad")
            .step("s", notify("x"))
            .flow(Flow::sequence("f", vec![]))
            .build()
            .unwrap_err();
        assert!(matches!(err, DglError::Invalid(msg) if msg.contains("not both")));
    }

    #[test]
    fn while_and_switch_builders() {
        let loop_flow = FlowBuilder::while_loop("retry", "attempts < 3")
            .unwrap()
            .var("attempts", "0")
            .step("try", notify("trying"))
            .step(
                "count",
                DglOperation::Assign { variable: "attempts".into(), expr: Expr::parse("attempts + 1").unwrap() },
            )
            .build()
            .unwrap();
        assert_eq!(loop_flow.children.len(), 2);

        let sw = FlowBuilder::switch("route", "doc_type")
            .unwrap()
            .case("pdf", Flow::sequence("pdf-path", vec![Step::new("p", notify("pdf"))]))
            .case("image", Flow::sequence("image-path", vec![Step::new("i", notify("img"))]))
            .default_case(Flow::sequence("other", vec![Step::new("o", notify("other"))]))
            .build()
            .unwrap();
        match &sw.logic.pattern {
            ControlPattern::Switch { cases, .. } => assert_eq!(cases.len(), 3),
            other => panic!("expected switch, got {other:?}"),
        }
    }

    #[test]
    fn entry_exit_shorthands_set_reserved_names() {
        let f = FlowBuilder::sequential("f")
            .before_entry(vec![Step::new("init", notify("enter"))])
            .after_exit(vec![Step::new("fini", notify("exit"))])
            .step("body", notify("work"))
            .build()
            .unwrap();
        assert_eq!(f.logic.rules[0].name, RULE_BEFORE_ENTRY);
        assert_eq!(f.logic.rules.len(), 2);
    }

    #[test]
    fn builder_output_round_trips_via_xml() {
        let flow = FlowBuilder::for_each_query("sweep", "f", "/home", "type", "pdf")
            .concurrent()
            .step("verify", DglOperation::Checksum { path: "${f}".into(), resource: None, register: false })
            .build()
            .unwrap();
        let req = crate::DataGridRequest::flow("r", "u", flow.clone());
        let parsed = crate::parse_request(&req.to_xml()).unwrap();
        match parsed.body {
            crate::RequestBody::Flow(f) => assert_eq!(f, flow),
            _ => panic!("expected flow body"),
        }
    }

    #[test]
    fn builder_validates_through_flow_validate() {
        let err = FlowBuilder::sequential("dup")
            .step("same", notify("1"))
            .step("same", notify("2"))
            .build()
            .unwrap_err();
        assert!(matches!(err, DglError::Invalid(_)));
    }
}
