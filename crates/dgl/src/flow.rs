//! [`Flow`]: the recursive control structure of Figure 1.

use crate::error::DglError;
use crate::expr::Expr;
use crate::step::Step;

/// A variable declaration in a flow's `Variables` section.
///
/// The initial value is a template string, interpolated and then typed
/// (int → float → bool → string) when the flow enters.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Initial value template.
    pub initial: String,
}

impl VarDecl {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, initial: impl Into<String>) -> Self {
        VarDecl { name: name.into(), initial: initial.into() }
    }
}

/// Where a `for-each` flow draws its items from.
#[derive(Debug, Clone, PartialEq)]
pub enum IterSource {
    /// An explicit item list (templates, interpolated per run).
    Items(Vec<String>),
    /// Every object directly or transitively under a collection — "the
    /// workflow involves iterating some set of tasks over collections of
    /// files" (§2.3).
    Collection(String),
    /// Objects under `collection` whose metadata has `attribute == value`
    /// — "the files are used as input data and processed according to a
    /// datagrid query" (§2.3).
    Query { collection: String, attribute: String, value: String },
    /// The items already bound to a list variable (e.g. by a `query` step).
    Variable(String),
}

/// One arm of a `switch` flow. Arms pair positionally with the flow's
/// children: child *i* runs iff arm *i* matches.
#[derive(Debug, Clone, PartialEq)]
pub struct Case {
    /// Value to match against the switch expression's result; `None` is
    /// the default arm.
    pub value: Option<String>,
}

/// The control choice of Figure 3: "each flow defines a unique control
/// pattern that dictates how its contents should be executed, e.g.
/// sequentially, in parallel, while loop, for-each loop, switch-case".
#[derive(Debug, Clone, PartialEq)]
pub enum ControlPattern {
    /// Children run one after another; a failure aborts the rest.
    Sequential,
    /// Children run concurrently; the flow completes when all complete.
    Parallel,
    /// Children run repeatedly (sequentially) while the condition holds.
    While(Expr),
    /// Children run once per item, with `var` bound to the item.
    /// `parallel` controls whether iterations overlap.
    ForEach { var: String, source: IterSource, parallel: bool },
    /// Evaluate `on`; run the child whose case matches.
    Switch { on: Expr, cases: Vec<Case> },
}

impl ControlPattern {
    /// The DGL element name this pattern serializes as.
    pub fn tag(&self) -> &'static str {
        match self {
            ControlPattern::Sequential => "sequential",
            ControlPattern::Parallel => "parallel",
            ControlPattern::While(_) => "while",
            ControlPattern::ForEach { .. } => "forEach",
            ControlPattern::Switch { .. } => "switch",
        }
    }
}

/// One action inside a [`UserDefinedRule`].
#[derive(Debug, Clone, PartialEq)]
pub struct RuleAction {
    /// Action name — selected when the rule's condition evaluates to it.
    pub name: String,
    /// Steps executed when selected.
    pub steps: Vec<Step>,
}

/// An Event-Condition-Action rule (Appendix A): "a UserDefinedRule
/// consists of a condition and one or more action statements. ... The
/// Actions are executed if the condition statement evaluates to the name
/// of the action."
///
/// Two rule names are reserved and fired automatically: `beforeEntry`
/// (before the flow/step starts) and `afterExit` (after it finishes).
#[derive(Debug, Clone, PartialEq)]
pub struct UserDefinedRule {
    /// Rule name (`beforeEntry`, `afterExit`, or custom).
    pub name: String,
    /// The tcondition; its result (as a string) selects an action.
    pub condition: Expr,
    /// Candidate actions.
    pub actions: Vec<RuleAction>,
}

/// Reserved rule name fired before a flow or step starts.
pub const RULE_BEFORE_ENTRY: &str = "beforeEntry";
/// Reserved rule name fired after a flow or step finishes.
pub const RULE_AFTER_EXIT: &str = "afterExit";

impl UserDefinedRule {
    /// A rule whose condition selects among its actions.
    pub fn new(name: impl Into<String>, condition: Expr, actions: Vec<RuleAction>) -> Self {
        UserDefinedRule { name: name.into(), condition, actions }
    }

    /// A rule that always runs a single unconditional action.
    pub fn unconditional(name: impl Into<String>, steps: Vec<Step>) -> Self {
        UserDefinedRule {
            name: name.into(),
            condition: Expr::parse("'do'").expect("literal parses"),
            actions: vec![RuleAction { name: "do".into(), steps }],
        }
    }
}

/// The `FlowLogic` section (Figure 3): a control pattern plus the
/// user-defined rules "that encapsulate the actions that the Flow should
/// take upon starting up and before exiting".
#[derive(Debug, Clone, PartialEq)]
pub struct FlowLogic {
    /// The control structure.
    pub pattern: ControlPattern,
    /// ECA rules.
    pub rules: Vec<UserDefinedRule>,
}

impl FlowLogic {
    /// Sequential logic with no rules.
    pub fn sequential() -> Self {
        FlowLogic { pattern: ControlPattern::Sequential, rules: Vec::new() }
    }

    /// Parallel logic with no rules.
    pub fn parallel() -> Self {
        FlowLogic { pattern: ControlPattern::Parallel, rules: Vec::new() }
    }
}

/// A flow's children: "sub-flows or steps (but not both)" (Figure 1).
#[derive(Debug, Clone, PartialEq)]
pub enum Children {
    /// Nested flows.
    Flows(Vec<Flow>),
    /// Leaf steps.
    Steps(Vec<Step>),
}

impl Children {
    /// Number of direct children.
    pub fn len(&self) -> usize {
        match self {
            Children::Flows(f) => f.len(),
            Children::Steps(s) => s.len(),
        }
    }

    /// True when there are no children.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The recursive flow structure of Figure 1: Variables + FlowLogic +
/// Children.
#[derive(Debug, Clone, PartialEq)]
pub struct Flow {
    /// Flow name (unique among siblings).
    pub name: String,
    /// The `Variables` section.
    pub variables: Vec<VarDecl>,
    /// The `FlowLogic` section.
    pub logic: FlowLogic,
    /// The `Children` section.
    pub children: Children,
}

impl Flow {
    /// A sequential flow over steps.
    pub fn sequence(name: impl Into<String>, steps: Vec<Step>) -> Self {
        Flow { name: name.into(), variables: Vec::new(), logic: FlowLogic::sequential(), children: Children::Steps(steps) }
    }

    /// A parallel flow over sub-flows.
    pub fn parallel_flows(name: impl Into<String>, flows: Vec<Flow>) -> Self {
        Flow { name: name.into(), variables: Vec::new(), logic: FlowLogic::parallel(), children: Children::Flows(flows) }
    }

    /// Total number of steps in this subtree (rule-action steps excluded:
    /// they are data-dependent).
    pub fn step_count(&self) -> usize {
        match &self.children {
            Children::Steps(steps) => steps.len(),
            Children::Flows(flows) => flows.iter().map(Flow::step_count).sum(),
        }
    }

    /// Maximum flow nesting depth (a flow of steps is depth 1).
    pub fn depth(&self) -> usize {
        match &self.children {
            Children::Steps(_) => 1,
            Children::Flows(flows) => 1 + flows.iter().map(Flow::depth).max().unwrap_or(0),
        }
    }

    /// Structural validation of the whole subtree.
    ///
    /// Checks the constraints the XML schema cannot express locally:
    /// * switch flows have exactly one case per child and at most one
    ///   default arm;
    /// * for-each flows bind a non-empty variable name;
    /// * sibling names (flows or steps) are unique — status queries
    ///   address children by name;
    /// * rule names are unique within a flow/step;
    /// * every rule has at least one action, with unique action names;
    /// * rule-action steps are themselves well-formed (non-empty names,
    ///   unique within their action).
    pub fn validate(&self) -> Result<(), DglError> {
        self.validate_inner("")
    }

    fn validate_inner(&self, prefix: &str) -> Result<(), DglError> {
        let here = if prefix.is_empty() { self.name.clone() } else { format!("{prefix}/{}", self.name) };
        if self.name.is_empty() {
            return Err(DglError::Invalid(format!("flow under {prefix:?} has an empty name")));
        }
        if let ControlPattern::Switch { cases, .. } = &self.logic.pattern {
            if cases.len() != self.children.len() {
                return Err(DglError::Invalid(format!(
                    "{here}: switch has {} cases for {} children",
                    cases.len(),
                    self.children.len()
                )));
            }
            if cases.iter().filter(|c| c.value.is_none()).count() > 1 {
                return Err(DglError::Invalid(format!("{here}: switch has multiple default arms")));
            }
        }
        if let ControlPattern::ForEach { var, .. } = &self.logic.pattern {
            if var.is_empty() {
                return Err(DglError::Invalid(format!("{here}: for-each with empty variable name")));
            }
        }
        validate_rules(&self.logic.rules, &here)?;
        let mut names: Vec<&str> = Vec::with_capacity(self.children.len());
        match &self.children {
            Children::Flows(flows) => {
                for flow in flows {
                    names.push(&flow.name);
                    flow.validate_inner(&here)?;
                }
            }
            Children::Steps(steps) => {
                for step in steps {
                    if step.name.is_empty() {
                        return Err(DglError::Invalid(format!("{here}: step with empty name")));
                    }
                    names.push(&step.name);
                    validate_rules(&step.rules, &format!("{here}/{}", step.name))?;
                }
            }
        }
        let mut sorted = names.clone();
        sorted.sort_unstable();
        if let Some(dup) = sorted.windows(2).find(|w| w[0] == w[1]) {
            return Err(DglError::Invalid(format!("{here}: duplicate child name {:?}", dup[0])));
        }
        Ok(())
    }
}

fn validate_rules(rules: &[UserDefinedRule], context: &str) -> Result<(), DglError> {
    let mut names: Vec<&str> = rules.iter().map(|r| r.name.as_str()).collect();
    names.sort_unstable();
    if let Some(dup) = names.windows(2).find(|w| w[0] == w[1]) {
        return Err(DglError::Invalid(format!("{context}: duplicate rule {:?}", dup[0])));
    }
    for rule in rules {
        if rule.actions.is_empty() {
            return Err(DglError::Invalid(format!("{context}: rule {:?} has no actions", rule.name)));
        }
        let mut action_names: Vec<&str> = rule.actions.iter().map(|a| a.name.as_str()).collect();
        action_names.sort_unstable();
        if let Some(dup) = action_names.windows(2).find(|w| w[0] == w[1]) {
            return Err(DglError::Invalid(format!(
                "{context}: rule {:?} has duplicate action {:?}",
                rule.name, dup[0]
            )));
        }
        // Rule-action steps run inline via the engine's run_inline_step,
        // which addresses them by name in events and diagnostics — they
        // need the same name hygiene as regular children.
        for action in &rule.actions {
            let mut step_names: Vec<&str> = Vec::with_capacity(action.steps.len());
            for s in &action.steps {
                if s.name.is_empty() {
                    return Err(DglError::Invalid(format!(
                        "{context}: rule {:?} action {:?} has a step with an empty name",
                        rule.name, action.name
                    )));
                }
                step_names.push(&s.name);
            }
            step_names.sort_unstable();
            if let Some(dup) = step_names.windows(2).find(|w| w[0] == w[1]) {
                return Err(DglError::Invalid(format!(
                    "{context}: rule {:?} action {:?} has duplicate step {:?}",
                    rule.name, action.name, dup[0]
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::DglOperation;

    fn step(name: &str) -> Step {
        Step::new(name, DglOperation::Notify { message: "x".into() })
    }

    #[test]
    fn counting_and_depth() {
        let inner = Flow::sequence("inner", vec![step("a"), step("b")]);
        let outer = Flow::parallel_flows("outer", vec![inner.clone(), Flow::sequence("other", vec![step("c")])]);
        assert_eq!(outer.step_count(), 3);
        assert_eq!(outer.depth(), 2);
        assert_eq!(inner.depth(), 1);
        assert_eq!(outer.children.len(), 2);
        assert!(!outer.children.is_empty());
    }

    #[test]
    fn validation_accepts_well_formed_flows() {
        let flow = Flow {
            name: "f".into(),
            variables: vec![VarDecl::new("i", "0")],
            logic: FlowLogic {
                pattern: ControlPattern::While(Expr::parse("i < 3").unwrap()),
                rules: vec![UserDefinedRule::unconditional(RULE_BEFORE_ENTRY, vec![step("init")])],
            },
            children: Children::Steps(vec![step("body"), step("incr")]),
        };
        flow.validate().unwrap();
    }

    #[test]
    fn validation_rejects_switch_case_mismatch() {
        let flow = Flow {
            name: "sw".into(),
            variables: vec![],
            logic: FlowLogic {
                pattern: ControlPattern::Switch {
                    on: Expr::parse("'a'").unwrap(),
                    cases: vec![Case { value: Some("a".into()) }],
                },
                rules: vec![],
            },
            children: Children::Steps(vec![step("one"), step("two")]),
        };
        assert!(matches!(flow.validate(), Err(DglError::Invalid(msg)) if msg.contains("cases")));
    }

    #[test]
    fn validation_rejects_duplicate_names() {
        let flow = Flow::sequence("f", vec![step("same"), step("same")]);
        assert!(matches!(flow.validate(), Err(DglError::Invalid(msg)) if msg.contains("duplicate child")));
        let nested = Flow::parallel_flows(
            "p",
            vec![Flow::sequence("x", vec![]), Flow::sequence("x", vec![])],
        );
        assert!(nested.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_rules() {
        let mut flow = Flow::sequence("f", vec![step("a")]);
        flow.logic.rules = vec![UserDefinedRule::new("r", Expr::always(), vec![])];
        assert!(matches!(flow.validate(), Err(DglError::Invalid(msg)) if msg.contains("no actions")));

        flow.logic.rules = vec![UserDefinedRule::new(
            "r",
            Expr::always(),
            vec![
                RuleAction { name: "a".into(), steps: vec![] },
                RuleAction { name: "a".into(), steps: vec![] },
            ],
        )];
        assert!(matches!(flow.validate(), Err(DglError::Invalid(msg)) if msg.contains("duplicate action")));

        flow.logic.rules = vec![
            UserDefinedRule::unconditional("r", vec![]),
            UserDefinedRule::unconditional("r", vec![]),
        ];
        assert!(matches!(flow.validate(), Err(DglError::Invalid(msg)) if msg.contains("duplicate rule")));
    }

    #[test]
    fn validation_rejects_bad_rule_action_steps() {
        let mut flow = Flow::sequence("f", vec![step("a")]);
        flow.logic.rules = vec![UserDefinedRule::new(
            "r",
            Expr::always(),
            vec![RuleAction { name: "act".into(), steps: vec![step("")] }],
        )];
        assert!(matches!(flow.validate(), Err(DglError::Invalid(msg)) if msg.contains("empty name")));

        flow.logic.rules = vec![UserDefinedRule::new(
            "r",
            Expr::always(),
            vec![RuleAction { name: "act".into(), steps: vec![step("s"), step("s")] }],
        )];
        assert!(matches!(flow.validate(), Err(DglError::Invalid(msg)) if msg.contains("duplicate step")));

        // Well-named inline steps still pass.
        flow.logic.rules =
            vec![UserDefinedRule::new("r", Expr::always(), vec![RuleAction { name: "act".into(), steps: vec![step("s"), step("t")] }])];
        flow.validate().unwrap();
    }

    #[test]
    fn validation_rejects_multiple_defaults_and_empty_names() {
        let flow = Flow {
            name: "sw".into(),
            variables: vec![],
            logic: FlowLogic {
                pattern: ControlPattern::Switch {
                    on: Expr::parse("'a'").unwrap(),
                    cases: vec![Case { value: None }, Case { value: None }],
                },
                rules: vec![],
            },
            children: Children::Steps(vec![step("one"), step("two")]),
        };
        assert!(flow.validate().is_err());
        let empty_named = Flow::sequence("", vec![]);
        assert!(empty_named.validate().is_err());
        let empty_step = Flow::sequence("f", vec![step("")]);
        assert!(empty_step.validate().is_err());
    }

    #[test]
    fn pattern_tags_match_dgl_elements() {
        assert_eq!(ControlPattern::Sequential.tag(), "sequential");
        assert_eq!(ControlPattern::Parallel.tag(), "parallel");
        assert_eq!(ControlPattern::While(Expr::always()).tag(), "while");
        assert_eq!(
            ControlPattern::ForEach { var: "f".into(), source: IterSource::Items(vec![]), parallel: false }.tag(),
            "forEach"
        );
        assert_eq!(
            ControlPattern::Switch { on: Expr::always(), cases: vec![] }.tag(),
            "switch"
        );
    }
}
