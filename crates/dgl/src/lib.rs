//! # dgf-dgl — the Data Grid Language
//!
//! "Just as SQL is used for databases, an analog is needed for datagrids.
//! Our contribution to the datagridflows and the datagrid community is
//! the Datagrid Language (DGL)." — Jagatheesan et al., VLDB DMG 2005, §4.
//!
//! This crate implements the language exactly as Appendix A describes it:
//!
//! * [`DataGridRequest`] / [`DataGridResponse`] — the request/response
//!   wire documents (Figures 2 and 4), carrying either a [`Flow`] or a
//!   [`FlowStatusQuery`];
//! * [`Flow`] — the recursive control structure (Figure 1): its own
//!   variable scope, a [`FlowLogic`] (Figure 3) choosing a control
//!   pattern (sequential, parallel, while, for-each, switch) plus
//!   [`UserDefinedRule`]s (`beforeEntry` / `afterExit` ECA rules), and
//!   children that are either sub-flows or [`Step`]s — never both;
//! * [`Step`] — a concrete action: a datagrid [`DglOperation`] or
//!   business-logic execution;
//! * the **Tcondition** expression language ([`Expr`]) with DGL variable
//!   access and `${var}` string interpolation;
//! * XML encoding/decoding over [`dgf_xml`], with structural validation.
//!
//! The execution engine lives in `dgf-dfms`; this crate is purely the
//! language: parse, validate, build, serialize.

mod builder;
mod error;
mod expr;
mod flow;
mod profile;
mod recovery;
mod request;
mod response;
mod scope;
mod status;
mod step;
mod telemetry;
mod time_travel;
mod validation;
mod value;
mod why;
mod xml_codec;

pub use builder::FlowBuilder;
pub use error::DglError;
pub use expr::Expr;
pub use flow::{
    Case, Children, ControlPattern, Flow, FlowLogic, IterSource, RuleAction, UserDefinedRule,
    VarDecl, RULE_AFTER_EXIT, RULE_BEFORE_ENTRY,
};
pub use profile::{
    LockHistogram, ProfilePhase, ProfileQuery, ProfileReport, ServerContention,
};
pub use recovery::{FlowRecovery, RecoveryQuery, RecoveryReport, ReplayStats};
pub use step::ErrorPolicy;
pub use request::{DataGridRequest, RequestBody, RequestMode};
pub use response::{DataGridResponse, RequestAck, ResponseBody};
pub use scope::Scope;
pub use status::{FlowStatusQuery, ReportEvent, ReportMetric, ReportSpan, RunState, StatusReport};
pub use step::{DglOperation, Step};
pub use telemetry::{TelemetryQuery, TelemetryReport};
pub use time_travel::{
    BisectSpec, BisectSummary, DiffSummary, FlowDelta, OrdinalSummary, TimeTravelOp,
    TimeTravelQuery, TimeTravelReport,
};
pub use validation::{Diagnostic, FlowValidationQuery, Severity, ValidationReport};
pub use value::Value;
pub use why::{
    AlertState, WaitState, WhyAlert, WhyBottleneck, WhyPath, WhyQuery, WhyReport, WhySegment,
};
pub use xml_codec::{parse_request, parse_response};

/// Interpolate `${name}` references in a template string from a scope.
///
/// Unknown variables are an error — silently leaving `${x}` in a resource
/// name or path is how production flows destroy the wrong collection.
pub fn interpolate(template: &str, scope: &Scope) -> Result<String, DglError> {
    if !template.contains("${") {
        return Ok(template.to_owned());
    }
    let mut out = String::with_capacity(template.len());
    let mut rest = template;
    while let Some(start) = rest.find("${") {
        out.push_str(&rest[..start]);
        let after = &rest[start + 2..];
        let end = after.find('}').ok_or_else(|| DglError::BadInterpolation {
            template: template.to_owned(),
            reason: "unterminated ${",
        })?;
        let name = &after[..end];
        let value = scope.get(name).ok_or_else(|| DglError::UnknownVariable(name.to_owned()))?;
        out.push_str(&value.to_string());
        rest = &after[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Every `${name}` reference in a template string, in first-occurrence
/// order, deduplicated. Unterminated `${` stops the scan (the matching
/// [`interpolate`] call will report it as an error at runtime).
///
/// ```
/// assert_eq!(dgf_dgl::template_refs("/home/${site}/run${i}-${site}.dat"), vec!["site", "i"]);
/// assert!(dgf_dgl::template_refs("no vars").is_empty());
/// ```
pub fn template_refs(template: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut rest = template;
    while let Some(start) = rest.find("${") {
        let after = &rest[start + 2..];
        let Some(end) = after.find('}') else { break };
        let name = &after[..end];
        if !out.iter().any(|n| n == name) {
            out.push(name.to_owned());
        }
        rest = &after[end + 1..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_substitutes_scope_values() {
        let mut scope = Scope::root();
        scope.declare("site", Value::Str("sdsc".into()));
        scope.declare("i", Value::Int(3));
        assert_eq!(interpolate("/home/${site}/run${i}.dat", &scope).unwrap(), "/home/sdsc/run3.dat");
        assert_eq!(interpolate("no vars", &scope).unwrap(), "no vars");
    }

    #[test]
    fn interpolation_rejects_unknown_and_unterminated() {
        let scope = Scope::root();
        assert!(matches!(interpolate("${missing}", &scope), Err(DglError::UnknownVariable(_))));
        assert!(matches!(interpolate("${oops", &scope), Err(DglError::BadInterpolation { .. })));
    }
}
