//! Lexically nested variable scopes.
//!
//! "Each flow is like a block of code in modern programming languages
//! with its own variable scope" (paper, §4). A child flow sees — and may
//! assign — variables of its ancestors, but its own declarations vanish
//! when it exits.

use crate::value::Value;
use std::collections::HashMap;

/// A chain of variable frames. The engine pushes a frame per flow entry
/// and pops it on exit.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    frames: Vec<HashMap<String, Value>>,
}

impl Scope {
    /// A scope with a single (global) frame.
    pub fn root() -> Self {
        Scope { frames: vec![HashMap::new()] }
    }

    /// Enter a nested block.
    pub fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    /// Leave the innermost block, discarding its declarations.
    ///
    /// # Panics
    /// If this would pop the root frame — an engine bug, not user error.
    pub fn pop(&mut self) {
        assert!(self.frames.len() > 1, "cannot pop the root scope frame");
        self.frames.pop();
    }

    /// Current nesting depth (root = 1).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Declare (or shadow) a variable in the innermost frame.
    pub fn declare(&mut self, name: impl Into<String>, value: Value) {
        self.frames.last_mut().expect("scope always has a root frame").insert(name.into(), value);
    }

    /// Assign to an existing variable in the nearest frame declaring it;
    /// falls back to declaring in the innermost frame if none does.
    pub fn assign(&mut self, name: &str, value: Value) {
        for frame in self.frames.iter_mut().rev() {
            if let Some(slot) = frame.get_mut(name) {
                *slot = value;
                return;
            }
        }
        self.declare(name, value);
    }

    /// Read a variable, searching inner frames first.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.frames.iter().rev().find_map(|f| f.get(name))
    }

    /// Whether the variable is visible.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inner_frames_shadow_outer() {
        let mut s = Scope::root();
        s.declare("x", Value::Int(1));
        s.push();
        s.declare("x", Value::Int(2));
        assert_eq!(s.get("x"), Some(&Value::Int(2)));
        s.pop();
        assert_eq!(s.get("x"), Some(&Value::Int(1)), "shadow removed on exit");
    }

    #[test]
    fn assign_updates_the_declaring_frame() {
        let mut s = Scope::root();
        s.declare("counter", Value::Int(0));
        s.push();
        s.assign("counter", Value::Int(5)); // inner block mutates outer var
        s.pop();
        assert_eq!(s.get("counter"), Some(&Value::Int(5)));
    }

    #[test]
    fn assign_without_declaration_lands_in_innermost() {
        let mut s = Scope::root();
        s.push();
        s.assign("tmp", Value::Bool(true));
        assert!(s.contains("tmp"));
        s.pop();
        assert!(!s.contains("tmp"), "implicit declaration was block-local");
    }

    #[test]
    #[should_panic(expected = "root scope")]
    fn popping_root_is_a_bug() {
        Scope::root().pop();
    }

    #[test]
    fn depth_tracks_nesting() {
        let mut s = Scope::root();
        assert_eq!(s.depth(), 1);
        s.push();
        s.push();
        assert_eq!(s.depth(), 3);
    }
}
