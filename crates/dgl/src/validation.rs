//! The static-validation surface of the protocol: a flow-lint query and
//! its diagnostic report.
//!
//! The paper's flows run for days; a flow that dies hours in on an
//! undefined variable or an SLA no placement can satisfy wastes exactly
//! the resources §2.3's cost model conserves. A
//! [`FlowValidationQuery`] asks the DfMS to lint a [`Flow`] *without*
//! executing it; the [`ValidationReport`] carries structured
//! [`Diagnostic`]s — each with a stable `DGF0xx` code, a [`Severity`],
//! a node path into the flow tree, and a fix hint. Like the rest of the
//! crate these are plain data — the analyzer lives in `dgf-lint`, the
//! XML codec in `xml_codec`.

use crate::error::DglError;
use crate::flow::Flow;
use std::fmt;

/// How bad a [`Diagnostic`] is. `Error` means the engine refuses the
/// flow at submit; `Warning` and `Info` are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Stylistic or informational; no behavioral consequence.
    Info,
    /// Suspicious — the flow may run, but probably not as intended.
    Warning,
    /// The flow will (or can never) fail; submission is rejected.
    Error,
}

impl Severity {
    /// Wire spelling (`info` / `warning` / `error`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parse the wire spelling.
    pub fn parse(s: &str) -> Result<Self, DglError> {
        match s {
            "info" => Ok(Severity::Info),
            "warning" => Ok(Severity::Warning),
            "error" => Ok(Severity::Error),
            other => Err(DglError::schema("diagnostic", format!("unknown severity {other:?}"))),
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding from the static analyzer.
///
/// ```
/// use dgf_dgl::{Diagnostic, Severity};
///
/// let d = Diagnostic::new("DGF001", Severity::Error, "/pipeline/verify", "undefined variable `out`")
///     .with_hint("declare `out` in an enclosing flow's <variables>");
/// assert_eq!(d.to_string(), "error[DGF001] /pipeline/verify: undefined variable `out`");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`DGF001`, `DGF010`, …). Codes are
    /// never renumbered; retired codes are never reused.
    pub code: String,
    /// How bad it is.
    pub severity: Severity,
    /// Slash-joined name path of the offending node in the flow tree
    /// (e.g. `/pipeline/verify`).
    pub node: String,
    /// Human-readable description of the defect.
    pub message: String,
    /// How to fix it; empty when there is no mechanical suggestion.
    pub hint: String,
}

impl Diagnostic {
    /// A diagnostic without a hint.
    pub fn new(
        code: impl Into<String>,
        severity: Severity,
        node: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code: code.into(),
            severity,
            node: node.into(),
            message: message.into(),
            hint: String::new(),
        }
    }

    /// Attach a fix hint.
    #[must_use]
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = hint.into();
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}: {}", self.severity, self.code, self.node, self.message)
    }
}

/// A `<flowValidationQuery>` request body: lint this flow, do not run it.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowValidationQuery {
    /// The flow to analyze.
    pub flow: Flow,
}

impl FlowValidationQuery {
    /// Wrap a flow for validation.
    pub fn new(flow: Flow) -> Self {
        FlowValidationQuery { flow }
    }
}

/// A `<validationReport>` response body: every diagnostic the analyzer
/// produced, in deterministic (traversal, then code) order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValidationReport {
    /// Name of the flow that was analyzed.
    pub flow: String,
    /// `true` iff no `Error`-severity diagnostic was found — i.e. the
    /// engine would accept this flow at submit.
    pub valid: bool,
    /// The findings, deterministic across runs.
    pub diagnostics: Vec<Diagnostic>,
}

impl ValidationReport {
    /// A clean report for `flow`.
    pub fn clean(flow: impl Into<String>) -> Self {
        ValidationReport { flow: flow.into(), valid: true, diagnostics: Vec::new() }
    }

    /// Number of `Error`-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of `Warning`-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "validation of {:?}: {} ({} errors, {} warnings)",
            self.flow,
            if self.valid { "ok" } else { "rejected" },
            self.errors(),
            self.warnings()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_round_trips_and_orders() {
        for s in [Severity::Info, Severity::Warning, Severity::Error] {
            assert_eq!(Severity::parse(s.as_str()).unwrap(), s);
        }
        assert!(Severity::parse("fatal").is_err());
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn report_counts_by_severity() {
        let mut r = ValidationReport::clean("f");
        assert_eq!((r.errors(), r.warnings()), (0, 0));
        r.diagnostics.push(Diagnostic::new("DGF001", Severity::Error, "/f", "boom"));
        r.diagnostics.push(Diagnostic::new("DGF002", Severity::Warning, "/f", "meh"));
        r.valid = false;
        assert_eq!((r.errors(), r.warnings()), (1, 1));
        assert_eq!(r.to_string(), "validation of \"f\": rejected (1 errors, 1 warnings)");
    }
}
