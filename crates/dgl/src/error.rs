//! DGL errors: parse, validation, and evaluation failures.

use std::fmt;

/// Everything that can go wrong inside the language layer.
#[derive(Debug, Clone, PartialEq)]
pub enum DglError {
    /// The XML layer rejected the document.
    Xml(String),
    /// The XML parsed but does not conform to the DGL schema.
    Schema { element: String, reason: String },
    /// A Tcondition failed to parse.
    ExprParse { expr: String, reason: String },
    /// A Tcondition failed to evaluate.
    ExprEval { expr: String, reason: String },
    /// A variable was referenced but never declared in any enclosing scope.
    UnknownVariable(String),
    /// `${...}` interpolation in a template failed.
    BadInterpolation { template: String, reason: &'static str },
    /// Structural validation failed (mixed children, duplicate names, ...).
    Invalid(String),
}

impl DglError {
    /// Helper for schema errors.
    pub fn schema(element: impl Into<String>, reason: impl Into<String>) -> Self {
        DglError::Schema { element: element.into(), reason: reason.into() }
    }
}

impl fmt::Display for DglError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DglError::Xml(e) => write!(f, "XML error: {e}"),
            DglError::Schema { element, reason } => write!(f, "DGL schema error in <{element}>: {reason}"),
            DglError::ExprParse { expr, reason } => write!(f, "cannot parse tcondition {expr:?}: {reason}"),
            DglError::ExprEval { expr, reason } => write!(f, "cannot evaluate tcondition {expr:?}: {reason}"),
            DglError::UnknownVariable(v) => write!(f, "unknown DGL variable {v:?}"),
            DglError::BadInterpolation { template, reason } => {
                write!(f, "bad interpolation in {template:?}: {reason}")
            }
            DglError::Invalid(msg) => write!(f, "invalid DGL document: {msg}"),
        }
    }
}

impl std::error::Error for DglError {}

impl From<dgf_xml::XmlError> for DglError {
    fn from(e: dgf_xml::XmlError) -> Self {
        DglError::Xml(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xml_errors_convert() {
        let xml_err = dgf_xml::parse("<a>").unwrap_err();
        let dgl_err: DglError = xml_err.into();
        assert!(matches!(dgl_err, DglError::Xml(_)));
        assert!(dgl_err.to_string().contains("XML"));
    }

    #[test]
    fn schema_helper_builds_variant() {
        let e = DglError::schema("flow", "missing flowlogic");
        assert!(e.to_string().contains("<flow>") && e.to_string().contains("missing flowlogic"));
    }
}
