//! The Tcondition expression language.
//!
//! Appendix A: "Tcondition is a usually simple string that is evaluated.
//! It is possible to use DGL variables in the Tcondition." We give that
//! string a precise grammar:
//!
//! ```text
//! expr    := or
//! or      := and ( "||" and )*
//! and     := cmp ( "&&" cmp )*
//! cmp     := add ( ("=="|"!="|"<="|">="|"<"|">") add )?
//! add     := mul ( ("+"|"-") mul )*
//! mul     := unary ( ("*"|"/"|"%") unary )*
//! unary   := ("!"|"-") unary | primary
//! primary := int | float | 'string' | "string" | true | false
//!          | identifier | "(" expr ")"
//! ```
//!
//! Identifiers read DGL variables from the enclosing [`Scope`]; `+`
//! concatenates when either operand is a string.

use crate::error::DglError;
use crate::scope::Scope;
use crate::value::Value;
use std::fmt;

/// A parsed Tcondition. Keeps its source text for serialization back
/// into DGL documents.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    source: String,
    ast: Node,
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Literal(Value),
    Var(String),
    Unary(UnaryOp, Box<Node>),
    Binary(BinaryOp, Box<Node>, Box<Node>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnaryOp {
    Not,
    Neg,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BinaryOp {
    Or,
    And,
    Eq,
    Ne,
    Le,
    Ge,
    Lt,
    Gt,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
}

impl Expr {
    /// Parse a Tcondition string.
    pub fn parse(source: &str) -> Result<Self, DglError> {
        let tokens = lex(source)?;
        let mut p = Parser { tokens, pos: 0, source, depth: 0 };
        let ast = p.parse_or()?;
        if p.pos != p.tokens.len() {
            return Err(DglError::ExprParse {
                expr: source.to_owned(),
                reason: format!("unexpected trailing token {:?}", p.tokens[p.pos]),
            });
        }
        Ok(Expr { source: source.to_owned(), ast })
    }

    /// A literal `true` expression (the default rule guard).
    pub fn always() -> Self {
        Expr { source: "true".to_owned(), ast: Node::Literal(Value::Bool(true)) }
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Evaluate against a scope.
    pub fn eval(&self, scope: &Scope) -> Result<Value, DglError> {
        self.eval_node(&self.ast, scope)
    }

    /// Every DGL variable this expression reads, in first-occurrence
    /// order, deduplicated. Static analyzers use this to check that all
    /// references resolve before a flow ever runs.
    pub fn referenced_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        collect_vars(&self.ast, &mut out);
        out
    }

    /// Evaluate and coerce to a boolean via truthiness.
    pub fn eval_bool(&self, scope: &Scope) -> Result<bool, DglError> {
        Ok(self.eval(scope)?.truthy())
    }

    fn err(&self, reason: impl Into<String>) -> DglError {
        DglError::ExprEval { expr: self.source.clone(), reason: reason.into() }
    }

    fn eval_node(&self, node: &Node, scope: &Scope) -> Result<Value, DglError> {
        match node {
            Node::Literal(v) => Ok(v.clone()),
            Node::Var(name) => scope
                .get(name)
                .cloned()
                .ok_or_else(|| DglError::UnknownVariable(name.clone())),
            Node::Unary(op, inner) => {
                let v = self.eval_node(inner, scope)?;
                match op {
                    UnaryOp::Not => Ok(Value::Bool(!v.truthy())),
                    UnaryOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(self.err(format!("cannot negate a {}", other.type_name()))),
                    },
                }
            }
            Node::Binary(op, l, r) => {
                // Short-circuit logic first.
                match op {
                    BinaryOp::And => {
                        let lv = self.eval_node(l, scope)?;
                        if !lv.truthy() {
                            return Ok(Value::Bool(false));
                        }
                        return Ok(Value::Bool(self.eval_node(r, scope)?.truthy()));
                    }
                    BinaryOp::Or => {
                        let lv = self.eval_node(l, scope)?;
                        if lv.truthy() {
                            return Ok(Value::Bool(true));
                        }
                        return Ok(Value::Bool(self.eval_node(r, scope)?.truthy()));
                    }
                    _ => {}
                }
                let lv = self.eval_node(l, scope)?;
                let rv = self.eval_node(r, scope)?;
                self.apply_binary(*op, lv, rv)
            }
        }
    }

    fn apply_binary(&self, op: BinaryOp, l: Value, r: Value) -> Result<Value, DglError> {
        use BinaryOp::*;
        match op {
            Eq => Ok(Value::Bool(l.loosely_equals(&r))),
            Ne => Ok(Value::Bool(!l.loosely_equals(&r))),
            Lt | Le | Gt | Ge => {
                // Numeric comparison when both coerce; string order otherwise.
                let ord = match (l.as_f64(), r.as_f64()) {
                    (Some(a), Some(b)) => a.partial_cmp(&b),
                    _ => Some(l.to_string().cmp(&r.to_string())),
                }
                .ok_or_else(|| self.err("incomparable values (NaN)"))?;
                let res = match op {
                    Lt => ord.is_lt(),
                    Le => ord.is_le(),
                    Gt => ord.is_gt(),
                    Ge => ord.is_ge(),
                    _ => unreachable!(),
                };
                Ok(Value::Bool(res))
            }
            Add => {
                if matches!(l, Value::Str(_)) || matches!(r, Value::Str(_)) {
                    return Ok(Value::Str(format!("{l}{r}")));
                }
                self.arith(op, l, r)
            }
            Sub | Mul | Div | Rem => self.arith(op, l, r),
            And | Or => unreachable!("handled with short-circuiting"),
        }
    }

    fn arith(&self, op: BinaryOp, l: Value, r: Value) -> Result<Value, DglError> {
        use BinaryOp::*;
        // Integer arithmetic when both sides are integers; float otherwise.
        if let (Some(a), Some(b)) = (int_of(&l), int_of(&r)) {
            return match op {
                Add => Ok(Value::Int(a.wrapping_add(b))),
                Sub => Ok(Value::Int(a.wrapping_sub(b))),
                Mul => Ok(Value::Int(a.wrapping_mul(b))),
                Div => {
                    if b == 0 {
                        Err(self.err("division by zero"))
                    } else {
                        Ok(Value::Int(a / b))
                    }
                }
                Rem => {
                    if b == 0 {
                        Err(self.err("modulo by zero"))
                    } else {
                        Ok(Value::Int(a % b))
                    }
                }
                _ => unreachable!(),
            };
        }
        let a = l.as_f64().ok_or_else(|| self.err(format!("{} is not numeric", l.type_name())))?;
        let b = r.as_f64().ok_or_else(|| self.err(format!("{} is not numeric", r.type_name())))?;
        let out = match op {
            Add => a + b,
            Sub => a - b,
            Mul => a * b,
            Div => {
                if b == 0.0 {
                    return Err(self.err("division by zero"));
                }
                a / b
            }
            Rem => {
                if b == 0.0 {
                    return Err(self.err("modulo by zero"));
                }
                a % b
            }
            _ => unreachable!(),
        };
        Ok(Value::Float(out))
    }
}

fn collect_vars(node: &Node, out: &mut Vec<String>) {
    match node {
        Node::Literal(_) => {}
        Node::Var(name) => {
            if !out.iter().any(|n| n == name) {
                out.push(name.clone());
            }
        }
        Node::Unary(_, inner) => collect_vars(inner, out),
        Node::Binary(_, l, r) => {
            collect_vars(l, out);
            collect_vars(r, out);
        }
    }
}

/// Strict integer view: `Int` only (strings/floats go through the float
/// path so `"3" + 1` stays predictable).
fn int_of(v: &Value) -> Option<i64> {
    match v {
        Value::Int(i) => Some(*i),
        _ => None,
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.source)
    }
}

// ----------------------------------------------------------------------
// Lexer
// ----------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Int(i64),
    Float(f64),
    Str(String),
    Ident(String),
    Op(&'static str),
    LParen,
    RParen,
}

fn lex(src: &str) -> Result<Vec<Token>, DglError> {
    let mut tokens = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let err = |reason: String| DglError::ExprParse { expr: src.to_owned(), reason };
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '\'' | '"' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] as char != quote {
                    j += 1;
                }
                if j == bytes.len() {
                    return Err(err("unterminated string literal".into()));
                }
                tokens.push(Token::Str(src[start..j].to_owned()));
                i = j + 1;
            }
            '0'..='9' => {
                let start = i;
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() && ((bytes[j] as char).is_ascii_digit() || bytes[j] == b'.') {
                    if bytes[j] == b'.' {
                        is_float = true;
                    }
                    j += 1;
                }
                let text = &src[start..j];
                if is_float {
                    tokens.push(Token::Float(text.parse().map_err(|e| err(format!("bad float {text:?}: {e}")))?));
                } else {
                    tokens.push(Token::Int(text.parse().map_err(|e| err(format!("bad int {text:?}: {e}")))?));
                }
                i = j;
            }
            'a'..='z' | 'A'..='Z' | '_' | '$' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || matches!(bytes[j], b'_' | b'.' | b'$' | b'-'))
                {
                    // Allow '-' inside identifiers only when followed by an
                    // alphanumeric and preceded by one (DGL names like
                    // "document-type"); otherwise it's the minus operator.
                    if bytes[j] == b'-' {
                        let next_ok = j + 1 < bytes.len() && (bytes[j + 1] as char).is_ascii_alphanumeric();
                        if !next_ok {
                            break;
                        }
                    }
                    j += 1;
                }
                let word = &src[start..j];
                tokens.push(Token::Ident(word.to_owned()));
                i = j;
            }
            _ => {
                // Multi-char operators first.
                let two = src.get(i..i + 2).unwrap_or("");
                let op = match two {
                    "&&" | "||" | "==" | "!=" | "<=" | ">=" => Some(match two {
                        "&&" => "&&",
                        "||" => "||",
                        "==" => "==",
                        "!=" => "!=",
                        "<=" => "<=",
                        _ => ">=",
                    }),
                    _ => None,
                };
                if let Some(op) = op {
                    tokens.push(Token::Op(op));
                    i += 2;
                    continue;
                }
                let one = match c {
                    '<' => "<",
                    '>' => ">",
                    '+' => "+",
                    '-' => "-",
                    '*' => "*",
                    '/' => "/",
                    '%' => "%",
                    '!' => "!",
                    other => return Err(err(format!("unexpected character {other:?}"))),
                };
                tokens.push(Token::Op(one));
                i += 1;
            }
        }
    }
    Ok(tokens)
}

// ----------------------------------------------------------------------
// Parser
// ----------------------------------------------------------------------

/// Maximum expression nesting (parens / unary chains); guards the
/// recursive-descent parser against hostile wire input.
const MAX_EXPR_DEPTH: usize = 256;

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    source: &'a str,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, reason: impl Into<String>) -> DglError {
        DglError::ExprParse { expr: self.source.to_owned(), reason: reason.into() }
    }

    fn peek_op(&self) -> Option<&'static str> {
        match self.tokens.get(self.pos) {
            Some(Token::Op(op)) => Some(op),
            _ => None,
        }
    }

    fn eat_op(&mut self, candidates: &[&'static str]) -> Option<&'static str> {
        if let Some(op) = self.peek_op() {
            if candidates.contains(&op) {
                self.pos += 1;
                return Some(op);
            }
        }
        None
    }

    fn parse_or(&mut self) -> Result<Node, DglError> {
        let mut node = self.parse_and()?;
        while self.eat_op(&["||"]).is_some() {
            let rhs = self.parse_and()?;
            node = Node::Binary(BinaryOp::Or, Box::new(node), Box::new(rhs));
        }
        Ok(node)
    }

    fn parse_and(&mut self) -> Result<Node, DglError> {
        let mut node = self.parse_cmp()?;
        while self.eat_op(&["&&"]).is_some() {
            let rhs = self.parse_cmp()?;
            node = Node::Binary(BinaryOp::And, Box::new(node), Box::new(rhs));
        }
        Ok(node)
    }

    fn parse_cmp(&mut self) -> Result<Node, DglError> {
        let node = self.parse_add()?;
        if let Some(op) = self.eat_op(&["==", "!=", "<=", ">=", "<", ">"]) {
            let rhs = self.parse_add()?;
            let bop = match op {
                "==" => BinaryOp::Eq,
                "!=" => BinaryOp::Ne,
                "<=" => BinaryOp::Le,
                ">=" => BinaryOp::Ge,
                "<" => BinaryOp::Lt,
                _ => BinaryOp::Gt,
            };
            return Ok(Node::Binary(bop, Box::new(node), Box::new(rhs)));
        }
        Ok(node)
    }

    fn parse_add(&mut self) -> Result<Node, DglError> {
        let mut node = self.parse_mul()?;
        while let Some(op) = self.eat_op(&["+", "-"]) {
            let rhs = self.parse_mul()?;
            let bop = if op == "+" { BinaryOp::Add } else { BinaryOp::Sub };
            node = Node::Binary(bop, Box::new(node), Box::new(rhs));
        }
        Ok(node)
    }

    fn parse_mul(&mut self) -> Result<Node, DglError> {
        let mut node = self.parse_unary()?;
        while let Some(op) = self.eat_op(&["*", "/", "%"]) {
            let rhs = self.parse_unary()?;
            let bop = match op {
                "*" => BinaryOp::Mul,
                "/" => BinaryOp::Div,
                _ => BinaryOp::Rem,
            };
            node = Node::Binary(bop, Box::new(node), Box::new(rhs));
        }
        Ok(node)
    }

    fn parse_unary(&mut self) -> Result<Node, DglError> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            self.depth -= 1;
            return Err(self.err("expression nests too deeply"));
        }
        let result = (|| {
            if self.eat_op(&["!"]).is_some() {
                return Ok(Node::Unary(UnaryOp::Not, Box::new(self.parse_unary()?)));
            }
            if self.eat_op(&["-"]).is_some() {
                return Ok(Node::Unary(UnaryOp::Neg, Box::new(self.parse_unary()?)));
            }
            self.parse_primary()
        })();
        self.depth -= 1;
        result
    }

    fn parse_primary(&mut self) -> Result<Node, DglError> {
        let token = self.tokens.get(self.pos).cloned().ok_or_else(|| self.err("unexpected end of expression"))?;
        self.pos += 1;
        match token {
            Token::Int(i) => Ok(Node::Literal(Value::Int(i))),
            Token::Float(f) => Ok(Node::Literal(Value::Float(f))),
            Token::Str(s) => Ok(Node::Literal(Value::Str(s))),
            Token::Ident(name) => match name.as_str() {
                "true" => Ok(Node::Literal(Value::Bool(true))),
                "false" => Ok(Node::Literal(Value::Bool(false))),
                _ => Ok(Node::Var(name.trim_start_matches('$').to_owned())),
            },
            Token::LParen => {
                let inner = self.parse_or()?;
                match self.tokens.get(self.pos) {
                    Some(Token::RParen) => {
                        self.pos += 1;
                        Ok(inner)
                    }
                    _ => Err(self.err("expected ')'")),
                }
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(src: &str) -> Value {
        Expr::parse(src).unwrap().eval(&Scope::root()).unwrap()
    }

    fn eval_with(src: &str, vars: &[(&str, Value)]) -> Value {
        let mut scope = Scope::root();
        for (k, v) in vars {
            scope.declare(*k, v.clone());
        }
        Expr::parse(src).unwrap().eval(&scope).unwrap()
    }

    #[test]
    fn arithmetic_with_precedence() {
        assert_eq!(eval("1 + 2 * 3"), Value::Int(7));
        assert_eq!(eval("(1 + 2) * 3"), Value::Int(9));
        assert_eq!(eval("10 / 4"), Value::Int(2), "integer division");
        assert_eq!(eval("10.0 / 4"), Value::Float(2.5));
        assert_eq!(eval("10 % 3"), Value::Int(1));
        assert_eq!(eval("-3 + 1"), Value::Int(-2));
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(eval("1 < 2 && 2 < 3"), Value::Bool(true));
        assert_eq!(eval("1 >= 2 || false"), Value::Bool(false));
        assert_eq!(eval("!(1 == 1)"), Value::Bool(false));
        assert_eq!(eval("'abc' == 'abc'"), Value::Bool(true));
        assert_eq!(eval("'3' == 3"), Value::Bool(true), "loose numeric equality");
        assert_eq!(eval("'b' > 'a'"), Value::Bool(true), "string ordering");
        assert_eq!(eval("1 != 2"), Value::Bool(true));
        assert_eq!(eval("2 <= 2"), Value::Bool(true));
    }

    #[test]
    fn variables_resolve_from_scope() {
        assert_eq!(eval_with("i < n", &[("i", Value::Int(3)), ("n", Value::Int(10))]), Value::Bool(true));
        assert_eq!(
            eval_with("$status == 'done'", &[("status", "done".into())]),
            Value::Bool(true),
            "$-prefixed identifiers also work"
        );
        assert_eq!(
            eval_with("document-type == 'pdf'", &[("document-type", "pdf".into())]),
            Value::Bool(true),
            "hyphenated DGL names"
        );
    }

    #[test]
    fn string_concatenation() {
        assert_eq!(eval("'run' + 42"), Value::Str("run42".into()));
        assert_eq!(eval_with("prefix + '/' + name", &[("prefix", "/home".into()), ("name", "x".into())]), Value::Str("/home/x".into()));
    }

    #[test]
    fn short_circuit_skips_bad_branches() {
        // `missing` is undeclared; short-circuiting must avoid it.
        assert_eq!(eval_with("false && missing", &[]), Value::Bool(false));
        assert_eq!(eval_with("true || missing", &[]), Value::Bool(true));
        assert!(Expr::parse("true && missing").unwrap().eval(&Scope::root()).is_err());
    }

    #[test]
    fn rule_conditions_can_return_action_names() {
        // Appendix A: the condition evaluates to the *name* of the action.
        let v = eval_with(
            "size > 1000000 && 'archive' || 'keep'",
            &[("size", Value::Int(5_000_000))],
        );
        // Our logic ops are boolean, so action dispatch uses a dedicated
        // switch form instead; check the boolean path works.
        assert_eq!(v, Value::Bool(true));
        let name = eval_with("'archive'", &[]);
        assert_eq!(name, Value::Str("archive".into()));
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(Expr::parse("1 +").is_err());
        assert!(Expr::parse("(1").is_err());
        assert!(Expr::parse("'unterminated").is_err());
        assert!(Expr::parse("1 ? 2").is_err());
        assert!(Expr::parse("1 2").is_err(), "trailing token");
        assert!(matches!(
            Expr::parse("1/0").unwrap().eval(&Scope::root()),
            Err(DglError::ExprEval { .. })
        ));
        assert!(matches!(
            Expr::parse("x").unwrap().eval(&Scope::root()),
            Err(DglError::UnknownVariable(_))
        ));
        assert!(Expr::parse("-'str'").unwrap().eval(&Scope::root()).is_err());
    }

    #[test]
    fn source_text_round_trips() {
        let e = Expr::parse("i < 10 && name == 'x'").unwrap();
        assert_eq!(e.source(), "i < 10 && name == 'x'");
        assert_eq!(e.to_string(), e.source());
        let reparsed = Expr::parse(e.source()).unwrap();
        assert_eq!(reparsed, e);
    }

    #[test]
    fn hostile_nesting_is_rejected_not_a_stack_overflow() {
        let parens = format!("{}1{}", "(".repeat(100_000), ")".repeat(100_000));
        assert!(Expr::parse(&parens).is_err());
        let bangs = format!("{}true", "!".repeat(100_000));
        assert!(Expr::parse(&bangs).is_err());
        // Within the limit still parses.
        let ok = format!("{}1{}", "(".repeat(100), ")".repeat(100));
        assert!(Expr::parse(&ok).is_ok());
    }

    #[test]
    fn referenced_vars_are_collected_in_order_without_duplicates() {
        let e = Expr::parse("i < n && $status == 'done' && i > 0").unwrap();
        assert_eq!(e.referenced_vars(), vec!["i", "n", "status"]);
        assert!(Expr::parse("1 + 2").unwrap().referenced_vars().is_empty());
        assert!(Expr::always().referenced_vars().is_empty(), "literals reference nothing");
    }

    #[test]
    fn always_is_true() {
        assert!(Expr::always().eval_bool(&Scope::root()).unwrap());
    }
}
