//! The time-travel operator surface of the protocol: a query over a
//! journaled server's *history* and its report.
//!
//! A journaled DfMS can materialize the engine at any since-genesis
//! transition ordinal (see `docs/TIME_TRAVEL.md`). [`TimeTravelQuery`]
//! asks a server to inspect one such ordinal, diff two of them, or
//! binary-search the history for the first ordinal where a predicate
//! turned true ("when did flow F first stall?"). Like the rest of the
//! crate these are plain data; the XML codec lives in `xml_codec`.

use crate::recovery::FlowRecovery;
use crate::status::RunState;
use std::fmt;

/// The predicate of a bisection: what condition to locate the first
/// true ordinal of. Bisection assumes the predicate is monotone over
/// the journal's history (false … false, true … true) — the same
/// contract as `git bisect`. A flow that stalls and later recovers is
/// *not* monotone over the whole history; bisect over the prefix where
/// it holds (see `docs/TIME_TRAVEL.md`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BisectSpec {
    /// When did this flow first sit idle past the stall deadline (the
    /// watchdog's `stalled_after`)?
    Stalled {
        /// The flow's transaction id.
        transaction: String,
    },
    /// When did this flow first reach the given lifecycle state?
    State {
        /// The flow's transaction id.
        transaction: String,
        /// The state to locate the first occurrence of.
        state: RunState,
    },
    /// When did this flow variable first hold the given value (compared
    /// against the variable's rendered text)?
    Variable {
        /// The flow's transaction id.
        transaction: String,
        /// The variable name, as declared in the flow's `<variables>`.
        name: String,
        /// The rendered value to match.
        value: String,
    },
}

impl fmt::Display for BisectSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BisectSpec::Stalled { transaction } => write!(f, "{transaction} stalled"),
            BisectSpec::State { transaction, state } => write!(f, "{transaction} is {state}"),
            BisectSpec::Variable { transaction, name, value } => {
                write!(f, "{transaction}.{name} == {value:?}")
            }
        }
    }
}

/// The operation a [`TimeTravelQuery`] performs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimeTravelOp {
    /// Materialize one ordinal and summarize the engine there. `None`
    /// inspects the end of history (and reports the last ordinal).
    Inspect {
        /// The since-genesis ordinal; `None` = last.
        ordinal: Option<u64>,
    },
    /// Diff two ordinals: what happened between `from` and `to`?
    Diff {
        /// The earlier ordinal.
        from: u64,
        /// The later ordinal.
        to: u64,
    },
    /// Binary-search history for the first ordinal where the predicate
    /// holds.
    Bisect {
        /// The condition to locate.
        predicate: BisectSpec,
    },
}

/// A `<timeTravelQuery>` request body.
///
/// ```
/// use dgf_dgl::{TimeTravelOp, TimeTravelQuery};
///
/// let q = TimeTravelQuery::inspect(41);
/// assert_eq!(q.op, TimeTravelOp::Inspect { ordinal: Some(41) });
/// assert_eq!(TimeTravelQuery::last().op, TimeTravelOp::Inspect { ordinal: None });
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeTravelQuery {
    /// What to ask of the history.
    pub op: TimeTravelOp,
}

impl TimeTravelQuery {
    /// Inspect the engine at one since-genesis ordinal.
    pub fn inspect(ordinal: u64) -> Self {
        TimeTravelQuery { op: TimeTravelOp::Inspect { ordinal: Some(ordinal) } }
    }

    /// Inspect the end of history (reports the last ordinal).
    pub fn last() -> Self {
        TimeTravelQuery { op: TimeTravelOp::Inspect { ordinal: None } }
    }

    /// Diff two ordinals.
    pub fn diff(from: u64, to: u64) -> Self {
        TimeTravelQuery { op: TimeTravelOp::Diff { from, to } }
    }

    /// Bisect for the first ordinal where `predicate` holds.
    pub fn bisect(predicate: BisectSpec) -> Self {
        TimeTravelQuery { op: TimeTravelOp::Bisect { predicate } }
    }
}

/// A materialized ordinal, summarized — the `inspect` half of a
/// [`TimeTravelReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrdinalSummary {
    /// The ordinal actually reached: `derived - 1`, or `None` when the
    /// materialized prefix derived no transitions at all.
    pub ordinal: Option<u64>,
    /// The ordinal the query asked for (`None` = end of history).
    pub requested: Option<u64>,
    /// True when the whole history fit under the requested ordinal —
    /// i.e. the materialization is the full replay, not a prefix.
    pub complete: bool,
    /// Journaled commands applied before the replay halted.
    pub commands_applied: u64,
    /// Transitions derived (= `ordinal + 1` when any derived).
    pub transitions_derived: u64,
    /// The materialized engine's clock, µs.
    pub time_us: u64,
    /// Per-flow state at the ordinal.
    pub flows: Vec<FlowRecovery>,
}

/// One flow's change between two ordinals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowDelta {
    /// The flow's transaction id.
    pub transaction: String,
    /// State at the earlier ordinal; `None` when the flow did not exist
    /// yet.
    pub from_state: Option<RunState>,
    /// State at the later ordinal; `None` when the flow did not exist
    /// yet (possible only when diffing backwards is refused upstream —
    /// flows never disappear going forward).
    pub to_state: Option<RunState>,
    /// Steps completed at the earlier ordinal.
    pub steps_from: u64,
    /// Steps completed at the later ordinal.
    pub steps_to: u64,
    /// Total steps known at the later ordinal.
    pub steps_total: u64,
}

/// The structured delta between two ordinals — the `diff` half of a
/// [`TimeTravelReport`]. Empty (`is_empty`) exactly when nothing
/// derived between the two ordinals touched provenance or flow state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffSummary {
    /// The earlier ordinal.
    pub from: u64,
    /// The later ordinal.
    pub to: u64,
    /// Provenance records written between the two ordinals.
    pub provenance_added: u64,
    /// Clock at the earlier ordinal, µs.
    pub time_from_us: u64,
    /// Clock at the later ordinal, µs.
    pub time_to_us: u64,
    /// Flows that appeared or changed between the ordinals (unchanged
    /// flows are omitted).
    pub flows: Vec<FlowDelta>,
}

impl DiffSummary {
    /// True when nothing changed between the two ordinals.
    pub fn is_empty(&self) -> bool {
        self.provenance_added == 0 && self.flows.is_empty()
    }
}

/// A bisection outcome — the `bisect` half of a [`TimeTravelReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BisectSummary {
    /// First ordinal where the predicate held; `None` when it never
    /// does (including at the end of history).
    pub first_true: Option<u64>,
    /// Materializations performed: 1 full probe + at most
    /// ⌈log₂(ordinals)⌉ binary-search probes.
    pub probes: u64,
    /// The journal's last since-genesis ordinal.
    pub last_ordinal: u64,
}

/// A `<timeTravelReport>` response body. Exactly one of `inspect`,
/// `diff`, `bisect`, or `error` is populated on an enabled server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeTravelReport {
    /// Simulation time (µs) of the *live* server when it answered.
    pub time_us: u64,
    /// False when the server has no time-travel context (unjournaled,
    /// or `enable_time_travel` was never called).
    pub enabled: bool,
    /// The journal's last since-genesis ordinal, when known.
    pub last_ordinal: Option<u64>,
    /// The materialized-ordinal summary, for inspect queries.
    pub inspect: Option<OrdinalSummary>,
    /// The delta, for diff queries.
    pub diff: Option<DiffSummary>,
    /// The bisection outcome, for bisect queries.
    pub bisect: Option<BisectSummary>,
    /// Why the query failed, when it did.
    pub error: Option<String>,
}

impl TimeTravelReport {
    /// A report from a server with no time-travel context.
    pub fn disabled(time_us: u64) -> Self {
        TimeTravelReport {
            time_us,
            enabled: false,
            last_ordinal: None,
            inspect: None,
            diff: None,
            bisect: None,
            error: None,
        }
    }
}

impl fmt::Display for TimeTravelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.enabled {
            return write!(f, "time-travel @{}us disabled", self.time_us);
        }
        write!(f, "time-travel @{}us", self.time_us)?;
        if let Some(last) = self.last_ordinal {
            write!(f, " last=#{last}")?;
        }
        if let Some(i) = &self.inspect {
            match i.ordinal {
                Some(o) => write!(f, " at=#{o}")?,
                None => write!(f, " at=genesis")?,
            }
            write!(f, " clock={}us flows={}", i.time_us, i.flows.len())?;
        }
        if let Some(d) = &self.diff {
            write!(
                f,
                " diff #{}..#{}: +{} provenance, {} flows changed",
                d.from,
                d.to,
                d.provenance_added,
                d.flows.len()
            )?;
        }
        if let Some(b) = &self.bisect {
            match b.first_true {
                Some(o) => write!(f, " first-true=#{o} ({} probes)", b.probes)?,
                None => write!(f, " never-true ({} probes)", b.probes)?,
            }
        }
        if let Some(e) = &self.error {
            write!(f, " error: {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_display_is_compact() {
        assert_eq!(TimeTravelReport::disabled(9).to_string(), "time-travel @9us disabled");
    }

    #[test]
    fn empty_diff_detection() {
        let mut d = DiffSummary {
            from: 3,
            to: 3,
            provenance_added: 0,
            time_from_us: 10,
            time_to_us: 10,
            flows: vec![],
        };
        assert!(d.is_empty());
        d.provenance_added = 1;
        assert!(!d.is_empty());
    }

    #[test]
    fn bisect_display_names_the_outcome() {
        let report = TimeTravelReport {
            time_us: 5,
            enabled: true,
            last_ordinal: Some(99),
            inspect: None,
            diff: None,
            bisect: Some(BisectSummary { first_true: Some(42), probes: 8, last_ordinal: 99 }),
            error: None,
        };
        let s = report.to_string();
        assert!(s.contains("first-true=#42") && s.contains("8 probes"), "{s}");
    }
}
