//! Flow status: queries, run states, and reports.
//!
//! "Each DGL transaction generates a unique identifier that can be used
//! to query the status of the any task in the workflow at any level of
//! granularity" (§4).

use std::fmt;

/// Lifecycle state of a flow, sub-flow, or step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunState {
    /// Accepted, not yet started.
    Pending,
    /// Currently executing.
    Running,
    /// Paused by a lifecycle request; resumable.
    Paused,
    /// Finished successfully.
    Completed,
    /// Finished with an error.
    Failed,
    /// Stopped by a lifecycle request; not resumable.
    Stopped,
    /// Skipped (unselected switch arm, or virtual-data hit).
    Skipped,
}

impl RunState {
    /// True for states that will never change again.
    pub fn is_terminal(self) -> bool {
        matches!(self, RunState::Completed | RunState::Failed | RunState::Stopped | RunState::Skipped)
    }
}

impl fmt::Display for RunState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RunState::Pending => "pending",
            RunState::Running => "running",
            RunState::Paused => "paused",
            RunState::Completed => "completed",
            RunState::Failed => "failed",
            RunState::Stopped => "stopped",
            RunState::Skipped => "skipped",
        };
        f.write_str(s)
    }
}

/// A `FlowStatusQuery` document body (Figure 2's alternative payload):
/// ask about a transaction, optionally narrowed to one node of the flow
/// tree by its hierarchical path (e.g. `/0/3/1` = second child of the
/// fourth child of the first child of the root).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowStatusQuery {
    /// The transaction id returned in the request acknowledgement.
    pub transaction: String,
    /// Node path within the flow tree; `None` or `"/"` = the root.
    pub node: Option<String>,
    /// Ask for up to this many recent flight-recorder events for the
    /// transaction (scoped to `node` when one is given). `None` = no
    /// events in the report (the wire-compatible default).
    pub events: Option<usize>,
    /// Ask for a metrics snapshot alongside the status.
    pub metrics: bool,
    /// Ask for the transaction's span tree (scoped to `node` when one
    /// is given) alongside the status.
    pub trace: bool,
}

impl FlowStatusQuery {
    /// Query the whole transaction.
    pub fn whole(transaction: impl Into<String>) -> Self {
        FlowStatusQuery { transaction: transaction.into(), node: None, events: None, metrics: false, trace: false }
    }

    /// Query one node.
    pub fn node(transaction: impl Into<String>, node: impl Into<String>) -> Self {
        FlowStatusQuery { transaction: transaction.into(), node: Some(node.into()), events: None, metrics: false, trace: false }
    }

    /// Also return up to `n` recent flight-recorder events.
    ///
    /// ```
    /// use dgf_dgl::FlowStatusQuery;
    /// let q = FlowStatusQuery::whole("t1").with_events(50).with_metrics();
    /// assert_eq!(q.events, Some(50));
    /// assert!(q.metrics);
    /// ```
    #[must_use]
    pub fn with_events(mut self, n: usize) -> Self {
        self.events = Some(n);
        self
    }

    /// Also return a metrics snapshot.
    #[must_use]
    pub fn with_metrics(mut self) -> Self {
        self.metrics = true;
        self
    }

    /// Also return the span tree of the queried flow (or node subtree).
    ///
    /// ```
    /// use dgf_dgl::FlowStatusQuery;
    /// let q = FlowStatusQuery::whole("t1").with_trace();
    /// assert!(q.trace);
    /// ```
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }
}

/// One flight-recorder event carried in a [`StatusReport`] — plain data
/// so the DGL layer stays independent of the observability crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportEvent {
    /// Simulation time of the event, in microseconds.
    pub time_us: u64,
    /// Monotonic sequence number within the recorder.
    pub seq: u64,
    /// Stable dotted event name, e.g. `step.finished`.
    pub kind: String,
    /// Human-readable detail line.
    pub detail: String,
}

/// One metric sample carried in a [`StatusReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportMetric {
    /// Metric scope (`engine`, `scheduler`, `run:t1`, ...).
    pub scope: String,
    /// Dotted metric name within the scope.
    pub name: String,
    /// Value kind: `counter`, `gauge`, or `histogram`.
    pub kind: String,
    /// Rendered value (histograms render as `count:sum_us:min_us:max_us`).
    pub value: String,
}

/// One span carried in a [`StatusReport`] — plain data so the DGL
/// layer stays independent of the observability crate. Parent links use
/// span ids, so the report carries a whole tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportSpan {
    /// The span's id (unique within the reporting server).
    pub id: u64,
    /// Parent span id; `None` for the trace root.
    pub parent: Option<u64>,
    /// The owning trace id.
    pub trace: u64,
    /// Span kind token (`flow`, `request`, `scheduler-binding`,
    /// `dgms-op`, `network-transfer`, `trigger-action`).
    pub kind: String,
    /// Human-readable span name.
    pub name: String,
    /// Simulation time the work started, µs.
    pub start_us: u64,
    /// Simulation time the work ended, µs; `None` while still open.
    pub end_us: Option<u64>,
    /// Structured attributes, in recording order.
    pub attrs: Vec<(String, String)>,
}

/// A status report for one node of a running (or finished) flow tree,
/// with child summaries — what a `FlowStatusQuery` returns.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusReport {
    /// Transaction id.
    pub transaction: String,
    /// Node path within the flow tree (`/` = root).
    pub node: String,
    /// The node's DGL name (flow or step name).
    pub name: String,
    /// Current state.
    pub state: RunState,
    /// Steps completed in this subtree.
    pub steps_completed: usize,
    /// Total steps known in this subtree (grows as loops unroll).
    pub steps_total: usize,
    /// Optional failure/diagnostic message.
    pub message: Option<String>,
    /// One-line summaries of direct children: (path, name, state).
    pub children: Vec<(String, String, RunState)>,
    /// Recent flight-recorder events, oldest first. Populated only when
    /// the query asked for them ([`FlowStatusQuery::with_events`]).
    pub events: Vec<ReportEvent>,
    /// Metric samples. Populated only when the query asked for them
    /// ([`FlowStatusQuery::with_metrics`]).
    pub metrics: Vec<ReportMetric>,
    /// The queried flow's (or node subtree's) spans, in recording
    /// order. Populated only when the query asked for them
    /// ([`FlowStatusQuery::with_trace`]).
    pub spans: Vec<ReportSpan>,
}

impl fmt::Display for StatusReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {} ({}/{} steps)",
            self.transaction, self.node, self.state, self.steps_completed, self.steps_total
        )?;
        if let Some(msg) = &self.message {
            write!(f, ": {msg}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_states() {
        assert!(RunState::Completed.is_terminal());
        assert!(RunState::Failed.is_terminal());
        assert!(RunState::Stopped.is_terminal());
        assert!(RunState::Skipped.is_terminal());
        assert!(!RunState::Running.is_terminal());
        assert!(!RunState::Paused.is_terminal());
        assert!(!RunState::Pending.is_terminal());
    }

    #[test]
    fn query_constructors() {
        let q = FlowStatusQuery::whole("t42");
        assert_eq!(q.node, None);
        let q = FlowStatusQuery::node("t42", "/0/1");
        assert_eq!(q.node.as_deref(), Some("/0/1"));
    }

    #[test]
    fn report_displays_progress() {
        let r = StatusReport {
            transaction: "t7".into(),
            node: "/0".into(),
            name: "ingest".into(),
            state: RunState::Running,
            steps_completed: 3,
            steps_total: 10,
            message: None,
            children: vec![],
            events: vec![],
            metrics: vec![],
            spans: vec![],
        };
        let line = r.to_string();
        assert!(line.contains("t7") && line.contains("3/10") && line.contains("running"), "{line}");
    }
}
