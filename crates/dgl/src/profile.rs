//! The performance-profiling operator surface of the protocol: a query
//! over the engine's phase profiler and server contention counters, and
//! its report.
//!
//! The engine attributes its work to a tree of nestable phases
//! (dgl-parse, schedule, step-execute, journal-append, …; see
//! `docs/OBSERVABILITY.md` § Profiling). [`ProfileQuery`] fetches that
//! tree — flattened depth-first so the XML codec stays non-recursive —
//! plus the server's request-path contention histograms, and can
//! optionally reset the accumulators for interval profiling. Like the
//! rest of the crate these are plain data; the XML codec lives in
//! `xml_codec`.
//!
//! Determinism contract: `calls` and `sim_us` are functions of the
//! simulated schedule and are byte-identical across reruns of a seeded
//! scenario; `wall_ns`, `allocs`, and every contention histogram are
//! wall-clock measurements that vary run to run and are report-only.

use std::fmt;

/// A `<profileQuery>` request body.
///
/// ```
/// use dgf_dgl::ProfileQuery;
///
/// let q = ProfileQuery::new().with_folded(true).with_reset(true);
/// assert!(q.folded && q.reset);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfileQuery {
    /// Also return the folded-stack rendering (`flamegraph.pl`/inferno
    /// input) of the phase tree.
    pub folded: bool,
    /// Reset the profiler and contention accumulators after snapshotting,
    /// so the next query reports a fresh interval.
    pub reset: bool,
}

impl ProfileQuery {
    /// A plain snapshot query: no folded text, no reset.
    pub fn new() -> Self {
        ProfileQuery::default()
    }

    /// Request the folded-stack rendering too.
    pub fn with_folded(mut self, folded: bool) -> Self {
        self.folded = folded;
        self
    }

    /// Reset the accumulators after snapshotting.
    pub fn with_reset(mut self, reset: bool) -> Self {
        self.reset = reset;
        self
    }
}

/// One node of the phase tree, flattened depth-first.
///
/// The tree shape is recovered from `depth`: a node's parent is the
/// nearest preceding node with `depth - 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfilePhase {
    /// Nesting depth; 0 for root phases.
    pub depth: u32,
    /// The phase name (kebab-case, e.g. `step-execute`).
    pub phase: String,
    /// Times the scope was entered at this position in the tree.
    pub calls: u64,
    /// Simulated µs accumulated in the scope (deterministic).
    pub sim_us: u64,
    /// Wall nanoseconds accumulated in the scope (report-only).
    pub wall_ns: u64,
    /// Heap allocations observed inside the scope (report-only; 0
    /// unless the counting allocator is installed).
    pub allocs: u64,
}

/// One wall-clock histogram of the server request path (report-only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockHistogram {
    /// What was measured: `queue-wait`, `lock-acquire`, or `lock-hold`.
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, ns.
    pub sum_ns: u64,
    /// Smallest sample, ns (0 when `count` is 0).
    pub min_ns: u64,
    /// Largest sample, ns (0 when `count` is 0).
    pub max_ns: u64,
}

impl LockHistogram {
    /// Mean sample in ns, 0 when empty.
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// The server's `Arc<Mutex<Dfms>>` request-path contention counters
/// (report-only). Absent from the report when the engine is driven
/// directly, without a server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerContention {
    /// Requests enqueued since start (or last reset).
    pub enqueued: u64,
    /// Requests served since start (or last reset).
    pub served: u64,
    /// High-water mark of the request queue depth.
    pub queue_depth_max: u64,
    /// Wall-clock histograms: enqueue→dequeue wait, lock-acquire wait,
    /// and lock-hold time.
    pub hists: Vec<LockHistogram>,
}

/// A `<profileReport>` response body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// Simulation time (µs) when the snapshot was taken.
    pub time_us: u64,
    /// The phase tree, flattened depth-first (empty when no
    /// instrumented work has run since the last reset).
    pub phases: Vec<ProfilePhase>,
    /// The folded-stack rendering, when the query asked for it. One
    /// `path;to;phase self_wall_ns` line per node, newline-terminated.
    pub folded: Option<String>,
    /// Server contention counters, when a server is attached.
    pub contention: Option<ServerContention>,
}

impl ProfileReport {
    /// A report with no profile data yet.
    pub fn empty(time_us: u64) -> Self {
        ProfileReport { time_us, phases: Vec::new(), folded: None, contention: None }
    }

    /// Total wall nanoseconds across root phases (report-only).
    pub fn total_wall_ns(&self) -> u64 {
        self.phases.iter().filter(|p| p.depth == 0).map(|p| p.wall_ns).sum()
    }

    /// Total calls across root phases.
    pub fn total_calls(&self) -> u64 {
        self.phases.iter().filter(|p| p.depth == 0).map(|p| p.calls).sum()
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "profile @{}us {} phases", self.time_us, self.phases.len())?;
        if !self.phases.is_empty() {
            write!(f, " ({} calls, {}ns wall)", self.total_calls(), self.total_wall_ns())?;
        }
        if let Some(c) = &self.contention {
            write!(
                f,
                " server: {}/{} served, queue≤{}",
                c.served, c.enqueued, c.queue_depth_max
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_builder_sets_flags() {
        let q = ProfileQuery::new();
        assert!(!q.folded && !q.reset);
        let q = q.with_folded(true).with_reset(true);
        assert!(q.folded && q.reset);
    }

    #[test]
    fn histogram_mean_handles_empty() {
        let h =
            LockHistogram { name: "lock-hold".into(), count: 0, sum_ns: 0, min_ns: 0, max_ns: 0 };
        assert_eq!(h.mean_ns(), 0);
        let h = LockHistogram { name: "lock-hold".into(), count: 4, sum_ns: 10, ..h };
        assert_eq!(h.mean_ns(), 2);
    }

    #[test]
    fn report_totals_sum_roots_only() {
        let mk = |depth, calls, wall_ns| ProfilePhase {
            depth,
            phase: "step-execute".into(),
            calls,
            sim_us: 0,
            wall_ns,
            allocs: 0,
        };
        let r = ProfileReport {
            time_us: 7,
            phases: vec![mk(0, 2, 100), mk(1, 5, 60), mk(0, 1, 40)],
            folded: None,
            contention: None,
        };
        assert_eq!(r.total_wall_ns(), 140);
        assert_eq!(r.total_calls(), 3);
        let s = r.to_string();
        assert!(s.contains("3 phases") && s.contains("3 calls"), "{s}");
    }

    #[test]
    fn empty_report_display_is_compact() {
        assert_eq!(ProfileReport::empty(9).to_string(), "profile @9us 0 phases");
    }
}
