//! Runtime values of DGL variables and expressions.

use std::fmt;

/// A DGL value.
///
/// DGL documents carry values as text; this enum is their evaluated form
/// inside the engine. Lists exist for `for-each` iteration over explicit
/// item sets and datagrid query results.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string.
    Str(String),
    /// A 64-bit integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An ordered list.
    List(Vec<Value>),
}

impl Value {
    /// Truthiness: used by `while` conditions and rule guards.
    ///
    /// Strings are truthy when non-empty, numbers when non-zero, lists
    /// when non-empty.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Str(s) => !s.is_empty(),
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Bool(b) => *b,
            Value::List(l) => !l.is_empty(),
        }
    }

    /// Numeric view, when the value is (or parses as) a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Str(s) => s.trim().parse().ok(),
            Value::List(_) => None,
        }
    }

    /// Integer view (floats truncate if integral).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            Value::Str(s) => s.trim().parse().ok(),
            _ => None,
        }
    }

    /// Parse a DGL text literal into the most specific value type.
    ///
    /// This is how `<variable value="...">` declarations are typed:
    /// integers, then floats, then booleans, falling back to strings.
    pub fn from_text(text: &str) -> Value {
        let t = text.trim();
        if let Ok(i) = t.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = t.parse::<f64>() {
            return Value::Float(f);
        }
        match t {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            _ => Value::Str(text.to_owned()),
        }
    }

    /// Structural equality with numeric coercion (`1 == 1.0`, `"3" == 3`).
    pub fn loosely_equals(&self, other: &Value) -> bool {
        if self == other {
            return true;
        }
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a == b,
            _ => self.to_string() == other.to_string(),
        }
    }

    /// Type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::List(_) => "list",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => f.write_str(s),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::List(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_parsing_prefers_specific_types() {
        assert_eq!(Value::from_text("42"), Value::Int(42));
        assert_eq!(Value::from_text("-3"), Value::Int(-3));
        assert_eq!(Value::from_text("2.5"), Value::Float(2.5));
        assert_eq!(Value::from_text("true"), Value::Bool(true));
        assert_eq!(Value::from_text("hello"), Value::Str("hello".into()));
        assert_eq!(Value::from_text(" 7 "), Value::Int(7), "whitespace tolerated");
    }

    #[test]
    fn truthiness() {
        assert!(Value::Int(1).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Str("x".into()).truthy());
        assert!(!Value::Str(String::new()).truthy());
        assert!(!Value::List(vec![]).truthy());
        assert!(Value::List(vec![Value::Int(0)]).truthy());
        assert!(!Value::Float(0.0).truthy());
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::Str("12".into()).as_i64(), Some(12));
        assert_eq!(Value::Float(3.0).as_i64(), Some(3));
        assert_eq!(Value::Float(3.5).as_i64(), None);
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::List(vec![]).as_f64(), None);
    }

    #[test]
    fn loose_equality_coerces_numbers_and_strings() {
        assert!(Value::Int(1).loosely_equals(&Value::Float(1.0)));
        assert!(Value::Str("3".into()).loosely_equals(&Value::Int(3)));
        assert!(Value::Str("abc".into()).loosely_equals(&Value::Str("abc".into())));
        assert!(!Value::Int(1).loosely_equals(&Value::Int(2)));
    }

    #[test]
    fn display_round_trips_scalars() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::List(vec![Value::Int(1), "a".into()]).to_string(), "[1, a]");
    }
}
