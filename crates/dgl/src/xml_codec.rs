//! XML encoding and decoding of DGL documents.
//!
//! The element vocabulary reproduces the schema diagrams of the paper:
//! Figure 1 (`flow` = variables + flowLogic + children), Figure 2
//! (`dataGridRequest`), Figure 3 (`flowLogic` = control choice +
//! userDefinedRules), Figure 4 (`dataGridResponse`).

use crate::error::DglError;
use crate::expr::Expr;
use crate::flow::{Case, Children, ControlPattern, Flow, FlowLogic, IterSource, RuleAction, UserDefinedRule, VarDecl};
use crate::request::{DataGridRequest, RequestBody, RequestMode};
use crate::response::{DataGridResponse, RequestAck, ResponseBody};
use crate::status::{FlowStatusQuery, RunState, StatusReport};
use crate::step::{DglOperation, ErrorPolicy, Step};
use dgf_xml::Element;

/// Parse a complete `<dataGridRequest>` document.
pub fn parse_request(xml: &str) -> Result<DataGridRequest, DglError> {
    let root = dgf_xml::parse(xml)?;
    DataGridRequest::from_element(&root)
}

/// Parse a complete `<dataGridResponse>` document.
pub fn parse_response(xml: &str) -> Result<DataGridResponse, DglError> {
    let root = dgf_xml::parse(xml)?;
    DataGridResponse::from_element(&root)
}

fn require_attr<'a>(e: &'a Element, name: &str) -> Result<&'a str, DglError> {
    e.attr(name).ok_or_else(|| DglError::schema(&e.name, format!("missing attribute {name:?}")))
}

fn require_child<'a>(e: &'a Element, name: &str) -> Result<&'a Element, DglError> {
    e.child(name).ok_or_else(|| DglError::schema(&e.name, format!("missing child <{name}>")))
}

fn parse_expr_child(e: &Element, name: &str) -> Result<Expr, DglError> {
    let node = require_child(e, name)?;
    Expr::parse(&node.text())
}

// ----------------------------------------------------------------------
// DataGridRequest (Figure 2)
// ----------------------------------------------------------------------

impl DataGridRequest {
    /// Encode as an XML element.
    pub fn to_element(&self) -> Element {
        let mut root = Element::new("dataGridRequest").with_attr("id", &self.id);
        root.set_attr(
            "mode",
            match self.mode {
                RequestMode::Synchronous => "synchronous",
                RequestMode::Asynchronous => "asynchronous",
            },
        );
        if !self.description.is_empty() {
            root.push_element(
                Element::new("documentMetadata")
                    .with_child(Element::new("description").with_text(&self.description)),
            );
        }
        let mut user = Element::new("gridUser").with_attr("name", &self.user);
        if let Some(vo) = &self.vo {
            user.set_attr("vo", vo);
        }
        root.push_element(user);
        match &self.body {
            RequestBody::Flow(flow) => root.push_element(flow.to_element()),
            RequestBody::StatusQuery(q) => root.push_element(q.to_element()),
            RequestBody::Telemetry(q) => root.push_element(q.to_element()),
            RequestBody::Validation(q) => root.push_element(q.to_element()),
            RequestBody::Recovery(q) => root.push_element(q.to_element()),
            RequestBody::TimeTravel(q) => root.push_element(q.to_element()),
            RequestBody::Profile(q) => root.push_element(q.to_element()),
            RequestBody::Why(q) => root.push_element(q.to_element()),
        }
        root
    }

    /// Encode as a pretty-printed XML document.
    pub fn to_xml(&self) -> String {
        self.to_element().to_xml_pretty()
    }

    /// Decode from an XML element.
    pub fn from_element(e: &Element) -> Result<Self, DglError> {
        if e.name != "dataGridRequest" {
            return Err(DglError::schema(&e.name, "expected <dataGridRequest>"));
        }
        let id = require_attr(e, "id")?.to_owned();
        let mode = match e.attr("mode").unwrap_or("synchronous") {
            "synchronous" => RequestMode::Synchronous,
            "asynchronous" => RequestMode::Asynchronous,
            other => return Err(DglError::schema(&e.name, format!("unknown mode {other:?}"))),
        };
        let description = e
            .child("documentMetadata")
            .and_then(|m| m.child("description"))
            .map(|d| d.text())
            .unwrap_or_default();
        let user_el = require_child(e, "gridUser")?;
        let user = require_attr(user_el, "name")?.to_owned();
        let vo = user_el.attr("vo").map(str::to_owned);
        let body = if let Some(flow_el) = e.child("flow") {
            RequestBody::Flow(Flow::from_element(flow_el)?)
        } else if let Some(q_el) = e.child("flowStatusQuery") {
            RequestBody::StatusQuery(FlowStatusQuery::from_element(q_el)?)
        } else if let Some(q_el) = e.child("telemetryQuery") {
            RequestBody::Telemetry(crate::TelemetryQuery::from_element(q_el)?)
        } else if let Some(q_el) = e.child("flowValidationQuery") {
            RequestBody::Validation(crate::FlowValidationQuery::from_element(q_el)?)
        } else if let Some(q_el) = e.child("recoveryQuery") {
            RequestBody::Recovery(crate::RecoveryQuery::from_element(q_el)?)
        } else if let Some(q_el) = e.child("timeTravelQuery") {
            RequestBody::TimeTravel(crate::TimeTravelQuery::from_element(q_el)?)
        } else if let Some(q_el) = e.child("profileQuery") {
            RequestBody::Profile(crate::ProfileQuery::from_element(q_el)?)
        } else if let Some(q_el) = e.child("whyQuery") {
            RequestBody::Why(crate::WhyQuery::from_element(q_el)?)
        } else {
            return Err(DglError::schema(
                &e.name,
                "needs a <flow>, <flowStatusQuery>, <telemetryQuery>, <flowValidationQuery>, <recoveryQuery>, <timeTravelQuery>, <profileQuery>, or <whyQuery>",
            ));
        };
        Ok(DataGridRequest { id, description, user, vo, mode, body })
    }
}

// ----------------------------------------------------------------------
// Flow (Figure 1) and FlowLogic (Figure 3)
// ----------------------------------------------------------------------

impl Flow {
    /// Encode as an XML element.
    pub fn to_element(&self) -> Element {
        let mut el = Element::new("flow").with_attr("name", &self.name);
        if !self.variables.is_empty() {
            el.push_element(variables_element(&self.variables));
        }
        el.push_element(self.logic.to_element());
        let mut children = Element::new("children");
        match &self.children {
            Children::Flows(flows) => {
                for f in flows {
                    children.push_element(f.to_element());
                }
            }
            Children::Steps(steps) => {
                for s in steps {
                    children.push_element(s.to_element());
                }
            }
        }
        el.push_element(children);
        el
    }

    /// Decode from an XML element.
    pub fn from_element(e: &Element) -> Result<Self, DglError> {
        if e.name != "flow" {
            return Err(DglError::schema(&e.name, "expected <flow>"));
        }
        let name = require_attr(e, "name")?.to_owned();
        let variables = e.child("variables").map(parse_variables).transpose()?.unwrap_or_default();
        let logic = FlowLogic::from_element(require_child(e, "flowLogic")?)?;
        let children_el = require_child(e, "children")?;
        let flow_children: Vec<&Element> = children_el.children_named("flow").collect();
        let step_children: Vec<&Element> = children_el.children_named("step").collect();
        if !flow_children.is_empty() && !step_children.is_empty() {
            return Err(DglError::schema("children", "a flow contains sub-flows or steps, not both"));
        }
        let children = if !flow_children.is_empty() {
            Children::Flows(flow_children.into_iter().map(Flow::from_element).collect::<Result<_, _>>()?)
        } else {
            Children::Steps(step_children.into_iter().map(Step::from_element).collect::<Result<_, _>>()?)
        };
        Ok(Flow { name, variables, logic, children })
    }
}

fn variables_element(vars: &[VarDecl]) -> Element {
    let mut el = Element::new("variables");
    for v in vars {
        el.push_element(Element::new("variable").with_attr("name", &v.name).with_attr("value", &v.initial));
    }
    el
}

fn parse_variables(e: &Element) -> Result<Vec<VarDecl>, DglError> {
    e.children_named("variable")
        .map(|v| Ok(VarDecl { name: require_attr(v, "name")?.to_owned(), initial: v.attr("value").unwrap_or("").to_owned() }))
        .collect()
}

impl FlowLogic {
    /// Encode as an XML element.
    pub fn to_element(&self) -> Element {
        let mut el = Element::new("flowLogic");
        let control = match &self.pattern {
            ControlPattern::Sequential => Element::new("sequential"),
            ControlPattern::Parallel => Element::new("parallel"),
            ControlPattern::While(cond) => {
                Element::new("while").with_child(Element::new("tcondition").with_text(cond.source()))
            }
            ControlPattern::ForEach { var, source, parallel } => {
                let mut fe = Element::new("forEach")
                    .with_attr("var", var)
                    .with_attr("parallel", if *parallel { "true" } else { "false" });
                match source {
                    IterSource::Items(items) => {
                        let mut list = Element::new("items");
                        for item in items {
                            list.push_element(Element::new("item").with_text(item));
                        }
                        fe.push_element(list);
                    }
                    IterSource::Collection(c) => {
                        fe.push_element(Element::new("collection").with_text(c));
                    }
                    IterSource::Query { collection, attribute, value } => {
                        fe.push_element(
                            Element::new("query")
                                .with_attr("collection", collection)
                                .with_attr("attribute", attribute)
                                .with_attr("value", value),
                        );
                    }
                    IterSource::Variable(name) => {
                        fe.push_element(Element::new("variableSource").with_attr("name", name));
                    }
                }
                fe
            }
            ControlPattern::Switch { on, cases } => {
                let mut sw = Element::new("switch").with_child(Element::new("on").with_text(on.source()));
                for case in cases {
                    let mut c = Element::new("case");
                    if let Some(v) = &case.value {
                        c.set_attr("value", v);
                    }
                    sw.push_element(c);
                }
                sw
            }
        };
        el.push_element(control);
        for rule in &self.rules {
            el.push_element(rule.to_element());
        }
        el
    }

    /// Decode from an XML element.
    pub fn from_element(e: &Element) -> Result<Self, DglError> {
        if e.name != "flowLogic" {
            return Err(DglError::schema(&e.name, "expected <flowLogic>"));
        }
        let control = e
            .child_elements()
            .find(|c| matches!(c.name.as_str(), "sequential" | "parallel" | "while" | "forEach" | "switch"))
            .ok_or_else(|| DglError::schema("flowLogic", "missing control pattern element"))?;
        let pattern = match control.name.as_str() {
            "sequential" => ControlPattern::Sequential,
            "parallel" => ControlPattern::Parallel,
            "while" => ControlPattern::While(parse_expr_child(control, "tcondition")?),
            "forEach" => {
                let var = require_attr(control, "var")?.to_owned();
                let parallel = control.attr("parallel") == Some("true");
                let source = if let Some(items) = control.child("items") {
                    IterSource::Items(items.children_named("item").map(|i| i.text()).collect())
                } else if let Some(c) = control.child("collection") {
                    IterSource::Collection(c.text())
                } else if let Some(q) = control.child("query") {
                    IterSource::Query {
                        collection: require_attr(q, "collection")?.to_owned(),
                        attribute: require_attr(q, "attribute")?.to_owned(),
                        value: require_attr(q, "value")?.to_owned(),
                    }
                } else if let Some(v) = control.child("variableSource") {
                    IterSource::Variable(require_attr(v, "name")?.to_owned())
                } else {
                    return Err(DglError::schema("forEach", "missing iteration source"));
                };
                ControlPattern::ForEach { var, source, parallel }
            }
            "switch" => {
                let on = parse_expr_child(control, "on")?;
                let cases = control
                    .children_named("case")
                    .map(|c| Case { value: c.attr("value").map(str::to_owned) })
                    .collect();
                ControlPattern::Switch { on, cases }
            }
            _ => unreachable!("filtered above"),
        };
        let rules = e
            .children_named("userDefinedRule")
            .map(UserDefinedRule::from_element)
            .collect::<Result<_, _>>()?;
        Ok(FlowLogic { pattern, rules })
    }
}

impl UserDefinedRule {
    /// Encode as an XML element.
    pub fn to_element(&self) -> Element {
        let mut el = Element::new("userDefinedRule").with_attr("name", &self.name);
        el.push_element(Element::new("tcondition").with_text(self.condition.source()));
        for action in &self.actions {
            let mut a = Element::new("action").with_attr("name", &action.name);
            for step in &action.steps {
                a.push_element(step.to_element());
            }
            el.push_element(a);
        }
        el
    }

    /// Decode from an XML element.
    pub fn from_element(e: &Element) -> Result<Self, DglError> {
        let name = require_attr(e, "name")?.to_owned();
        let condition = parse_expr_child(e, "tcondition")?;
        let actions = e
            .children_named("action")
            .map(|a| {
                Ok::<RuleAction, DglError>(RuleAction {
                    name: require_attr(a, "name")?.to_owned(),
                    steps: a.children_named("step").map(Step::from_element).collect::<Result<_, _>>()?,
                })
            })
            .collect::<Result<_, DglError>>()?;
        Ok(UserDefinedRule { name, condition, actions })
    }
}

// ----------------------------------------------------------------------
// Step and operations
// ----------------------------------------------------------------------

impl Step {
    /// Encode as an XML element.
    pub fn to_element(&self) -> Element {
        let mut el = Element::new("step").with_attr("name", &self.name);
        match self.on_error {
            ErrorPolicy::Fail => {}
            ErrorPolicy::Ignore => el.set_attr("onError", "ignore"),
            ErrorPolicy::Retry(n) => el.set_attr("onError", format!("retry:{n}")),
        }
        if !self.variables.is_empty() {
            el.push_element(variables_element(&self.variables));
        }
        for rule in &self.rules {
            el.push_element(rule.to_element());
        }
        el.push_element(Element::new("operation").with_child(self.operation.to_element()));
        el
    }

    /// Decode from an XML element.
    pub fn from_element(e: &Element) -> Result<Self, DglError> {
        if e.name != "step" {
            return Err(DglError::schema(&e.name, "expected <step>"));
        }
        let name = require_attr(e, "name")?.to_owned();
        let on_error = match e.attr("onError") {
            None | Some("fail") => ErrorPolicy::Fail,
            Some("ignore") => ErrorPolicy::Ignore,
            Some(retry) if retry.starts_with("retry:") => {
                let n = retry["retry:".len()..]
                    .parse()
                    .map_err(|_| DglError::schema("step", format!("bad onError {retry:?}")))?;
                ErrorPolicy::Retry(n)
            }
            Some(other) => return Err(DglError::schema("step", format!("unknown onError {other:?}"))),
        };
        let variables = e.child("variables").map(parse_variables).transpose()?.unwrap_or_default();
        let rules = e
            .children_named("userDefinedRule")
            .map(UserDefinedRule::from_element)
            .collect::<Result<_, _>>()?;
        let op_el = require_child(e, "operation")?;
        let inner = op_el
            .child_elements()
            .next()
            .ok_or_else(|| DglError::schema("operation", "empty operation"))?;
        let operation = DglOperation::from_element(inner)?;
        Ok(Step { name, variables, rules, operation, on_error })
    }
}

impl DglOperation {
    /// Encode as an XML element.
    pub fn to_element(&self) -> Element {
        match self {
            DglOperation::CreateCollection { path } => Element::new("createCollection").with_attr("path", path),
            DglOperation::Ingest { path, size, resource } => Element::new("ingest")
                .with_attr("path", path)
                .with_attr("size", size)
                .with_attr("resource", resource),
            DglOperation::Replicate { path, src, dst } => {
                let mut el = Element::new("replicate").with_attr("path", path).with_attr("dst", dst);
                if let Some(src) = src {
                    el.set_attr("src", src);
                }
                el
            }
            DglOperation::Migrate { path, from, to } => Element::new("migrate")
                .with_attr("path", path)
                .with_attr("from", from)
                .with_attr("to", to),
            DglOperation::Trim { path, resource } => {
                Element::new("trim").with_attr("path", path).with_attr("resource", resource)
            }
            DglOperation::Delete { path } => Element::new("delete").with_attr("path", path),
            DglOperation::Rename { path, to } => {
                Element::new("rename").with_attr("path", path).with_attr("to", to)
            }
            DglOperation::Checksum { path, resource, register } => {
                let mut el = Element::new("checksum")
                    .with_attr("path", path)
                    .with_attr("register", if *register { "true" } else { "false" });
                if let Some(r) = resource {
                    el.set_attr("resource", r);
                }
                el
            }
            DglOperation::SetMetadata { path, attribute, value } => Element::new("setMetadata")
                .with_attr("path", path)
                .with_attr("attribute", attribute)
                .with_attr("value", value),
            DglOperation::SetPermission { path, grantee, level } => Element::new("setPermission")
                .with_attr("path", path)
                .with_attr("grantee", grantee)
                .with_attr("level", level),
            DglOperation::Query { collection, attribute, value, into } => Element::new("query")
                .with_attr("collection", collection)
                .with_attr("attribute", attribute)
                .with_attr("value", value)
                .with_attr("into", into),
            DglOperation::Execute { code, nominal_secs, resource_type, inputs, outputs } => {
                let mut el = Element::new("execute")
                    .with_attr("code", code)
                    .with_attr("nominalSecs", nominal_secs);
                if let Some(rt) = resource_type {
                    el.set_attr("resourceType", rt);
                }
                for input in inputs {
                    el.push_element(Element::new("input").with_attr("path", input));
                }
                for (path, size) in outputs {
                    el.push_element(Element::new("output").with_attr("path", path).with_attr("size", size));
                }
                el
            }
            DglOperation::Assign { variable, expr } => Element::new("assign")
                .with_attr("variable", variable)
                .with_child(Element::new("expr").with_text(expr.source())),
            DglOperation::Notify { message } => {
                // As an attribute: element text would lose surrounding
                // whitespace to the parser's whitespace-run dropping.
                Element::new("notify").with_attr("message", message)
            }
        }
    }

    /// Decode from an XML element.
    pub fn from_element(e: &Element) -> Result<Self, DglError> {
        let op = match e.name.as_str() {
            "createCollection" => DglOperation::CreateCollection { path: require_attr(e, "path")?.to_owned() },
            "ingest" => DglOperation::Ingest {
                path: require_attr(e, "path")?.to_owned(),
                size: require_attr(e, "size")?.to_owned(),
                resource: require_attr(e, "resource")?.to_owned(),
            },
            "replicate" => DglOperation::Replicate {
                path: require_attr(e, "path")?.to_owned(),
                src: e.attr("src").map(str::to_owned),
                dst: require_attr(e, "dst")?.to_owned(),
            },
            "migrate" => DglOperation::Migrate {
                path: require_attr(e, "path")?.to_owned(),
                from: require_attr(e, "from")?.to_owned(),
                to: require_attr(e, "to")?.to_owned(),
            },
            "trim" => DglOperation::Trim {
                path: require_attr(e, "path")?.to_owned(),
                resource: require_attr(e, "resource")?.to_owned(),
            },
            "delete" => DglOperation::Delete { path: require_attr(e, "path")?.to_owned() },
            "rename" => DglOperation::Rename {
                path: require_attr(e, "path")?.to_owned(),
                to: require_attr(e, "to")?.to_owned(),
            },
            "checksum" => DglOperation::Checksum {
                path: require_attr(e, "path")?.to_owned(),
                resource: e.attr("resource").map(str::to_owned),
                register: e.attr("register") == Some("true"),
            },
            "setMetadata" => DglOperation::SetMetadata {
                path: require_attr(e, "path")?.to_owned(),
                attribute: require_attr(e, "attribute")?.to_owned(),
                value: require_attr(e, "value")?.to_owned(),
            },
            "setPermission" => DglOperation::SetPermission {
                path: require_attr(e, "path")?.to_owned(),
                grantee: require_attr(e, "grantee")?.to_owned(),
                level: require_attr(e, "level")?.to_owned(),
            },
            "query" => DglOperation::Query {
                collection: require_attr(e, "collection")?.to_owned(),
                attribute: require_attr(e, "attribute")?.to_owned(),
                value: require_attr(e, "value")?.to_owned(),
                into: require_attr(e, "into")?.to_owned(),
            },
            "execute" => DglOperation::Execute {
                code: require_attr(e, "code")?.to_owned(),
                nominal_secs: require_attr(e, "nominalSecs")?.to_owned(),
                resource_type: e.attr("resourceType").map(str::to_owned),
                inputs: e
                    .children_named("input")
                    .map(|i| Ok(require_attr(i, "path")?.to_owned()))
                    .collect::<Result<_, DglError>>()?,
                outputs: e
                    .children_named("output")
                    .map(|o| Ok((require_attr(o, "path")?.to_owned(), require_attr(o, "size")?.to_owned())))
                    .collect::<Result<_, DglError>>()?,
            },
            "assign" => DglOperation::Assign {
                variable: require_attr(e, "variable")?.to_owned(),
                expr: parse_expr_child(e, "expr")?,
            },
            // Attribute form is canonical; hand-written documents may
            // use element text instead.
            "notify" => DglOperation::Notify {
                message: e.attr("message").map(str::to_owned).unwrap_or_else(|| e.text()),
            },
            other => return Err(DglError::schema(other, "unknown DGL operation")),
        };
        Ok(op)
    }
}

// ----------------------------------------------------------------------
// Status query / report, response (Figure 4)
// ----------------------------------------------------------------------

impl FlowStatusQuery {
    /// Encode as an XML element.
    pub fn to_element(&self) -> Element {
        let mut el = Element::new("flowStatusQuery").with_attr("transaction", &self.transaction);
        if let Some(node) = &self.node {
            el.set_attr("node", node);
        }
        // Observability attrs are emitted only when set, so documents
        // from older peers round-trip byte-identically.
        if let Some(n) = self.events {
            el.set_attr("events", n.to_string());
        }
        if self.metrics {
            el.set_attr("metrics", "true");
        }
        if self.trace {
            el.set_attr("trace", "true");
        }
        el
    }

    /// Decode from an XML element.
    pub fn from_element(e: &Element) -> Result<Self, DglError> {
        let events = match e.attr("events") {
            None => None,
            Some(raw) => Some(
                raw.parse::<usize>()
                    .map_err(|_| DglError::schema("flowStatusQuery", format!("bad events count {raw:?}")))?,
            ),
        };
        Ok(FlowStatusQuery {
            transaction: require_attr(e, "transaction")?.to_owned(),
            node: e.attr("node").map(str::to_owned),
            events,
            metrics: e.attr("metrics") == Some("true"),
            trace: e.attr("trace") == Some("true"),
        })
    }
}

impl crate::TelemetryQuery {
    /// Encode as an XML element. Optional attributes are omitted when
    /// unset so pre-telemetry documents round-trip byte-identically.
    pub fn to_element(&self) -> Element {
        let mut el = Element::new("telemetryQuery");
        if self.scrape {
            el.set_attr("scrape", "true");
        }
        if let Some(from) = self.tail_from {
            el.set_attr("tailFrom", from.to_string());
        }
        if let Some(limit) = self.tail_limit {
            el.set_attr("tailLimit", limit.to_string());
        }
        el
    }

    /// Decode from an XML element.
    pub fn from_element(e: &Element) -> Result<Self, DglError> {
        let num = |attr: &str| -> Result<Option<u64>, DglError> {
            e.attr(attr)
                .map(|raw| {
                    raw.parse().map_err(|_| {
                        DglError::schema("telemetryQuery", format!("bad {attr} {raw:?}"))
                    })
                })
                .transpose()
        };
        Ok(crate::TelemetryQuery {
            scrape: e.attr("scrape") == Some("true"),
            tail_from: num("tailFrom")?,
            tail_limit: num("tailLimit")?.map(|n| n as usize),
        })
    }
}

impl crate::FlowValidationQuery {
    /// Encode as an XML element.
    pub fn to_element(&self) -> Element {
        Element::new("flowValidationQuery").with_child(self.flow.to_element())
    }

    /// Decode from an XML element.
    pub fn from_element(e: &Element) -> Result<Self, DglError> {
        Ok(crate::FlowValidationQuery { flow: Flow::from_element(require_child(e, "flow")?)? })
    }
}

impl crate::ValidationReport {
    /// Encode as an XML element. Diagnostics carry everything in
    /// attributes (the XML layer trims element text); the empty hint is
    /// omitted so hint-less diagnostics round-trip byte-identically.
    pub fn to_element(&self) -> Element {
        let mut el = Element::new("validationReport")
            .with_attr("flow", &self.flow)
            .with_attr("valid", if self.valid { "true" } else { "false" });
        for d in &self.diagnostics {
            let mut de = Element::new("diagnostic")
                .with_attr("code", &d.code)
                .with_attr("severity", d.severity.as_str())
                .with_attr("node", &d.node)
                .with_attr("message", &d.message);
            if !d.hint.is_empty() {
                de.set_attr("hint", &d.hint);
            }
            el.push_element(de);
        }
        el
    }

    /// Decode from an XML element.
    pub fn from_element(e: &Element) -> Result<Self, DglError> {
        Ok(crate::ValidationReport {
            flow: require_attr(e, "flow")?.to_owned(),
            valid: e.attr("valid") == Some("true"),
            diagnostics: e
                .children_named("diagnostic")
                .map(|d| {
                    Ok(crate::Diagnostic {
                        code: require_attr(d, "code")?.to_owned(),
                        severity: crate::Severity::parse(require_attr(d, "severity")?)?,
                        node: require_attr(d, "node")?.to_owned(),
                        message: require_attr(d, "message")?.to_owned(),
                        hint: d.attr("hint").unwrap_or_default().to_owned(),
                    })
                })
                .collect::<Result<_, DglError>>()?,
        })
    }
}

impl crate::RecoveryQuery {
    /// Encode as an XML element. The default (`flows="true"`) is
    /// omitted so the common query stays a bare `<recoveryQuery/>`.
    pub fn to_element(&self) -> Element {
        let mut el = Element::new("recoveryQuery");
        if !self.flows {
            el.set_attr("flows", "false");
        }
        el
    }

    /// Decode from an XML element.
    pub fn from_element(e: &Element) -> Result<Self, DglError> {
        Ok(crate::RecoveryQuery { flows: e.attr("flows") != Some("false") })
    }
}

impl crate::RecoveryReport {
    /// Encode as an XML element. `lastCheckpoint`, the `<replay>` child
    /// and per-flow `resumed` markers are omitted when unset so reports
    /// from never-recovered servers round-trip byte-identically.
    pub fn to_element(&self) -> Element {
        let mut el = Element::new("recoveryReport")
            .with_attr("time", self.time_us.to_string())
            .with_attr("journaled", if self.journaled { "true" } else { "false" })
            .with_attr("records", self.journal_records.to_string())
            .with_attr("bytes", self.journal_bytes.to_string());
        if let Some(ck) = self.last_checkpoint_seq {
            el.set_attr("lastCheckpoint", ck.to_string());
        }
        if let Some(r) = &self.replay {
            el.push_element(
                Element::new("replay")
                    .with_attr("truncated", r.truncated_bytes.to_string())
                    .with_attr("commands", r.commands_replayed.to_string())
                    .with_attr("matched", r.records_matched.to_string())
                    .with_attr("divergences", r.divergences.to_string())
                    .with_attr("stepsSkipped", r.steps_skipped_restart.to_string()),
            );
        }
        for fr in &self.flows {
            let mut fe = Element::new("flow")
                .with_attr("transaction", &fr.transaction)
                .with_attr("lineage", &fr.lineage)
                .with_attr("state", state_to_str(fr.state))
                .with_attr("stepsCompleted", fr.steps_completed.to_string())
                .with_attr("stepsTotal", fr.steps_total.to_string());
            if fr.resumed {
                fe.set_attr("resumed", "true");
            }
            el.push_element(fe);
        }
        el
    }

    /// Decode from an XML element.
    pub fn from_element(e: &Element) -> Result<Self, DglError> {
        let num = |el: &Element, attr: &str| -> Result<u64, DglError> {
            let raw = require_attr(el, attr)?;
            raw.parse()
                .map_err(|_| DglError::schema(&e.name, format!("bad {attr} {raw:?}")))
        };
        let replay = e
            .child("replay")
            .map(|r| -> Result<crate::ReplayStats, DglError> {
                Ok(crate::ReplayStats {
                    truncated_bytes: num(r, "truncated")?,
                    commands_replayed: num(r, "commands")?,
                    records_matched: num(r, "matched")?,
                    divergences: num(r, "divergences")?,
                    steps_skipped_restart: num(r, "stepsSkipped")?,
                })
            })
            .transpose()?;
        let flows: Vec<crate::FlowRecovery> = e
            .children_named("flow")
            .map(|fr| {
                Ok(crate::FlowRecovery {
                    transaction: require_attr(fr, "transaction")?.to_owned(),
                    lineage: require_attr(fr, "lineage")?.to_owned(),
                    state: state_from_str(require_attr(fr, "state")?)?,
                    steps_completed: num(fr, "stepsCompleted")?,
                    steps_total: num(fr, "stepsTotal")?,
                    resumed: fr.attr("resumed") == Some("true"),
                })
            })
            .collect::<Result<_, DglError>>()?;
        let last_checkpoint_seq = e
            .attr("lastCheckpoint")
            .map(|raw| {
                raw.parse().map_err(|_| {
                    DglError::schema(&e.name, format!("bad lastCheckpoint {raw:?}"))
                })
            })
            .transpose()?;
        Ok(crate::RecoveryReport {
            time_us: num(e, "time")?,
            journaled: e.attr("journaled") == Some("true"),
            journal_records: num(e, "records")?,
            journal_bytes: num(e, "bytes")?,
            last_checkpoint_seq,
            replay,
            flows,
        })
    }
}

impl crate::TimeTravelQuery {
    /// Encode as an XML element: `<timeTravelQuery op="..."/>` with the
    /// operation's operands as attributes (bisect carries its predicate
    /// as a `<predicate>` child).
    pub fn to_element(&self) -> Element {
        let mut el = Element::new("timeTravelQuery");
        match &self.op {
            crate::TimeTravelOp::Inspect { ordinal } => {
                el.set_attr("op", "inspect");
                if let Some(o) = ordinal {
                    el.set_attr("ordinal", o.to_string());
                }
            }
            crate::TimeTravelOp::Diff { from, to } => {
                el.set_attr("op", "diff");
                el.set_attr("from", from.to_string());
                el.set_attr("to", to.to_string());
            }
            crate::TimeTravelOp::Bisect { predicate } => {
                el.set_attr("op", "bisect");
                let mut p = Element::new("predicate");
                match predicate {
                    crate::BisectSpec::Stalled { transaction } => {
                        p.set_attr("kind", "stalled");
                        p.set_attr("transaction", transaction);
                    }
                    crate::BisectSpec::State { transaction, state } => {
                        p.set_attr("kind", "state");
                        p.set_attr("transaction", transaction);
                        p.set_attr("state", state_to_str(*state));
                    }
                    crate::BisectSpec::Variable { transaction, name, value } => {
                        p.set_attr("kind", "variable");
                        p.set_attr("transaction", transaction);
                        p.set_attr("name", name);
                        p.set_attr("value", value);
                    }
                }
                el.push_element(p);
            }
        }
        el
    }

    /// Decode from an XML element.
    pub fn from_element(e: &Element) -> Result<Self, DglError> {
        let num = |attr: &str| -> Result<u64, DglError> {
            let raw = require_attr(e, attr)?;
            raw.parse().map_err(|_| DglError::schema(&e.name, format!("bad {attr} {raw:?}")))
        };
        let op = match e.attr("op").unwrap_or("inspect") {
            "inspect" => crate::TimeTravelOp::Inspect {
                ordinal: e
                    .attr("ordinal")
                    .map(|raw| {
                        raw.parse()
                            .map_err(|_| DglError::schema(&e.name, format!("bad ordinal {raw:?}")))
                    })
                    .transpose()?,
            },
            "diff" => crate::TimeTravelOp::Diff { from: num("from")?, to: num("to")? },
            "bisect" => {
                let p = require_child(e, "predicate")?;
                let transaction = require_attr(p, "transaction")?.to_owned();
                let predicate = match require_attr(p, "kind")? {
                    "stalled" => crate::BisectSpec::Stalled { transaction },
                    "state" => crate::BisectSpec::State {
                        transaction,
                        state: state_from_str(require_attr(p, "state")?)?,
                    },
                    "variable" => crate::BisectSpec::Variable {
                        transaction,
                        name: require_attr(p, "name")?.to_owned(),
                        value: require_attr(p, "value")?.to_owned(),
                    },
                    other => {
                        return Err(DglError::schema(
                            &p.name,
                            format!("unknown predicate kind {other:?}"),
                        ))
                    }
                };
                crate::TimeTravelOp::Bisect { predicate }
            }
            other => return Err(DglError::schema(&e.name, format!("unknown op {other:?}"))),
        };
        Ok(crate::TimeTravelQuery { op })
    }
}

impl crate::TimeTravelReport {
    /// Encode as an XML element. Absent halves (`inspect`/`diff`/
    /// `bisect`/`error`) are omitted entirely so every report
    /// round-trips byte-identically.
    pub fn to_element(&self) -> Element {
        let mut el = Element::new("timeTravelReport")
            .with_attr("time", self.time_us.to_string())
            .with_attr("enabled", if self.enabled { "true" } else { "false" });
        if let Some(last) = self.last_ordinal {
            el.set_attr("lastOrdinal", last.to_string());
        }
        if let Some(i) = &self.inspect {
            let mut ie = Element::new("inspect")
                .with_attr("complete", if i.complete { "true" } else { "false" })
                .with_attr("commandsApplied", i.commands_applied.to_string())
                .with_attr("transitionsDerived", i.transitions_derived.to_string())
                .with_attr("clock", i.time_us.to_string());
            if let Some(o) = i.ordinal {
                ie.set_attr("ordinal", o.to_string());
            }
            if let Some(r) = i.requested {
                ie.set_attr("requested", r.to_string());
            }
            for fr in &i.flows {
                let mut fe = Element::new("flow")
                    .with_attr("transaction", &fr.transaction)
                    .with_attr("lineage", &fr.lineage)
                    .with_attr("state", state_to_str(fr.state))
                    .with_attr("stepsCompleted", fr.steps_completed.to_string())
                    .with_attr("stepsTotal", fr.steps_total.to_string());
                if fr.resumed {
                    fe.set_attr("resumed", "true");
                }
                ie.push_element(fe);
            }
            el.push_element(ie);
        }
        if let Some(d) = &self.diff {
            let mut de = Element::new("diff")
                .with_attr("from", d.from.to_string())
                .with_attr("to", d.to.to_string())
                .with_attr("provenanceAdded", d.provenance_added.to_string())
                .with_attr("clockFrom", d.time_from_us.to_string())
                .with_attr("clockTo", d.time_to_us.to_string());
            for fd in &d.flows {
                let mut fe = Element::new("flow")
                    .with_attr("transaction", &fd.transaction)
                    .with_attr("stepsFrom", fd.steps_from.to_string())
                    .with_attr("stepsTo", fd.steps_to.to_string())
                    .with_attr("stepsTotal", fd.steps_total.to_string());
                if let Some(s) = fd.from_state {
                    fe.set_attr("fromState", state_to_str(s));
                }
                if let Some(s) = fd.to_state {
                    fe.set_attr("toState", state_to_str(s));
                }
                de.push_element(fe);
            }
            el.push_element(de);
        }
        if let Some(b) = &self.bisect {
            let mut be = Element::new("bisect")
                .with_attr("probes", b.probes.to_string())
                .with_attr("lastOrdinal", b.last_ordinal.to_string());
            if let Some(o) = b.first_true {
                be.set_attr("firstTrue", o.to_string());
            }
            el.push_element(be);
        }
        if let Some(err) = &self.error {
            el.push_element(Element::new("error").with_text(err));
        }
        el
    }

    /// Decode from an XML element.
    pub fn from_element(e: &Element) -> Result<Self, DglError> {
        let num = |el: &Element, attr: &str| -> Result<u64, DglError> {
            let raw = require_attr(el, attr)?;
            raw.parse().map_err(|_| DglError::schema(&el.name, format!("bad {attr} {raw:?}")))
        };
        let opt_num = |el: &Element, attr: &str| -> Result<Option<u64>, DglError> {
            el.attr(attr)
                .map(|raw| {
                    raw.parse()
                        .map_err(|_| DglError::schema(&el.name, format!("bad {attr} {raw:?}")))
                })
                .transpose()
        };
        let inspect = e
            .child("inspect")
            .map(|ie| -> Result<crate::OrdinalSummary, DglError> {
                Ok(crate::OrdinalSummary {
                    ordinal: opt_num(ie, "ordinal")?,
                    requested: opt_num(ie, "requested")?,
                    complete: ie.attr("complete") == Some("true"),
                    commands_applied: num(ie, "commandsApplied")?,
                    transitions_derived: num(ie, "transitionsDerived")?,
                    time_us: num(ie, "clock")?,
                    flows: ie
                        .children_named("flow")
                        .map(|fr| {
                            Ok(crate::FlowRecovery {
                                transaction: require_attr(fr, "transaction")?.to_owned(),
                                lineage: require_attr(fr, "lineage")?.to_owned(),
                                state: state_from_str(require_attr(fr, "state")?)?,
                                steps_completed: num(fr, "stepsCompleted")?,
                                steps_total: num(fr, "stepsTotal")?,
                                resumed: fr.attr("resumed") == Some("true"),
                            })
                        })
                        .collect::<Result<_, DglError>>()?,
                })
            })
            .transpose()?;
        let diff = e
            .child("diff")
            .map(|de| -> Result<crate::DiffSummary, DglError> {
                Ok(crate::DiffSummary {
                    from: num(de, "from")?,
                    to: num(de, "to")?,
                    provenance_added: num(de, "provenanceAdded")?,
                    time_from_us: num(de, "clockFrom")?,
                    time_to_us: num(de, "clockTo")?,
                    flows: de
                        .children_named("flow")
                        .map(|fd| {
                            Ok(crate::FlowDelta {
                                transaction: require_attr(fd, "transaction")?.to_owned(),
                                from_state: fd
                                    .attr("fromState")
                                    .map(state_from_str)
                                    .transpose()?,
                                to_state: fd.attr("toState").map(state_from_str).transpose()?,
                                steps_from: num(fd, "stepsFrom")?,
                                steps_to: num(fd, "stepsTo")?,
                                steps_total: num(fd, "stepsTotal")?,
                            })
                        })
                        .collect::<Result<_, DglError>>()?,
                })
            })
            .transpose()?;
        let bisect = e
            .child("bisect")
            .map(|be| -> Result<crate::BisectSummary, DglError> {
                Ok(crate::BisectSummary {
                    first_true: opt_num(be, "firstTrue")?,
                    probes: num(be, "probes")?,
                    last_ordinal: num(be, "lastOrdinal")?,
                })
            })
            .transpose()?;
        Ok(crate::TimeTravelReport {
            time_us: num(e, "time")?,
            enabled: e.attr("enabled") == Some("true"),
            last_ordinal: opt_num(e, "lastOrdinal")?,
            inspect,
            diff,
            bisect,
            error: e.child("error").map(|el| el.text()),
        })
    }
}

impl crate::ProfileQuery {
    /// Encode as an XML element: `<profileQuery/>` with optional
    /// `folded`/`reset` flags (omitted when false so plain snapshot
    /// queries stay minimal).
    pub fn to_element(&self) -> Element {
        let mut el = Element::new("profileQuery");
        if self.folded {
            el.set_attr("folded", "true");
        }
        if self.reset {
            el.set_attr("reset", "true");
        }
        el
    }

    /// Decode from an XML element.
    pub fn from_element(e: &Element) -> Result<Self, DglError> {
        Ok(crate::ProfileQuery {
            folded: e.attr("folded") == Some("true"),
            reset: e.attr("reset") == Some("true"),
        })
    }
}

impl crate::ProfileReport {
    /// Encode as an XML element. Phases travel flattened depth-first,
    /// one `<phase>` per tree node; optional halves (`<folded>`,
    /// `<contention>`) are omitted when absent so every report
    /// round-trips byte-identically.
    pub fn to_element(&self) -> Element {
        let mut el = Element::new("profileReport").with_attr("time", self.time_us.to_string());
        for p in &self.phases {
            el.push_element(
                Element::new("phase")
                    .with_attr("depth", p.depth.to_string())
                    .with_attr("name", &p.phase)
                    .with_attr("calls", p.calls.to_string())
                    .with_attr("simUs", p.sim_us.to_string())
                    .with_attr("wallNs", p.wall_ns.to_string())
                    .with_attr("allocs", p.allocs.to_string()),
            );
        }
        if let Some(folded) = &self.folded {
            el.push_element(Element::new("folded").with_text(folded));
        }
        if let Some(c) = &self.contention {
            let mut ce = Element::new("contention")
                .with_attr("enqueued", c.enqueued.to_string())
                .with_attr("served", c.served.to_string())
                .with_attr("queueDepthMax", c.queue_depth_max.to_string());
            for h in &c.hists {
                ce.push_element(
                    Element::new("hist")
                        .with_attr("name", &h.name)
                        .with_attr("count", h.count.to_string())
                        .with_attr("sumNs", h.sum_ns.to_string())
                        .with_attr("minNs", h.min_ns.to_string())
                        .with_attr("maxNs", h.max_ns.to_string()),
                );
            }
            el.push_element(ce);
        }
        el
    }

    /// Decode from an XML element.
    pub fn from_element(e: &Element) -> Result<Self, DglError> {
        let num = |el: &Element, attr: &str| -> Result<u64, DglError> {
            let raw = require_attr(el, attr)?;
            raw.parse().map_err(|_| DglError::schema(&el.name, format!("bad {attr} {raw:?}")))
        };
        let phases = e
            .children_named("phase")
            .map(|pe| {
                let raw = require_attr(pe, "depth")?;
                let depth = raw
                    .parse()
                    .map_err(|_| DglError::schema(&pe.name, format!("bad depth {raw:?}")))?;
                Ok(crate::ProfilePhase {
                    depth,
                    phase: require_attr(pe, "name")?.to_owned(),
                    calls: num(pe, "calls")?,
                    sim_us: num(pe, "simUs")?,
                    wall_ns: num(pe, "wallNs")?,
                    allocs: num(pe, "allocs")?,
                })
            })
            .collect::<Result<_, DglError>>()?;
        // Element text is whitespace-trimmed by the XML layer; the
        // folded format is line-oriented and always ends in exactly
        // one newline, so restore it after the trim.
        let folded = e.child("folded").map(|s| {
            let text = s.text();
            if text.is_empty() {
                text
            } else {
                text + "\n"
            }
        });
        let contention = e
            .child("contention")
            .map(|ce| -> Result<crate::ServerContention, DglError> {
                Ok(crate::ServerContention {
                    enqueued: num(ce, "enqueued")?,
                    served: num(ce, "served")?,
                    queue_depth_max: num(ce, "queueDepthMax")?,
                    hists: ce
                        .children_named("hist")
                        .map(|he| {
                            Ok(crate::LockHistogram {
                                name: require_attr(he, "name")?.to_owned(),
                                count: num(he, "count")?,
                                sum_ns: num(he, "sumNs")?,
                                min_ns: num(he, "minNs")?,
                                max_ns: num(he, "maxNs")?,
                            })
                        })
                        .collect::<Result<_, DglError>>()?,
                })
            })
            .transpose()?;
        Ok(crate::ProfileReport { time_us: num(e, "time")?, phases, folded, contention })
    }
}

impl crate::WhyQuery {
    /// Encode as an XML element: `<whyQuery topK="5"/>`; the `flow`
    /// filter is omitted when unset, `paths`/`alerts` are omitted when
    /// true (their default) so the plain query stays minimal.
    pub fn to_element(&self) -> Element {
        let mut el = Element::new("whyQuery").with_attr("topK", self.top_k.to_string());
        if let Some(flow) = &self.flow {
            el.set_attr("flow", flow);
        }
        if !self.paths {
            el.set_attr("paths", "false");
        }
        if !self.alerts {
            el.set_attr("alerts", "false");
        }
        el
    }

    /// Decode from an XML element.
    pub fn from_element(e: &Element) -> Result<Self, DglError> {
        let raw = require_attr(e, "topK")?;
        let top_k =
            raw.parse().map_err(|_| DglError::schema(&e.name, format!("bad topK {raw:?}")))?;
        Ok(crate::WhyQuery {
            flow: e.attr("flow").map(str::to_owned),
            top_k,
            paths: e.attr("paths") != Some("false"),
            alerts: e.attr("alerts") != Some("false"),
        })
    }
}

impl crate::WhyReport {
    /// Encode as an XML element: one `<criticalPath>` (with nested
    /// `<segment>`s) per analyzed flow, one `<bottleneck>` per
    /// aggregated blame row, one `<alert>` per SLA objective. Optional
    /// attributes (`causedBy`, `firedAt`, `resolvedAt`) are omitted
    /// when absent so every report round-trips byte-identically.
    pub fn to_element(&self) -> Element {
        let mut el = Element::new("whyReport")
            .with_attr("time", self.time_us.to_string())
            .with_attr("flows", self.flows_analyzed.to_string())
            .with_attr("attributedUs", self.attributed_us.to_string());
        for p in &self.paths {
            let mut pe = Element::new("criticalPath")
                .with_attr("txn", &p.txn)
                .with_attr("flow", &p.flow)
                .with_attr("startUs", p.start_us.to_string())
                .with_attr("endUs", p.end_us.to_string());
            if let Some(cause) = &p.caused_by {
                pe.set_attr("causedBy", cause);
            }
            for s in &p.segments {
                pe.push_element(
                    Element::new("segment")
                        .with_attr("fromUs", s.from_us.to_string())
                        .with_attr("untilUs", s.until_us.to_string())
                        .with_attr("state", s.state.name())
                        .with_attr("resource", &s.resource)
                        .with_attr("node", &s.node),
                );
            }
            el.push_element(pe);
        }
        for b in &self.bottlenecks {
            el.push_element(
                Element::new("bottleneck")
                    .with_attr("state", b.state.name())
                    .with_attr("resource", &b.resource)
                    .with_attr("totalUs", b.total_us.to_string())
                    .with_attr("sharePpm", b.share_ppm.to_string()),
            );
        }
        for a in &self.alerts {
            let mut ae = Element::new("alert")
                .with_attr("txn", &a.txn)
                .with_attr("class", &a.class)
                .with_attr("flow", &a.flow)
                .with_attr("startedUs", a.started_us.to_string())
                .with_attr("deadlineUs", a.deadline_us.to_string())
                .with_attr("state", a.state.name())
                .with_attr("burnPpm", a.burn_ppm.to_string())
                .with_attr("breached", if a.breached { "true" } else { "false" });
            if let Some(t) = a.fired_at_us {
                ae.set_attr("firedAtUs", t.to_string());
            }
            if let Some(t) = a.resolved_at_us {
                ae.set_attr("resolvedAtUs", t.to_string());
            }
            el.push_element(ae);
        }
        el
    }

    /// Decode from an XML element.
    pub fn from_element(e: &Element) -> Result<Self, DglError> {
        let num = |el: &Element, attr: &str| -> Result<u64, DglError> {
            let raw = require_attr(el, attr)?;
            raw.parse().map_err(|_| DglError::schema(&el.name, format!("bad {attr} {raw:?}")))
        };
        let opt_num = |el: &Element, attr: &str| -> Result<Option<u64>, DglError> {
            el.attr(attr)
                .map(|raw| {
                    raw.parse()
                        .map_err(|_| DglError::schema(&el.name, format!("bad {attr} {raw:?}")))
                })
                .transpose()
        };
        let wait_state = |el: &Element| -> Result<crate::WaitState, DglError> {
            let raw = require_attr(el, "state")?;
            crate::WaitState::parse(raw)
                .ok_or_else(|| DglError::schema(&el.name, format!("unknown wait state {raw:?}")))
        };
        let paths = e
            .children_named("criticalPath")
            .map(|pe| {
                Ok(crate::WhyPath {
                    txn: require_attr(pe, "txn")?.to_owned(),
                    flow: require_attr(pe, "flow")?.to_owned(),
                    start_us: num(pe, "startUs")?,
                    end_us: num(pe, "endUs")?,
                    caused_by: pe.attr("causedBy").map(str::to_owned),
                    segments: pe
                        .children_named("segment")
                        .map(|se| {
                            Ok(crate::WhySegment {
                                from_us: num(se, "fromUs")?,
                                until_us: num(se, "untilUs")?,
                                state: wait_state(se)?,
                                resource: require_attr(se, "resource")?.to_owned(),
                                node: require_attr(se, "node")?.to_owned(),
                            })
                        })
                        .collect::<Result<_, DglError>>()?,
                })
            })
            .collect::<Result<_, DglError>>()?;
        let bottlenecks = e
            .children_named("bottleneck")
            .map(|be| {
                Ok(crate::WhyBottleneck {
                    state: wait_state(be)?,
                    resource: require_attr(be, "resource")?.to_owned(),
                    total_us: num(be, "totalUs")?,
                    share_ppm: num(be, "sharePpm")?,
                })
            })
            .collect::<Result<_, DglError>>()?;
        let alerts = e
            .children_named("alert")
            .map(|ae| {
                let raw = require_attr(ae, "state")?;
                let state = crate::AlertState::parse(raw).ok_or_else(|| {
                    DglError::schema(&ae.name, format!("unknown alert state {raw:?}"))
                })?;
                Ok(crate::WhyAlert {
                    txn: require_attr(ae, "txn")?.to_owned(),
                    class: require_attr(ae, "class")?.to_owned(),
                    flow: require_attr(ae, "flow")?.to_owned(),
                    started_us: num(ae, "startedUs")?,
                    deadline_us: num(ae, "deadlineUs")?,
                    state,
                    burn_ppm: num(ae, "burnPpm")?,
                    fired_at_us: opt_num(ae, "firedAtUs")?,
                    resolved_at_us: opt_num(ae, "resolvedAtUs")?,
                    breached: require_attr(ae, "breached")? == "true",
                })
            })
            .collect::<Result<_, DglError>>()?;
        Ok(crate::WhyReport {
            time_us: num(e, "time")?,
            flows_analyzed: num(e, "flows")?,
            attributed_us: num(e, "attributedUs")?,
            paths,
            bottlenecks,
            alerts,
        })
    }
}

fn state_to_str(s: RunState) -> &'static str {
    match s {
        RunState::Pending => "pending",
        RunState::Running => "running",
        RunState::Paused => "paused",
        RunState::Completed => "completed",
        RunState::Failed => "failed",
        RunState::Stopped => "stopped",
        RunState::Skipped => "skipped",
    }
}

fn state_from_str(s: &str) -> Result<RunState, DglError> {
    Ok(match s {
        "pending" => RunState::Pending,
        "running" => RunState::Running,
        "paused" => RunState::Paused,
        "completed" => RunState::Completed,
        "failed" => RunState::Failed,
        "stopped" => RunState::Stopped,
        "skipped" => RunState::Skipped,
        other => return Err(DglError::schema("state", format!("unknown run state {other:?}"))),
    })
}

impl DataGridResponse {
    /// Encode as an XML element.
    pub fn to_element(&self) -> Element {
        let mut root = Element::new("dataGridResponse").with_attr("requestId", &self.request_id);
        match &self.body {
            ResponseBody::Ack(ack) => {
                let mut a = Element::new("requestAcknowledgement")
                    .with_attr("transaction", &ack.transaction)
                    .with_attr("state", state_to_str(ack.state))
                    .with_attr("valid", if ack.valid { "true" } else { "false" });
                if let Some(msg) = &ack.message {
                    a.push_element(Element::new("message").with_text(msg));
                }
                root.push_element(a);
            }
            ResponseBody::Status(report) => {
                let mut s = Element::new("statusReport")
                    .with_attr("transaction", &report.transaction)
                    .with_attr("node", &report.node)
                    .with_attr("name", &report.name)
                    .with_attr("state", state_to_str(report.state))
                    .with_attr("stepsCompleted", report.steps_completed.to_string())
                    .with_attr("stepsTotal", report.steps_total.to_string());
                if let Some(msg) = &report.message {
                    s.push_element(Element::new("message").with_text(msg));
                }
                for (node, name, state) in &report.children {
                    s.push_element(
                        Element::new("child")
                            .with_attr("node", node)
                            .with_attr("name", name)
                            .with_attr("state", state_to_str(*state)),
                    );
                }
                for ev in &report.events {
                    s.push_element(
                        Element::new("event")
                            .with_attr("time", ev.time_us.to_string())
                            .with_attr("seq", ev.seq.to_string())
                            .with_attr("kind", &ev.kind)
                            .with_attr("detail", &ev.detail),
                    );
                }
                for m in &report.metrics {
                    s.push_element(
                        Element::new("metric")
                            .with_attr("scope", &m.scope)
                            .with_attr("name", &m.name)
                            .with_attr("kind", &m.kind)
                            .with_attr("value", &m.value),
                    );
                }
                for sp in &report.spans {
                    let mut el = Element::new("span")
                        .with_attr("id", sp.id.to_string())
                        .with_attr("trace", sp.trace.to_string())
                        .with_attr("kind", &sp.kind)
                        .with_attr("name", &sp.name)
                        .with_attr("start", sp.start_us.to_string());
                    // Optional attrs are omitted when unset so old
                    // documents round-trip byte-identically.
                    if let Some(parent) = sp.parent {
                        el.set_attr("parent", parent.to_string());
                    }
                    if let Some(end) = sp.end_us {
                        el.set_attr("end", end.to_string());
                    }
                    for (k, v) in &sp.attrs {
                        el.push_element(Element::new("attr").with_attr("name", k).with_attr("value", v));
                    }
                    s.push_element(el);
                }
                root.push_element(s);
            }
            ResponseBody::Telemetry(report) => {
                let mut t = Element::new("telemetryReport").with_attr("time", report.time_us.to_string());
                // Optional attrs/elements are omitted when unset so
                // scrape-only and tail-only reports stay minimal.
                if let Some(next) = report.next_cursor {
                    t.set_attr("nextCursor", next.to_string());
                }
                if let Some(dropped) = report.dropped {
                    t.set_attr("dropped", dropped.to_string());
                }
                if let Some(scrape) = &report.scrape {
                    t.push_element(Element::new("scrape").with_text(scrape));
                }
                for ev in &report.events {
                    t.push_element(
                        Element::new("event")
                            .with_attr("time", ev.time_us.to_string())
                            .with_attr("seq", ev.seq.to_string())
                            .with_attr("kind", &ev.kind)
                            .with_attr("detail", &ev.detail),
                    );
                }
                root.push_element(t);
            }
            ResponseBody::Validation(report) => root.push_element(report.to_element()),
            ResponseBody::Recovery(report) => root.push_element(report.to_element()),
            ResponseBody::TimeTravel(report) => root.push_element(report.to_element()),
            ResponseBody::Profile(report) => root.push_element(report.to_element()),
            ResponseBody::Why(report) => root.push_element(report.to_element()),
        }
        root
    }

    /// Encode as a pretty-printed XML document.
    pub fn to_xml(&self) -> String {
        self.to_element().to_xml_pretty()
    }

    /// Decode from an XML element.
    pub fn from_element(e: &Element) -> Result<Self, DglError> {
        if e.name != "dataGridResponse" {
            return Err(DglError::schema(&e.name, "expected <dataGridResponse>"));
        }
        let request_id = require_attr(e, "requestId")?.to_owned();
        if let Some(a) = e.child("requestAcknowledgement") {
            let ack = RequestAck {
                transaction: require_attr(a, "transaction")?.to_owned(),
                state: state_from_str(require_attr(a, "state")?)?,
                valid: a.attr("valid") == Some("true"),
                message: a.child("message").map(|m| m.text()),
            };
            return Ok(DataGridResponse { request_id, body: ResponseBody::Ack(ack) });
        }
        if let Some(s) = e.child("statusReport") {
            let parse_count = |attr: &str| -> Result<usize, DglError> {
                require_attr(s, attr)?
                    .parse()
                    .map_err(|_| DglError::schema("statusReport", format!("bad {attr}")))
            };
            let report = StatusReport {
                transaction: require_attr(s, "transaction")?.to_owned(),
                node: require_attr(s, "node")?.to_owned(),
                name: require_attr(s, "name")?.to_owned(),
                state: state_from_str(require_attr(s, "state")?)?,
                steps_completed: parse_count("stepsCompleted")?,
                steps_total: parse_count("stepsTotal")?,
                message: s.child("message").map(|m| m.text()),
                children: s
                    .children_named("child")
                    .map(|c| {
                        Ok((
                            require_attr(c, "node")?.to_owned(),
                            require_attr(c, "name")?.to_owned(),
                            state_from_str(require_attr(c, "state")?)?,
                        ))
                    })
                    .collect::<Result<_, DglError>>()?,
                events: s
                    .children_named("event")
                    .map(|ev| {
                        let num = |attr: &str| -> Result<u64, DglError> {
                            require_attr(ev, attr)?
                                .parse()
                                .map_err(|_| DglError::schema("event", format!("bad {attr}")))
                        };
                        Ok(crate::ReportEvent {
                            time_us: num("time")?,
                            seq: num("seq")?,
                            kind: require_attr(ev, "kind")?.to_owned(),
                            detail: ev.attr("detail").unwrap_or_default().to_owned(),
                        })
                    })
                    .collect::<Result<_, DglError>>()?,
                metrics: s
                    .children_named("metric")
                    .map(|m| {
                        Ok(crate::ReportMetric {
                            scope: require_attr(m, "scope")?.to_owned(),
                            name: require_attr(m, "name")?.to_owned(),
                            kind: require_attr(m, "kind")?.to_owned(),
                            value: require_attr(m, "value")?.to_owned(),
                        })
                    })
                    .collect::<Result<_, DglError>>()?,
                spans: s
                    .children_named("span")
                    .map(|sp| {
                        let num = |attr: &str| -> Result<u64, DglError> {
                            require_attr(sp, attr)?
                                .parse()
                                .map_err(|_| DglError::schema("span", format!("bad {attr}")))
                        };
                        let opt_num = |attr: &str| -> Result<Option<u64>, DglError> {
                            sp.attr(attr)
                                .map(|raw| {
                                    raw.parse()
                                        .map_err(|_| DglError::schema("span", format!("bad {attr}")))
                                })
                                .transpose()
                        };
                        Ok(crate::ReportSpan {
                            id: num("id")?,
                            parent: opt_num("parent")?,
                            trace: num("trace")?,
                            kind: require_attr(sp, "kind")?.to_owned(),
                            name: require_attr(sp, "name")?.to_owned(),
                            start_us: num("start")?,
                            end_us: opt_num("end")?,
                            attrs: sp
                                .children_named("attr")
                                .map(|a| {
                                    Ok((
                                        require_attr(a, "name")?.to_owned(),
                                        require_attr(a, "value")?.to_owned(),
                                    ))
                                })
                                .collect::<Result<_, DglError>>()?,
                        })
                    })
                    .collect::<Result<_, DglError>>()?,
            };
            return Ok(DataGridResponse { request_id, body: ResponseBody::Status(report) });
        }
        if let Some(t) = e.child("telemetryReport") {
            let num = |attr: &str| -> Result<Option<u64>, DglError> {
                t.attr(attr)
                    .map(|raw| {
                        raw.parse().map_err(|_| {
                            DglError::schema("telemetryReport", format!("bad {attr} {raw:?}"))
                        })
                    })
                    .transpose()
            };
            let report = crate::TelemetryReport {
                time_us: num("time")?.ok_or_else(|| DglError::schema("telemetryReport", "missing time"))?,
                next_cursor: num("nextCursor")?,
                dropped: num("dropped")?,
                // Element text is whitespace-trimmed by the XML layer;
                // the scrape format is line-oriented and always ends in
                // exactly one newline, so restore it after the trim.
                scrape: t.child("scrape").map(|s| {
                    let text = s.text();
                    if text.is_empty() {
                        text
                    } else {
                        text + "\n"
                    }
                }),
                events: t
                    .children_named("event")
                    .map(|ev| {
                        let num = |attr: &str| -> Result<u64, DglError> {
                            require_attr(ev, attr)?
                                .parse()
                                .map_err(|_| DglError::schema("event", format!("bad {attr}")))
                        };
                        Ok(crate::ReportEvent {
                            time_us: num("time")?,
                            seq: num("seq")?,
                            kind: require_attr(ev, "kind")?.to_owned(),
                            detail: ev.attr("detail").unwrap_or_default().to_owned(),
                        })
                    })
                    .collect::<Result<_, DglError>>()?,
            };
            return Ok(DataGridResponse { request_id, body: ResponseBody::Telemetry(report) });
        }
        if let Some(v) = e.child("validationReport") {
            let report = crate::ValidationReport::from_element(v)?;
            return Ok(DataGridResponse { request_id, body: ResponseBody::Validation(report) });
        }
        if let Some(r) = e.child("recoveryReport") {
            let report = crate::RecoveryReport::from_element(r)?;
            return Ok(DataGridResponse { request_id, body: ResponseBody::Recovery(report) });
        }
        if let Some(t) = e.child("timeTravelReport") {
            let report = crate::TimeTravelReport::from_element(t)?;
            return Ok(DataGridResponse { request_id, body: ResponseBody::TimeTravel(report) });
        }
        if let Some(t) = e.child("profileReport") {
            let report = crate::ProfileReport::from_element(t)?;
            return Ok(DataGridResponse { request_id, body: ResponseBody::Profile(report) });
        }
        if let Some(t) = e.child("whyReport") {
            let report = crate::WhyReport::from_element(t)?;
            return Ok(DataGridResponse { request_id, body: ResponseBody::Why(report) });
        }
        Err(DglError::schema(
            "dataGridResponse",
            "needs <requestAcknowledgement>, <statusReport>, <telemetryReport>, <validationReport>, <recoveryReport>, <timeTravelReport>, <profileReport>, or <whyReport>",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(name: &str, op: DglOperation) -> Step {
        Step::new(name, op)
    }

    fn sample_flow() -> Flow {
        Flow {
            name: "md5-pipeline".into(),
            variables: vec![VarDecl::new("collection", "/home/ucsd/library")],
            logic: FlowLogic {
                pattern: ControlPattern::ForEach {
                    var: "file".into(),
                    source: IterSource::Collection("${collection}".into()),
                    parallel: false,
                },
                rules: vec![UserDefinedRule::new(
                    "afterExit",
                    Expr::parse("'log'").unwrap(),
                    vec![RuleAction {
                        name: "log".into(),
                        steps: vec![step("note", DglOperation::Notify { message: "done".into() })],
                    }],
                )],
            },
            children: Children::Steps(vec![
                step("verify", DglOperation::Checksum { path: "${file}".into(), resource: None, register: false })
                    .with_error_policy(crate::step::ErrorPolicy::Retry(2)),
                step(
                    "tag",
                    DglOperation::SetMetadata { path: "${file}".into(), attribute: "verified".into(), value: "true".into() },
                ),
            ]),
        }
    }

    #[test]
    fn request_round_trips_through_xml() {
        let req = DataGridRequest::flow("req-7", "jonw", sample_flow())
            .asynchronous()
            .with_description("UCSD library integrity sweep")
            .with_vo("ucsd-lib");
        let xml = req.to_xml();
        let parsed = parse_request(&xml).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn status_query_request_round_trips() {
        let req = DataGridRequest::status("req-8", "jonw", FlowStatusQuery::node("t42", "/0/1"));
        let parsed = parse_request(&req.to_xml()).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn every_operation_round_trips() {
        let ops = vec![
            DglOperation::CreateCollection { path: "/a".into() },
            DglOperation::Ingest { path: "/a/x".into(), size: "100".into(), resource: "r1".into() },
            DglOperation::Replicate { path: "/a/x".into(), src: Some("r1".into()), dst: "r2".into() },
            DglOperation::Replicate { path: "/a/x".into(), src: None, dst: "r2".into() },
            DglOperation::Migrate { path: "/a/x".into(), from: "r1".into(), to: "r2".into() },
            DglOperation::Trim { path: "/a/x".into(), resource: "r1".into() },
            DglOperation::Delete { path: "/a/x".into() },
            DglOperation::Rename { path: "/a/x".into(), to: "/a/y".into() },
            DglOperation::Checksum { path: "/a/x".into(), resource: Some("r1".into()), register: true },
            DglOperation::SetMetadata { path: "/a/x".into(), attribute: "k".into(), value: "v".into() },
            DglOperation::SetPermission { path: "/a".into(), grantee: "reena".into(), level: "write".into() },
            DglOperation::Query { collection: "/a".into(), attribute: "k".into(), value: "v".into(), into: "hits".into() },
            DglOperation::Execute {
                code: "anelastic-wave".into(),
                nominal_secs: "3600".into(),
                resource_type: Some("compute:16".into()),
                inputs: vec!["/a/x".into(), "/a/y".into()],
                outputs: vec![("/a/out".into(), "1000000".into())],
            },
            DglOperation::Assign { variable: "i".into(), expr: Expr::parse("i + 1").unwrap() },
            DglOperation::Notify { message: "ingested a new file".into() },
        ];
        for op in ops {
            let el = op.to_element();
            let back = DglOperation::from_element(&el).unwrap();
            assert_eq!(back, op, "op {}", op.verb());
        }
    }

    #[test]
    fn every_control_pattern_round_trips() {
        let patterns = vec![
            ControlPattern::Sequential,
            ControlPattern::Parallel,
            ControlPattern::While(Expr::parse("i < 10").unwrap()),
            ControlPattern::ForEach { var: "f".into(), source: IterSource::Items(vec!["a".into(), "b".into()]), parallel: true },
            ControlPattern::ForEach {
                var: "f".into(),
                source: IterSource::Query { collection: "/c".into(), attribute: "type".into(), value: "pdf".into() },
                parallel: false,
            },
            ControlPattern::ForEach { var: "f".into(), source: IterSource::Variable("hits".into()), parallel: false },
            ControlPattern::Switch {
                on: Expr::parse("kind").unwrap(),
                cases: vec![Case { value: Some("a".into()) }, Case { value: None }],
            },
        ];
        for pattern in patterns {
            let logic = FlowLogic { pattern: pattern.clone(), rules: vec![] };
            let back = FlowLogic::from_element(&logic.to_element()).unwrap();
            assert_eq!(back.pattern, pattern, "pattern {}", pattern.tag());
        }
    }

    #[test]
    fn responses_round_trip() {
        let ack = DataGridResponse::ack(
            "r1",
            RequestAck { transaction: "t1".into(), state: RunState::Pending, valid: true, message: Some("queued".into()) },
        );
        assert_eq!(parse_response(&ack.to_xml()).unwrap(), ack);

        let status = DataGridResponse::status(
            "r2",
            StatusReport {
                transaction: "t1".into(),
                node: "/".into(),
                name: "md5-pipeline".into(),
                state: RunState::Running,
                steps_completed: 5,
                steps_total: 20,
                message: None,
                children: vec![("/0".into(), "verify".into(), RunState::Completed), ("/1".into(), "tag".into(), RunState::Running)],
                events: vec![crate::ReportEvent { time_us: 42, seq: 0, kind: "step.finished".into(), detail: "t1 /0 verify completed".into() }],
                metrics: vec![crate::ReportMetric { scope: "engine".into(), name: "steps.executed".into(), kind: "counter".into(), value: "5".into() }],
                spans: vec![],
            },
        );
        assert_eq!(parse_response(&status.to_xml()).unwrap(), status);
    }

    #[test]
    fn telemetry_requests_round_trip() {
        // Scrape-only: the tail attrs must be absent from the wire.
        let scrape = DataGridRequest::telemetry("r1", "operator", crate::TelemetryQuery::scrape());
        let xml = scrape.to_xml();
        assert!(xml.contains(r#"<telemetryQuery scrape="true"/>"#), "{xml}");
        assert!(!xml.contains("tailFrom") && !xml.contains("tailLimit"), "{xml}");
        assert_eq!(parse_request(&xml).unwrap(), scrape);

        // Tail + scrape + limit, all attrs present.
        let both = DataGridRequest::telemetry(
            "r2",
            "operator",
            crate::TelemetryQuery::tail(1234).with_scrape().with_limit(50),
        );
        assert_eq!(parse_request(&both.to_xml()).unwrap(), both);

        // Tail-only: no scrape attr on the wire.
        let tail = DataGridRequest::telemetry("r3", "operator", crate::TelemetryQuery::tail(0));
        assert!(!tail.to_xml().contains("scrape"), "{}", tail.to_xml());
        assert_eq!(parse_request(&tail.to_xml()).unwrap(), tail);
    }

    #[test]
    fn telemetry_reports_round_trip() {
        let scrape_text = "# dgf telemetry scrape at 7us\ndgf_metric{scope=\"engine\",name=\"runs.completed\",kind=\"counter\"} 1\n";
        let report = DataGridResponse::telemetry(
            "r9",
            crate::TelemetryReport {
                time_us: 7,
                scrape: Some(scrape_text.into()),
                events: vec![crate::ReportEvent {
                    time_us: 3,
                    seq: 11,
                    kind: "health.stalled".into(),
                    detail: "t1 slow->stalled last_progress_us=1".into(),
                }],
                next_cursor: Some(12),
                dropped: Some(4),
            },
        );
        let parsed = parse_response(&report.to_xml()).unwrap();
        assert_eq!(parsed, report);
        let ResponseBody::Telemetry(r) = parsed.body else { panic!("expected telemetry") };
        assert_eq!(r.scrape.as_deref(), Some(scrape_text), "scrape text travels byte-exactly");
        assert_eq!(parsed.request_id, "r9");

        // Tail-only report: no <scrape> child, optional attrs present.
        let tail_only = DataGridResponse::telemetry(
            "r10",
            crate::TelemetryReport { time_us: 1, scrape: None, events: vec![], next_cursor: Some(0), dropped: Some(0) },
        );
        assert!(!tail_only.to_xml().contains("<scrape>"), "{}", tail_only.to_xml());
        assert_eq!(parse_response(&tail_only.to_xml()).unwrap(), tail_only);

        // Telemetry responses carry no transaction.
        assert_eq!(tail_only.transaction(), "");
    }

    #[test]
    fn validation_query_and_report_round_trip() {
        let req = DataGridRequest::validation("r1", "jonw", sample_flow());
        let xml = req.to_xml();
        assert!(xml.contains("<flowValidationQuery>"), "{xml}");
        assert_eq!(parse_request(&xml).unwrap(), req);

        let report = DataGridResponse::validation(
            "r2",
            crate::ValidationReport {
                flow: "md5-pipeline".into(),
                valid: false,
                diagnostics: vec![
                    crate::Diagnostic::new(
                        "DGF001",
                        crate::Severity::Error,
                        "/md5-pipeline/verify",
                        "undefined variable `out` in path template",
                    )
                    .with_hint("declare `out` in an enclosing flow's <variables>"),
                    crate::Diagnostic::new("DGF002", crate::Severity::Warning, "/md5-pipeline", "variable `collection` is never read"),
                ],
            },
        );
        let parsed = parse_response(&report.to_xml()).unwrap();
        assert_eq!(parsed, report);
        // Validation responses carry no transaction.
        assert_eq!(parsed.transaction(), "");
        // Hint-less diagnostics omit the attribute entirely.
        assert!(!report.to_xml().contains(r#"hint="""#), "{}", report.to_xml());
    }

    #[test]
    fn recovery_query_and_report_round_trip() {
        // Default query: bare element, no attrs.
        let req = DataGridRequest::recovery("r1", "operator", crate::RecoveryQuery::report());
        let xml = req.to_xml();
        assert!(xml.contains("<recoveryQuery/>"), "{xml}");
        assert_eq!(parse_request(&xml).unwrap(), req);
        let summary = DataGridRequest::recovery("r2", "operator", crate::RecoveryQuery::summary());
        assert!(summary.to_xml().contains(r#"flows="false""#), "{}", summary.to_xml());
        assert_eq!(parse_request(&summary.to_xml()).unwrap(), summary);

        // Never-journaled server: minimal report, no <replay>, no flows.
        let bare = DataGridResponse::recovery("r3", crate::RecoveryReport::unjournaled(5));
        assert!(!bare.to_xml().contains("<replay"), "{}", bare.to_xml());
        assert_eq!(parse_response(&bare.to_xml()).unwrap(), bare);
        assert_eq!(bare.transaction(), "");

        // Recovered server: replay stats and per-flow outcomes travel.
        let full = DataGridResponse::recovery(
            "r4",
            crate::RecoveryReport {
                time_us: 31,
                journaled: true,
                journal_records: 40,
                journal_bytes: 4096,
                last_checkpoint_seq: Some(25),
                replay: Some(crate::ReplayStats {
                    truncated_bytes: 9,
                    commands_replayed: 6,
                    records_matched: 18,
                    divergences: 0,
                    steps_skipped_restart: 7,
                }),
                flows: vec![
                    crate::FlowRecovery {
                        transaction: "t1".into(),
                        lineage: "t1".into(),
                        state: RunState::Running,
                        steps_completed: 3,
                        steps_total: 9,
                        resumed: true,
                    },
                    crate::FlowRecovery {
                        transaction: "t2".into(),
                        lineage: "t2".into(),
                        state: RunState::Completed,
                        steps_completed: 4,
                        steps_total: 4,
                        resumed: false,
                    },
                ],
            },
        );
        let parsed = parse_response(&full.to_xml()).unwrap();
        assert_eq!(parsed, full);
        // Non-resumed flows omit the marker attribute entirely.
        let xml = full.to_xml();
        assert_eq!(xml.matches(r#"resumed="true""#).count(), 1, "{xml}");
    }

    #[test]
    fn malformed_documents_are_rejected_with_schema_errors() {
        assert!(matches!(parse_request("<notARequest/>"), Err(DglError::Schema { .. })));
        assert!(matches!(parse_request("<dataGridRequest/>"), Err(DglError::Schema { .. })));
        assert!(matches!(
            parse_request(r#"<dataGridRequest id="x"><gridUser name="u"/></dataGridRequest>"#),
            Err(DglError::Schema { .. })
        ));
        // Mixed children are a schema violation (Figure 1: "but not both").
        let mixed = r#"<dataGridRequest id="x"><gridUser name="u"/><flow name="f"><flowLogic><sequential/></flowLogic><children><flow name="g"><flowLogic><sequential/></flowLogic><children/></flow><step name="s"><operation><delete path="/x"/></operation></step></children></flow></dataGridRequest>"#;
        assert!(matches!(parse_request(mixed), Err(DglError::Schema { .. })));
        // Unknown operation.
        let bad_op = Element::new("frobnicate");
        assert!(DglOperation::from_element(&bad_op).is_err());
        // Bad XML bubbles up as Xml.
        assert!(matches!(parse_request("<a"), Err(DglError::Xml(_))));
    }

    #[test]
    fn time_travel_queries_round_trip() {
        for q in [
            crate::TimeTravelQuery::last(),
            crate::TimeTravelQuery::inspect(41),
            crate::TimeTravelQuery::diff(3, 17),
            crate::TimeTravelQuery::bisect(crate::BisectSpec::Stalled { transaction: "t2".into() }),
            crate::TimeTravelQuery::bisect(crate::BisectSpec::State {
                transaction: "t2".into(),
                state: RunState::Failed,
            }),
            crate::TimeTravelQuery::bisect(crate::BisectSpec::Variable {
                transaction: "t2".into(),
                name: "i".into(),
                value: "3".into(),
            }),
        ] {
            let request = DataGridRequest::time_travel("req", "operator", q);
            let parsed = parse_request(&request.to_xml()).unwrap();
            assert_eq!(parsed, request);
        }
    }

    #[test]
    fn time_travel_reports_round_trip() {
        let disabled = DataGridResponse::time_travel("r0", crate::TimeTravelReport::disabled(7));
        assert_eq!(parse_response(&disabled.to_xml()).unwrap(), disabled);
        let full = DataGridResponse::time_travel(
            "r1",
            crate::TimeTravelReport {
                time_us: 99,
                enabled: true,
                last_ordinal: Some(120),
                inspect: Some(crate::OrdinalSummary {
                    ordinal: Some(41),
                    requested: Some(41),
                    complete: false,
                    commands_applied: 6,
                    transitions_derived: 42,
                    time_us: 5_000_000,
                    flows: vec![crate::FlowRecovery {
                        transaction: "t1".into(),
                        lineage: "t1".into(),
                        state: RunState::Running,
                        steps_completed: 2,
                        steps_total: 5,
                        resumed: false,
                    }],
                }),
                diff: Some(crate::DiffSummary {
                    from: 10,
                    to: 41,
                    provenance_added: 4,
                    time_from_us: 1_000_000,
                    time_to_us: 5_000_000,
                    flows: vec![crate::FlowDelta {
                        transaction: "t1".into(),
                        from_state: None,
                        to_state: Some(RunState::Running),
                        steps_from: 0,
                        steps_to: 2,
                        steps_total: 5,
                    }],
                }),
                bisect: Some(crate::BisectSummary {
                    first_true: Some(33),
                    probes: 8,
                    last_ordinal: 120,
                }),
                error: Some("partial".into()),
            },
        );
        assert_eq!(parse_response(&full.to_xml()).unwrap(), full);
    }

    #[test]
    fn profile_queries_round_trip() {
        // Plain snapshot: no flags on the wire.
        let plain = DataGridRequest::profile("r1", "operator", crate::ProfileQuery::new());
        let xml = plain.to_xml();
        assert!(xml.contains("<profileQuery/>"), "{xml}");
        assert_eq!(parse_request(&xml).unwrap(), plain);

        let full = DataGridRequest::profile(
            "r2",
            "operator",
            crate::ProfileQuery::new().with_folded(true).with_reset(true),
        );
        assert_eq!(parse_request(&full.to_xml()).unwrap(), full);
    }

    #[test]
    fn profile_reports_round_trip() {
        let empty = DataGridResponse::profile("r0", crate::ProfileReport::empty(7));
        assert!(!empty.to_xml().contains("<folded>"), "{}", empty.to_xml());
        assert_eq!(parse_response(&empty.to_xml()).unwrap(), empty);

        let folded_text = "step-execute 1200\nstep-execute;journal-append 400\n";
        let full = DataGridResponse::profile(
            "r1",
            crate::ProfileReport {
                time_us: 99,
                phases: vec![
                    crate::ProfilePhase {
                        depth: 0,
                        phase: "step-execute".into(),
                        calls: 12,
                        sim_us: 4000,
                        wall_ns: 1600,
                        allocs: 88,
                    },
                    crate::ProfilePhase {
                        depth: 1,
                        phase: "journal-append".into(),
                        calls: 12,
                        sim_us: 0,
                        wall_ns: 400,
                        allocs: 3,
                    },
                ],
                folded: Some(folded_text.into()),
                contention: Some(crate::ServerContention {
                    enqueued: 9,
                    served: 8,
                    queue_depth_max: 3,
                    hists: vec![crate::LockHistogram {
                        name: "lock-hold".into(),
                        count: 8,
                        sum_ns: 9000,
                        min_ns: 100,
                        max_ns: 4000,
                    }],
                }),
            },
        );
        let parsed = parse_response(&full.to_xml()).unwrap();
        assert_eq!(parsed, full);
        let ResponseBody::Profile(r) = parsed.body else { panic!("expected profile") };
        assert_eq!(r.folded.as_deref(), Some(folded_text), "folded text travels byte-exactly");
        // Profile responses carry no transaction.
        assert_eq!(full.transaction(), "");
    }

    #[test]
    fn why_queries_round_trip() {
        let plain = DataGridRequest::why("r1", "operator", crate::WhyQuery::new());
        let xml = plain.to_xml();
        assert!(xml.contains("<whyQuery topK=\"5\"/>"), "{xml}");
        assert_eq!(parse_request(&xml).unwrap(), plain);

        let full = DataGridRequest::why(
            "r2",
            "operator",
            crate::WhyQuery::new().with_flow("t3").with_top_k(0).with_paths(false).with_alerts(false),
        );
        assert_eq!(parse_request(&full.to_xml()).unwrap(), full);
    }

    #[test]
    fn why_reports_round_trip() {
        let empty = DataGridResponse::why("r0", crate::WhyReport::empty(7));
        assert_eq!(parse_response(&empty.to_xml()).unwrap(), empty);

        let full = DataGridResponse::why(
            "r1",
            crate::WhyReport {
                time_us: 640,
                flows_analyzed: 2,
                attributed_us: 300,
                paths: vec![crate::WhyPath {
                    txn: "t1".into(),
                    flow: "pipeline".into(),
                    start_us: 100,
                    end_us: 400,
                    caused_by: Some("on-ingest".into()),
                    segments: vec![
                        crate::WhySegment {
                            from_us: 100,
                            until_us: 250,
                            state: crate::WaitState::TransferOnLink,
                            resource: "cern-disk→fnal-disk".into(),
                            node: "/0".into(),
                        },
                        crate::WhySegment {
                            from_us: 250,
                            until_us: 400,
                            state: crate::WaitState::Executing,
                            resource: "fnal-hpc".into(),
                            node: "/1".into(),
                        },
                    ],
                }],
                bottlenecks: vec![crate::WhyBottleneck {
                    state: crate::WaitState::TransferOnLink,
                    resource: "cern-disk→fnal-disk".into(),
                    total_us: 150,
                    share_ppm: 500_000,
                }],
                alerts: vec![crate::WhyAlert {
                    txn: "t1".into(),
                    class: "flow".into(),
                    flow: "pipeline".into(),
                    started_us: 100,
                    deadline_us: 350,
                    state: crate::AlertState::Resolved,
                    burn_ppm: 1_200_000,
                    fired_at_us: Some(350),
                    resolved_at_us: Some(400),
                    breached: true,
                }],
            },
        );
        let parsed = parse_response(&full.to_xml()).unwrap();
        assert_eq!(parsed, full);
        // Why responses carry no transaction.
        assert_eq!(full.transaction(), "");
    }

    #[test]
    fn flow_xml_matches_figure_1_structure() {
        // The serialized flow has exactly the three Figure-1 sections, in
        // order: variables?, flowLogic, children.
        let el = sample_flow().to_element();
        let names: Vec<_> = el.child_elements().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["variables", "flowLogic", "children"]);
        let logic = el.child("flowLogic").unwrap();
        let logic_parts: Vec<_> = logic.child_elements().map(|c| c.name.as_str()).collect();
        assert_eq!(logic_parts, ["forEach", "userDefinedRule"], "Figure 3: control choice + rules");
    }
}
