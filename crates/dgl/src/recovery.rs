//! The recovery operator surface of the protocol: a journal/recovery
//! query and its report.
//!
//! A DfMS that journals its inputs (see the `dgf-journal` crate) can be
//! killed and rebuilt by replay. [`RecoveryQuery`] asks a server where
//! its journal stands — position, last checkpoint — and, when the
//! server was booted by recovery, how the replay went, per flow. Like
//! the rest of the crate these are plain data; the XML codec lives in
//! `xml_codec`.

use crate::status::RunState;
use std::fmt;

/// A `<recoveryQuery>` request body.
///
/// ```
/// use dgf_dgl::RecoveryQuery;
///
/// let q = RecoveryQuery::report();
/// assert!(q.flows);
/// assert!(!RecoveryQuery::summary().flows);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryQuery {
    /// Include per-flow recovery outcomes in the report.
    pub flows: bool,
}

impl RecoveryQuery {
    /// The full report, including per-flow outcomes.
    pub fn report() -> Self {
        RecoveryQuery { flows: true }
    }

    /// Journal position and replay totals only.
    pub fn summary() -> Self {
        RecoveryQuery { flows: false }
    }
}

impl Default for RecoveryQuery {
    fn default() -> Self {
        RecoveryQuery::report()
    }
}

/// How one flow came out of recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRecovery {
    /// The flow's transaction id.
    pub transaction: String,
    /// Its lineage (stable across restarts of the logical process).
    pub lineage: String,
    /// State after recovery. `Running`/`Paused` flows picked up where
    /// the journal left them; terminal states were simply re-derived.
    pub state: RunState,
    /// Leaf steps completed so far.
    pub steps_completed: u64,
    /// Total leaf steps.
    pub steps_total: u64,
    /// True when the flow was live (non-terminal) at the crash and the
    /// recovered engine will resume it.
    pub resumed: bool,
}

/// Replay statistics — present exactly when the answering server was
/// booted by `recover()` rather than started fresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayStats {
    /// Torn-tail bytes truncated when the journal was opened.
    pub truncated_bytes: u64,
    /// Journaled commands re-applied.
    pub commands_replayed: u64,
    /// Provenance records re-derived by replay that matched the
    /// journal's transition log byte for byte.
    pub records_matched: u64,
    /// Re-derived records that did *not* match — zero on a healthy
    /// recovery; anything else means the engine or its configuration
    /// drifted from what the journal assumes.
    pub divergences: u64,
    /// Completed steps the replay fast-forwarded from the journal
    /// instead of treating as new work (`steps_skipped_restart`).
    pub steps_skipped_restart: u64,
}

/// A `<recoveryReport>` response body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Simulation time (µs) at which the report was assembled.
    pub time_us: u64,
    /// True when the server has a journal attached at all.
    pub journaled: bool,
    /// Records currently in the journal file (after compaction).
    pub journal_records: u64,
    /// Journal position: current file size in bytes.
    pub journal_bytes: u64,
    /// Sequence number of the newest checkpoint, if one was written.
    pub last_checkpoint_seq: Option<u64>,
    /// Replay statistics when this server was booted by recovery.
    pub replay: Option<ReplayStats>,
    /// Per-flow outcomes (empty for [`RecoveryQuery::summary`]).
    pub flows: Vec<FlowRecovery>,
}

impl RecoveryReport {
    /// A report for a server with no journal attached.
    pub fn unjournaled(time_us: u64) -> Self {
        RecoveryReport {
            time_us,
            journaled: false,
            journal_records: 0,
            journal_bytes: 0,
            last_checkpoint_seq: None,
            replay: None,
            flows: Vec::new(),
        }
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.journaled {
            return write!(f, "recovery @{}us unjournaled", self.time_us);
        }
        write!(
            f,
            "recovery @{}us journal={}rec/{}B",
            self.time_us, self.journal_records, self.journal_bytes
        )?;
        if let Some(ck) = self.last_checkpoint_seq {
            write!(f, " ckpt=#{ck}")?;
        }
        if let Some(r) = &self.replay {
            write!(
                f,
                " replayed={}cmd matched={} skipped={} divergences={} torn={}B",
                r.commands_replayed,
                r.records_matched,
                r.steps_skipped_restart,
                r.divergences,
                r.truncated_bytes
            )?;
        }
        if !self.flows.is_empty() {
            write!(f, " flows={}", self.flows.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unjournaled_display_is_compact() {
        let r = RecoveryReport::unjournaled(42);
        assert_eq!(r.to_string(), "recovery @42us unjournaled");
    }

    #[test]
    fn recovered_display_names_every_total() {
        let r = RecoveryReport {
            time_us: 7,
            journaled: true,
            journal_records: 12,
            journal_bytes: 900,
            last_checkpoint_seq: Some(9),
            replay: Some(ReplayStats {
                truncated_bytes: 3,
                commands_replayed: 5,
                records_matched: 11,
                divergences: 0,
                steps_skipped_restart: 4,
            }),
            flows: vec![FlowRecovery {
                transaction: "t1".into(),
                lineage: "t1".into(),
                state: RunState::Running,
                steps_completed: 2,
                steps_total: 5,
                resumed: true,
            }],
        };
        let s = r.to_string();
        assert!(s.contains("journal=12rec/900B"));
        assert!(s.contains("ckpt=#9"));
        assert!(s.contains("replayed=5cmd"));
        assert!(s.contains("skipped=4"));
        assert!(s.contains("torn=3B"));
        assert!(s.contains("flows=1"));
    }
}
