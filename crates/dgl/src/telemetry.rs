//! The telemetry operator surface of the protocol: a grid-global
//! scrape/tail query and its report.
//!
//! Where [`crate::FlowStatusQuery`] asks about *one* flow, a
//! [`TelemetryQuery`] asks about the *grid*: a Prometheus-style text
//! scrape of every current metric and time-series rollup, and/or a
//! cursor-based page of the flight recorder so a client can tail events
//! across calls without gaps or duplicates. Like the rest of the crate,
//! these are plain data — the engine interprets them; the XML codec
//! lives in `xml_codec`.

use std::fmt;

/// A `<telemetryQuery>` request body: what the client wants scraped
/// and/or tailed.
///
/// ```
/// use dgf_dgl::TelemetryQuery;
///
/// let q = TelemetryQuery::scrape();
/// assert!(q.scrape && q.tail_from.is_none());
/// let t = TelemetryQuery::tail(120).with_limit(50);
/// assert_eq!((t.tail_from, t.tail_limit), (Some(120), Some(50)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryQuery {
    /// Include the Prometheus-style text scrape in the report.
    pub scrape: bool,
    /// Tail the flight recorder from this cursor (a sequence number;
    /// `0` reads from the beginning). `None` skips the tail entirely.
    pub tail_from: Option<u64>,
    /// Cap on events returned by the tail; the server applies its own
    /// default when unset.
    pub tail_limit: Option<usize>,
}

impl TelemetryQuery {
    /// Ask for the text scrape only.
    pub fn scrape() -> Self {
        TelemetryQuery { scrape: true, tail_from: None, tail_limit: None }
    }

    /// Ask for an event-tail page starting at `cursor`.
    pub fn tail(cursor: u64) -> Self {
        TelemetryQuery { scrape: false, tail_from: Some(cursor), tail_limit: None }
    }

    /// Also include the scrape (combinable with [`TelemetryQuery::tail`]).
    pub fn with_scrape(mut self) -> Self {
        self.scrape = true;
        self
    }

    /// Cap the tail page size.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.tail_limit = Some(limit);
        self
    }
}

/// A `<telemetryReport>` response body.
///
/// `next_cursor`/`dropped` are present exactly when the query asked for
/// a tail; resuming from `next_cursor` never re-delivers an event, and
/// any history the bounded recorder evicted before the reader caught up
/// is counted in `dropped` rather than silently skipped.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetryReport {
    /// Simulation time (µs) at which the report was assembled.
    pub time_us: u64,
    /// The Prometheus-style text scrape, when requested.
    pub scrape: Option<String>,
    /// The tail page, oldest first, when a tail was requested.
    pub events: Vec<crate::ReportEvent>,
    /// Cursor to resume the tail from (tail queries only).
    pub next_cursor: Option<u64>,
    /// Events lost to ring eviction in `[cursor, oldest retained)`
    /// (tail queries only).
    pub dropped: Option<u64>,
}

impl fmt::Display for TelemetryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "telemetry @{}us", self.time_us)?;
        if let Some(s) = &self.scrape {
            write!(f, " scrape={}B", s.len())?;
        }
        if let Some(next) = self.next_cursor {
            write!(f, " events={} next={} dropped={}", self.events.len(), next, self.dropped.unwrap_or(0))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let q = TelemetryQuery::tail(7).with_scrape().with_limit(3);
        assert!(q.scrape);
        assert_eq!(q.tail_from, Some(7));
        assert_eq!(q.tail_limit, Some(3));
    }

    #[test]
    fn report_display_is_compact() {
        let r = TelemetryReport {
            time_us: 99,
            scrape: Some("x\n".into()),
            events: vec![],
            next_cursor: Some(4),
            dropped: Some(1),
        };
        assert_eq!(r.to_string(), "telemetry @99us scrape=2B events=0 next=4 dropped=1");
    }
}
