//! [`Step`]: the concrete actions a gridflow performs.

use crate::expr::Expr;
use crate::flow::{UserDefinedRule, VarDecl};
use std::fmt;

/// What to do when a step's operation fails.
///
/// "Fault handling information for the processes could also be provided
/// in the execution logic" (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorPolicy {
    /// Fail the step (and, under sequential logic, the enclosing flow).
    #[default]
    Fail,
    /// Record the failure but keep going.
    Ignore,
    /// Retry up to N additional times (possibly on a different resource —
    /// the engine re-plans each attempt), then fail.
    Retry(u32),
}

/// The atomic operation a [`Step`] executes.
///
/// Appendix A: "DGL supports a number of DataGrid related operations for
/// SDSC's Storage Resource Broker (SRB) or execution of business logic
/// (code) by the DfMS server." Every string field is a template —
/// `${var}` references resolve against the enclosing flow scopes at
/// execution time, which is how a for-each flow applies one step to many
/// files.
#[derive(Debug, Clone, PartialEq)]
pub enum DglOperation {
    /// Create a collection.
    CreateCollection { path: String },
    /// Ingest an external file onto a logical resource.
    Ingest { path: String, size: String, resource: String },
    /// Add a replica (src = explicit source resource, or best replica).
    Replicate { path: String, src: Option<String>, dst: String },
    /// Move between resources.
    Migrate { path: String, from: String, to: String },
    /// Drop one replica.
    Trim { path: String, resource: String },
    /// Remove the object everywhere.
    Delete { path: String },
    /// Rename the object's logical path (catalog-only; replicas stay put).
    Rename { path: String, to: String },
    /// MD5 a replica; `register` stores the digest, otherwise verify.
    Checksum { path: String, resource: Option<String>, register: bool },
    /// Attach a metadata triple.
    SetMetadata { path: String, attribute: String, value: String },
    /// Grant a permission level ("read" | "write" | "own").
    SetPermission { path: String, grantee: String, level: String },
    /// Run a metadata query under `collection` for objects where
    /// `attribute == value`, binding the resulting path list to variable
    /// `into` in the enclosing scope.
    Query { collection: String, attribute: String, value: String, into: String },
    /// Execute business logic (a binary) on a compute resource chosen by
    /// the scheduler. `nominal_secs` is its reference-machine duration;
    /// `inputs` are logical paths staged to the execution site; each
    /// output is created at the site and registered at the given logical
    /// path with the given size.
    Execute {
        /// Name of the business-logic code (for provenance and the
        /// virtual-data catalog).
        code: String,
        /// Nominal duration expression, in seconds on the reference CPU.
        nominal_secs: String,
        /// Abstract resource requirement the scheduler matchmakes on
        /// (e.g. "compute", "compute:16" for ≥16 slots). `None` = any.
        resource_type: Option<String>,
        /// Logical input paths.
        inputs: Vec<String>,
        /// (logical path, size-in-bytes template) outputs.
        outputs: Vec<(String, String)>,
    },
    /// Evaluate an expression and assign it to a variable (loop counters,
    /// accumulators).
    Assign { variable: String, expr: Expr },
    /// Emit a notification message (the §2.2 trigger use-case "sending
    /// notifications when specific types of files are ingested").
    Notify { message: String },
}

impl DglOperation {
    /// Short verb for provenance records and logs.
    pub fn verb(&self) -> &'static str {
        match self {
            DglOperation::CreateCollection { .. } => "create-collection",
            DglOperation::Ingest { .. } => "ingest",
            DglOperation::Replicate { .. } => "replicate",
            DglOperation::Migrate { .. } => "migrate",
            DglOperation::Trim { .. } => "trim",
            DglOperation::Delete { .. } => "delete",
            DglOperation::Rename { .. } => "rename",
            DglOperation::Checksum { .. } => "checksum",
            DglOperation::SetMetadata { .. } => "set-metadata",
            DglOperation::SetPermission { .. } => "set-permission",
            DglOperation::Query { .. } => "query",
            DglOperation::Execute { .. } => "execute",
            DglOperation::Assign { .. } => "assign",
            DglOperation::Notify { .. } => "notify",
        }
    }

    /// True for operations that only touch engine state (no DGMS call).
    pub fn is_local(&self) -> bool {
        matches!(self, DglOperation::Assign { .. } | DglOperation::Notify { .. })
    }
}

impl fmt::Display for DglOperation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.verb())
    }
}

/// A concrete action in a gridflow: "a Step can declare variables and
/// userDefinedRules just like a Flow, but contains a single element
/// called an Operation" (Appendix A).
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Step name, unique within its parent flow.
    pub name: String,
    /// Step-local variable declarations.
    pub variables: Vec<VarDecl>,
    /// beforeEntry / afterExit / custom ECA rules.
    pub rules: Vec<UserDefinedRule>,
    /// The operation.
    pub operation: DglOperation,
    /// Fault handling.
    pub on_error: ErrorPolicy,
}

impl Step {
    /// A step with no extra variables or rules and fail-fast errors.
    pub fn new(name: impl Into<String>, operation: DglOperation) -> Self {
        Step {
            name: name.into(),
            variables: Vec::new(),
            rules: Vec::new(),
            operation,
            on_error: ErrorPolicy::Fail,
        }
    }

    /// Builder-style error policy.
    #[must_use]
    pub fn with_error_policy(mut self, policy: ErrorPolicy) -> Self {
        self.on_error = policy;
        self
    }

    /// Builder-style rule attachment.
    #[must_use]
    pub fn with_rule(mut self, rule: UserDefinedRule) -> Self {
        self.rules.push(rule);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_are_stable_identifiers() {
        let op = DglOperation::Checksum { path: "/x".into(), resource: None, register: false };
        assert_eq!(op.verb(), "checksum");
        assert_eq!(op.to_string(), "checksum");
        assert!(!op.is_local());
        assert!(DglOperation::Notify { message: "hi".into() }.is_local());
        assert!(DglOperation::Assign { variable: "i".into(), expr: Expr::always() }.is_local());
    }

    #[test]
    fn step_builders() {
        let s = Step::new("verify", DglOperation::Delete { path: "/x".into() })
            .with_error_policy(ErrorPolicy::Retry(3));
        assert_eq!(s.name, "verify");
        assert_eq!(s.on_error, ErrorPolicy::Retry(3));
        assert_eq!(ErrorPolicy::default(), ErrorPolicy::Fail);
    }
}
