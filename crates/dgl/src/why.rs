//! The attribution operator surface of the protocol (`dgf-why`): a
//! query over the engine's critical-path / wait-state analysis and SLA
//! alert state, and its report.
//!
//! A datagridflow's makespan is dominated by *waiting* — for cluster
//! slots, schedule windows, WAN transfers — and the raw span tree shows
//! what happened but not *why the flow took as long as it did*.
//! [`WhyQuery`] fetches the engine's answer: each completed flow's
//! critical path partitioned into wait-state segments, an aggregated
//! bottleneck report blaming resources/links, and the lifecycle of
//! every SLA deadline alert. Like the rest of the crate these are plain
//! data; the XML codec lives in `xml_codec`.
//!
//! Determinism contract: every field is a function of the simulated
//! schedule (times in sim-µs, shares and burn rates in integer
//! parts-per-million — never floats), so a report is byte-identical
//! across reruns of a seeded scenario.

use std::fmt;

/// The closed wait-state taxonomy: every sim-microsecond of a completed
/// flow's critical path is classified as exactly one of these.
///
/// `docs/OBSERVABILITY.md` § Attribution & alerting is the normative
/// description of when each state is charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WaitState {
    /// A step was running on a bound compute resource.
    Executing,
    /// A step was eligible but no cluster slot was free.
    QueuedForCluster,
    /// Bytes were moving on a WAN link or between storage tiers.
    TransferOnLink,
    /// A node was parked until its schedule window reopened.
    WindowClosed,
    /// Time between a causal trigger firing and the spawned flow's
    /// first dispatched work (structurally near-zero in the current
    /// engine, where triggers fire synchronously).
    TriggerWait,
    /// Engine admission, lint gating, and control-flow bookkeeping —
    /// the residual class that keeps the taxonomy closed.
    LintAdmission,
}

impl WaitState {
    /// The stable kebab-case name used on the wire and in reports.
    pub fn name(&self) -> &'static str {
        match self {
            WaitState::Executing => "executing",
            WaitState::QueuedForCluster => "queued-for-cluster",
            WaitState::TransferOnLink => "transfer-on-link",
            WaitState::WindowClosed => "window-closed",
            WaitState::TriggerWait => "trigger-wait",
            WaitState::LintAdmission => "lint/admission",
        }
    }

    /// Parse a wire name back into the taxonomy.
    pub fn parse(s: &str) -> Option<WaitState> {
        Some(match s {
            "executing" => WaitState::Executing,
            "queued-for-cluster" => WaitState::QueuedForCluster,
            "transfer-on-link" => WaitState::TransferOnLink,
            "window-closed" => WaitState::WindowClosed,
            "trigger-wait" => WaitState::TriggerWait,
            "lint/admission" => WaitState::LintAdmission,
            _ => return None,
        })
    }

    /// Every state, in wire order (used by proptests and docs).
    pub const ALL: [WaitState; 6] = [
        WaitState::Executing,
        WaitState::QueuedForCluster,
        WaitState::TransferOnLink,
        WaitState::WindowClosed,
        WaitState::TriggerWait,
        WaitState::LintAdmission,
    ];
}

impl fmt::Display for WaitState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The lifecycle of an SLA deadline alert: `pending → firing →
/// resolved`, each transition recorded in the flight recorder and the
/// journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertState {
    /// The objective is registered and the deadline has not passed.
    Pending,
    /// The deadline passed while the flow was still running.
    Firing,
    /// The flow reached a terminal state (see `breached` for whether it
    /// beat its deadline).
    Resolved,
}

impl AlertState {
    /// The stable wire name.
    pub fn name(&self) -> &'static str {
        match self {
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<AlertState> {
        Some(match s {
            "pending" => AlertState::Pending,
            "firing" => AlertState::Firing,
            "resolved" => AlertState::Resolved,
            _ => return None,
        })
    }
}

impl fmt::Display for AlertState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A `<whyQuery>` request body.
///
/// ```
/// use dgf_dgl::WhyQuery;
///
/// let q = WhyQuery::new().with_flow("t1").with_top_k(3);
/// assert_eq!(q.flow.as_deref(), Some("t1"));
/// assert_eq!(q.top_k, 3);
/// assert!(q.paths && q.alerts);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WhyQuery {
    /// Restrict the per-flow critical paths to one transaction id.
    pub flow: Option<String>,
    /// How many bottleneck rows to return (0 = all).
    pub top_k: u32,
    /// Include the per-flow critical paths.
    pub paths: bool,
    /// Include the SLA alert table.
    pub alerts: bool,
}

impl Default for WhyQuery {
    fn default() -> Self {
        WhyQuery { flow: None, top_k: 5, paths: true, alerts: true }
    }
}

impl WhyQuery {
    /// The default query: every flow, top-5 bottlenecks, paths and
    /// alerts included.
    pub fn new() -> Self {
        WhyQuery::default()
    }

    /// Restrict critical paths to one transaction.
    pub fn with_flow(mut self, txn: impl Into<String>) -> Self {
        self.flow = Some(txn.into());
        self
    }

    /// Cap the bottleneck table at `k` rows (0 = unlimited).
    pub fn with_top_k(mut self, k: u32) -> Self {
        self.top_k = k;
        self
    }

    /// Include or omit the per-flow critical paths.
    pub fn with_paths(mut self, paths: bool) -> Self {
        self.paths = paths;
        self
    }

    /// Include or omit the SLA alert table.
    pub fn with_alerts(mut self, alerts: bool) -> Self {
        self.alerts = alerts;
        self
    }
}

/// One segment of a flow's critical path: a half-open sim-time interval
/// `[from_us, until_us)` classified into the wait-state taxonomy and
/// blamed on a resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WhySegment {
    /// Segment start, sim-µs.
    pub from_us: u64,
    /// Segment end, sim-µs (strictly greater than `from_us`).
    pub until_us: u64,
    /// The wait-state classification.
    pub state: WaitState,
    /// The blamed resource: a compute name for `executing`, `src→dst`
    /// for `transfer-on-link`, a pool label for `queued-for-cluster`,
    /// `window` / `engine` / `trigger:<name>` for the rest.
    pub resource: String,
    /// The flow-tree node the segment is anchored to (`/` for
    /// flow-level time).
    pub node: String,
}

impl WhySegment {
    /// Segment length in sim-µs.
    pub fn duration_us(&self) -> u64 {
        self.until_us.saturating_sub(self.from_us)
    }
}

/// One completed flow's critical path: a gap-free partition of
/// `[start_us, end_us)` into [`WhySegment`]s.
///
/// Invariant (tested): the segment durations sum exactly to the flow
/// makespan, `end_us - start_us`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WhyPath {
    /// Transaction id.
    pub txn: String,
    /// Root flow name.
    pub flow: String,
    /// Flow start (root span open), sim-µs.
    pub start_us: u64,
    /// Flow end (root span close), sim-µs.
    pub end_us: u64,
    /// The trigger that spawned this flow, when it was trigger-spawned.
    pub caused_by: Option<String>,
    /// The critical-path segments, in time order.
    pub segments: Vec<WhySegment>,
}

impl WhyPath {
    /// The flow makespan in sim-µs.
    pub fn makespan_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Sum of all segment durations — equal to [`WhyPath::makespan_us`]
    /// by construction.
    pub fn segments_sum_us(&self) -> u64 {
        self.segments.iter().map(WhySegment::duration_us).sum()
    }
}

/// One row of the aggregated bottleneck report: total critical-path
/// sim-time charged to a `(state, resource)` pair across every analyzed
/// flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WhyBottleneck {
    /// The wait-state classification.
    pub state: WaitState,
    /// The blamed resource (same convention as [`WhySegment`]).
    pub resource: String,
    /// Total critical-path sim-µs charged to this pair.
    pub total_us: u64,
    /// This pair's share of all attributed critical-path time, in
    /// integer parts-per-million.
    pub share_ppm: u64,
}

/// One SLA deadline alert with its full lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WhyAlert {
    /// Transaction id of the governed flow.
    pub txn: String,
    /// The objective class (`dgf.class` value, or `flow` for a per-flow
    /// `dgf.deadline`).
    pub class: String,
    /// Root flow name.
    pub flow: String,
    /// Flow submission time, sim-µs.
    pub started_us: u64,
    /// The deadline, sim-µs (`started_us` + budget).
    pub deadline_us: u64,
    /// Current lifecycle state.
    pub state: AlertState,
    /// Burn rate in parts-per-million of budget consumed: 1_000_000
    /// means the budget is exactly spent. For resolved alerts this is
    /// frozen at resolution time.
    pub burn_ppm: u64,
    /// When the alert transitioned to firing, if it ever did.
    pub fired_at_us: Option<u64>,
    /// When the alert resolved (the flow reached a terminal state).
    pub resolved_at_us: Option<u64>,
    /// True when the flow finished after its deadline.
    pub breached: bool,
}

/// A `<whyReport>` response body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WhyReport {
    /// Simulation time (µs) when the report was taken.
    pub time_us: u64,
    /// Completed flows that have been analyzed (before any `flow`
    /// filter).
    pub flows_analyzed: u64,
    /// Total critical-path sim-µs attributed across every analyzed flow
    /// (the denominator of every bottleneck share).
    pub attributed_us: u64,
    /// Per-flow critical paths (empty when the query said `paths =
    /// false`).
    pub paths: Vec<WhyPath>,
    /// The aggregated bottleneck table, largest contributor first.
    pub bottlenecks: Vec<WhyBottleneck>,
    /// Every SLA alert, in registration order (empty when the query
    /// said `alerts = false`).
    pub alerts: Vec<WhyAlert>,
}

impl WhyReport {
    /// A report with nothing analyzed yet.
    pub fn empty(time_us: u64) -> Self {
        WhyReport {
            time_us,
            flows_analyzed: 0,
            attributed_us: 0,
            paths: Vec::new(),
            bottlenecks: Vec::new(),
            alerts: Vec::new(),
        }
    }

    /// Alerts currently in the `firing` state.
    pub fn firing(&self) -> impl Iterator<Item = &WhyAlert> {
        self.alerts.iter().filter(|a| a.state == AlertState::Firing)
    }
}

impl fmt::Display for WhyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "why @{}us {} flows, {}us attributed, {} bottlenecks",
            self.time_us,
            self.flows_analyzed,
            self.attributed_us,
            self.bottlenecks.len()
        )?;
        let firing = self.firing().count();
        if !self.alerts.is_empty() {
            write!(f, ", {} alerts ({} firing)", self.alerts.len(), firing)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_state_names_round_trip() {
        for s in WaitState::ALL {
            assert_eq!(WaitState::parse(s.name()), Some(s), "{s}");
        }
        assert_eq!(WaitState::parse("coffee-break"), None);
    }

    #[test]
    fn alert_state_names_round_trip() {
        for s in [AlertState::Pending, AlertState::Firing, AlertState::Resolved] {
            assert_eq!(AlertState::parse(s.name()), Some(s), "{s}");
        }
        assert_eq!(AlertState::parse("snoozed"), None);
    }

    #[test]
    fn query_builder_sets_fields() {
        let q = WhyQuery::new();
        assert!(q.flow.is_none() && q.top_k == 5 && q.paths && q.alerts);
        let q = q.with_flow("t9").with_top_k(0).with_paths(false).with_alerts(false);
        assert_eq!(q.flow.as_deref(), Some("t9"));
        assert!(q.top_k == 0 && !q.paths && !q.alerts);
    }

    #[test]
    fn path_sums_segments() {
        let seg = |from_us, until_us, state| WhySegment {
            from_us,
            until_us,
            state,
            resource: "r".into(),
            node: "/0".into(),
        };
        let p = WhyPath {
            txn: "t1".into(),
            flow: "f".into(),
            start_us: 10,
            end_us: 40,
            caused_by: None,
            segments: vec![
                seg(10, 25, WaitState::QueuedForCluster),
                seg(25, 40, WaitState::Executing),
            ],
        };
        assert_eq!(p.makespan_us(), 30);
        assert_eq!(p.segments_sum_us(), 30);
    }

    #[test]
    fn report_display_is_compact() {
        let mut r = WhyReport::empty(7);
        assert_eq!(r.to_string(), "why @7us 0 flows, 0us attributed, 0 bottlenecks");
        r.alerts.push(WhyAlert {
            txn: "t1".into(),
            class: "flow".into(),
            flow: "f".into(),
            started_us: 0,
            deadline_us: 100,
            state: AlertState::Firing,
            burn_ppm: 1_500_000,
            fired_at_us: Some(100),
            resolved_at_us: None,
            breached: false,
        });
        assert_eq!(r.firing().count(), 1);
        assert!(r.to_string().ends_with("1 alerts (1 firing)"), "{r}");
    }
}
