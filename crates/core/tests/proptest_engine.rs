//! Property tests over the engine: arbitrary generated flows terminate,
//! never leak slots or link shares, and report consistent progress.

use dgf_dfms::Dfms;
use dgf_dgl::{Children, ControlPattern, DglOperation, Expr, Flow, FlowLogic, RunState, Step};
use dgf_dgms::{DataGrid, Principal, UserRegistry};
use dgf_scheduler::{PlannerKind, Scheduler};
use dgf_simgrid::{GridBuilder, GridPreset};
use proptest::prelude::*;

fn dfms() -> Dfms {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
    users.make_admin("u").unwrap();
    Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 1))
}

/// Step operations drawn so that some succeed and some fail (deletes of
/// missing objects), exercising failure propagation.
fn op_strategy() -> impl Strategy<Value = DglOperation> {
    prop_oneof![
        4 => "[a-z]{1,8}".prop_map(|m| DglOperation::Notify { message: m }),
        3 => (0u8..8).prop_map(|i| DglOperation::CreateCollection { path: format!("/c{i}") }),
        2 => (0u8..8, 1u64..1_000).prop_map(|(i, size)| DglOperation::Ingest {
            path: format!("/o{i}"),
            size: size.to_string(),
            resource: "site0-disk".into(),
        }),
        1 => (0u8..8).prop_map(|i| DglOperation::Delete { path: format!("/o{i}") }),
        2 => ("[a-z]{1,4}", -10i64..10).prop_map(|(v, n)| DglOperation::Assign {
            variable: v,
            expr: Expr::parse(&n.to_string()).unwrap(),
        }),
        1 => (0u8..8, 1u64..50).prop_map(|(i, secs)| DglOperation::Execute {
            code: format!("job{i}"),
            nominal_secs: secs.to_string(),
            resource_type: None,
            inputs: vec![],
            outputs: vec![],
        }),
    ]
}

#[derive(Debug, Clone)]
enum Shape {
    Steps(Vec<DglOperation>),
    Seq(Vec<Shape>),
    Par(Vec<Shape>),
    ForEachItems { items: Vec<String>, body: Vec<DglOperation>, parallel: bool },
    WhileCounted { iterations: u8, body: Vec<DglOperation> },
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    let steps = proptest::collection::vec(op_strategy(), 0..4).prop_map(Shape::Steps);
    let foreach = (
        proptest::collection::vec("[a-z0-9]{1,6}", 1..4),
        proptest::collection::vec(op_strategy(), 1..3),
        any::<bool>(),
    )
        .prop_map(|(items, body, parallel)| Shape::ForEachItems { items, body, parallel });
    let while_loop = (1u8..4, proptest::collection::vec(op_strategy(), 1..3))
        .prop_map(|(iterations, body)| Shape::WhileCounted { iterations, body });
    let leaf = prop_oneof![3 => steps, 1 => foreach, 1 => while_loop];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Shape::Seq),
            proptest::collection::vec(inner, 1..4).prop_map(Shape::Par),
        ]
    })
}

fn build(shape: &Shape, counter: &mut u32) -> Flow {
    *counter += 1;
    let name = format!("n{counter}");
    let mk_steps = |ops: &[DglOperation], counter: &mut u32| -> Vec<Step> {
        ops.iter()
            .map(|op| {
                *counter += 1;
                Step::new(format!("s{counter}"), op.clone())
            })
            .collect()
    };
    match shape {
        Shape::Steps(ops) => Flow {
            name,
            variables: vec![],
            logic: FlowLogic::sequential(),
            children: Children::Steps(mk_steps(ops, counter)),
        },
        Shape::Seq(shapes) => Flow {
            name,
            variables: vec![],
            logic: FlowLogic::sequential(),
            children: Children::Flows(shapes.iter().map(|s| build(s, counter)).collect()),
        },
        Shape::Par(shapes) => Flow {
            name,
            variables: vec![],
            logic: FlowLogic::parallel(),
            children: Children::Flows(shapes.iter().map(|s| build(s, counter)).collect()),
        },
        Shape::ForEachItems { items, body, parallel } => Flow {
            name,
            variables: vec![],
            logic: FlowLogic {
                pattern: ControlPattern::ForEach {
                    var: "item".into(),
                    source: dgf_dgl::IterSource::Items(items.clone()),
                    parallel: *parallel,
                },
                rules: vec![],
            },
            children: Children::Steps(mk_steps(body, counter)),
        },
        Shape::WhileCounted { iterations, body } => {
            *counter += 1;
            let counter_var = format!("i{counter}");
            let mut steps = mk_steps(body, counter);
            *counter += 1;
            steps.push(Step::new(
                format!("incr{counter}"),
                DglOperation::Assign {
                    variable: counter_var.clone(),
                    expr: Expr::parse(&format!("{counter_var} + 1")).unwrap(),
                },
            ));
            Flow {
                name,
                variables: vec![dgf_dgl::VarDecl::new(counter_var.clone(), "0")],
                logic: FlowLogic {
                    pattern: ControlPattern::While(Expr::parse(&format!("{counter_var} < {iterations}")).unwrap()),
                    rules: vec![],
                },
                children: Children::Steps(steps),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever flow we throw at it:
    /// * the engine terminates with the root in a terminal state,
    /// * no compute slots or transfer shares leak,
    /// * progress counters are consistent (completed ≤ total),
    /// * the provenance record count ≥ materialized terminal nodes.
    #[test]
    fn generated_flows_terminate_cleanly(shape in shape_strategy()) {
        let mut counter = 0;
        let flow = build(&shape, &mut counter);
        prop_assume!(flow.validate().is_ok());
        let mut d = dfms();
        let txn = d.submit_flow("u", flow).unwrap();
        d.pump();
        let report = d.status(&txn, None).unwrap();
        prop_assert!(report.state.is_terminal(), "root state {:?}", report.state);
        prop_assert!(report.steps_completed <= report.steps_total);
        // No leaked compute slots.
        let topo = d.grid().topology();
        for c in topo.compute_ids() {
            prop_assert_eq!(topo.compute(c).busy, 0, "leaked slot on {}", topo.compute(c).name);
        }
        // No leaked transfer shares.
        prop_assert_eq!(d.grid().transfer_model().total_active_shares(), 0);
        // Provenance covers the run.
        prop_assert!(!d.provenance().is_empty());
    }

    /// Pausing and resuming at arbitrary points never wedges a flow.
    #[test]
    fn pause_resume_anywhere_is_safe(
        steps in 1usize..12,
        pause_at_ms in 0u64..5_000,
    ) {
        let mut d = dfms();
        let mut b = dgf_dgl::FlowBuilder::sequential("work");
        for i in 0..steps {
            b = b.step(
                format!("s{i}"),
                DglOperation::Ingest { path: format!("/f{i}"), size: "40000000".into(), resource: "site0-disk".into() },
            );
        }
        let txn = d.submit_flow("u", b.build().unwrap()).unwrap();
        d.pump_until(dgf_simgrid::SimTime(pause_at_ms * 1_000));
        let paused = d.pause(&txn).is_ok(); // may already be complete
        d.pump();
        if paused {
            // While paused the run must not advance to terminal...
            let state = d.status(&txn, None).unwrap().state;
            prop_assert!(!state.is_terminal() || state == RunState::Completed,
                "paused run ended as {state}");
            if !state.is_terminal() {
                d.resume(&txn).unwrap();
                d.pump();
            }
        }
        let final_state = d.status(&txn, None).unwrap().state;
        prop_assert_eq!(final_state, RunState::Completed);
        prop_assert_eq!(d.status(&txn, None).unwrap().steps_completed, steps);
    }

    /// Stop + restart always converges: at most two rounds finish all
    /// work, and nothing is executed twice.
    #[test]
    fn stop_restart_converges(steps in 2usize..10, stop_at_ms in 100u64..8_000) {
        let mut d = dfms();
        let mut b = dgf_dgl::FlowBuilder::sequential("work");
        for i in 0..steps {
            b = b.step(
                format!("s{i}"),
                DglOperation::Ingest { path: format!("/f{i}"), size: "40000000".into(), resource: "site0-disk".into() },
            );
        }
        let flow = b.build().unwrap();
        let txn = d.submit_flow("u", flow).unwrap();
        d.pump_until(dgf_simgrid::SimTime(stop_at_ms * 1_000));
        if d.stop(&txn).is_ok() {
            d.pump();
            let txn2 = d.restart(&txn).unwrap();
            d.pump();
            prop_assert_eq!(d.status(&txn2, None).unwrap().state, RunState::Completed);
        } else {
            // Already terminal: must be completed.
            prop_assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
        }
        // Every object exists exactly once — restart did not double-ingest.
        for i in 0..steps {
            let p = dgf_dgms::LogicalPath::parse(&format!("/f{i}")).unwrap();
            prop_assert!(d.grid().exists(&p), "/f{i} missing after recovery");
        }
        let executed = d.metrics().steps_executed + d.metrics().steps_skipped_restart;
        prop_assert!(executed as usize >= steps);
    }
}
