//! Additional engine behaviour: batch queueing on saturated grids, VO
//! enforcement through SLAs, renames via DGL, cost-weight plumbing, and
//! notification/event interplay.

use dgf_dfms::{Dfms, RunOptions};
use dgf_dgl::{DglOperation, FlowBuilder, RunState};
use dgf_dgms::{DataGrid, LogicalPath, Operation, Principal, UserRegistry};
use dgf_scheduler::{InfraDescription, PlannerKind, Scheduler, Sla};
use dgf_simgrid::{Duration, GridBuilder, GridPreset, SimTime};

fn path(s: &str) -> LogicalPath {
    LogicalPath::parse(s).unwrap()
}

#[test]
fn saturated_grids_queue_tasks_instead_of_failing() {
    // One domain, one cluster with 32 slots; 80 parallel 600 s tasks.
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 1 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
    users.make_admin("u").unwrap();
    let mut d = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 1));
    let mut b = FlowBuilder::parallel("burst");
    for i in 0..80 {
        b = b.flow(
            FlowBuilder::sequential(format!("lane{i}"))
                .step(
                    "t",
                    DglOperation::Execute { code: format!("j{i}"), nominal_secs: "600".into(), resource_type: None, inputs: vec![], outputs: vec![] },
                )
                .build()
                .unwrap(),
        );
    }
    let txn = d.submit_flow("u", b.build().unwrap()).unwrap();
    d.pump();
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
    // 80 tasks / 32 slots = 3 waves ≈ 1800 s (+ queue-poll slack).
    let elapsed = d.now().as_secs_f64();
    assert!((1800.0..2100.0).contains(&elapsed), "batch-queued makespan: {elapsed}");
}

#[test]
fn impossible_requirements_fail_fast_rather_than_queue() {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 1 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
    users.make_admin("u").unwrap();
    let mut d = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 1));
    let flow = FlowBuilder::sequential("impossible")
        .step(
            "t",
            DglOperation::Execute {
                code: "huge".into(),
                nominal_secs: "10".into(),
                resource_type: Some("compute:9999".into()), // nothing is that big
                inputs: vec![],
                outputs: vec![],
            },
        )
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump();
    let report = d.status(&txn, None).unwrap();
    assert_eq!(report.state, RunState::Failed, "structural impossibility is not queued forever");
    assert!(d.now() < SimTime::from_secs(60), "failed immediately, not after a queue timeout");
}

#[test]
fn vo_restricted_slas_apply_through_the_engine() {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 1 });
    let compute_id = topology.compute_ids().next().unwrap();
    let mut users = UserRegistry::new();
    let d0 = topology.domain_ids().next().unwrap();
    users.register(Principal::new("insider", d0).with_vo("cms"));
    users.register(Principal::new("outsider", d0).with_vo("atlas"));
    users.make_admin("insider").unwrap();
    users.make_admin("outsider").unwrap();
    let mut infra = InfraDescription::open();
    infra.publish(compute_id, Sla::for_vos(&["cms"]));
    let scheduler = Scheduler::new(PlannerKind::CostBased, 1).with_infra(infra);
    let mut d = Dfms::new(DataGrid::new(topology, users), scheduler);

    let exec_flow = || {
        FlowBuilder::sequential("job")
            .step(
                "t",
                DglOperation::Execute { code: "sim".into(), nominal_secs: "10".into(), resource_type: None, inputs: vec![], outputs: vec![] },
            )
            .build()
            .unwrap()
    };
    // The VO is taken from the submitting request.
    let ok = d.submit(dgf_dgl::DataGridRequest::flow("r1", "insider", exec_flow()).with_vo("cms")).unwrap();
    let denied = d.submit(dgf_dgl::DataGridRequest::flow("r2", "outsider", exec_flow()).with_vo("atlas")).unwrap();
    d.pump();
    assert_eq!(d.status(&ok, None).unwrap().state, RunState::Completed);
    let report = d.status(&denied, None).unwrap();
    assert_eq!(report.state, RunState::Failed, "atlas may not use a cms-only cluster");
}

#[test]
fn rename_via_dgl_keeps_downstream_steps_working() {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
    users.make_admin("u").unwrap();
    let mut d = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 1));
    let flow = FlowBuilder::sequential("publish")
        .step("put", DglOperation::Ingest { path: "/draft.dat".into(), size: "1000".into(), resource: "site0-disk".into() })
        .step("sum", DglOperation::Checksum { path: "/draft.dat".into(), resource: None, register: true })
        .step("publish", DglOperation::Rename { path: "/draft.dat".into(), to: "/published.dat".into() })
        // Later steps address the NEW name — the catalog is consistent
        // mid-flow.
        .step("cp", DglOperation::Replicate { path: "/published.dat".into(), src: None, dst: "site1-disk".into() })
        .step("verify", DglOperation::Checksum { path: "/published.dat".into(), resource: Some("site1-disk".into()), register: false })
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump();
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
    assert!(!d.grid().exists(&path("/draft.dat")));
    let obj = d.grid().stat_object(&path("/published.dat")).unwrap();
    assert_eq!(obj.replicas.len(), 2);
    assert!(obj.checksum.is_some(), "digest survived the rename");
    // The DGL document round-trips with the rename operation in it.
    let events = d.grid().events();
    assert!(events.iter().any(|e| e.kind == dgf_dgms::EventKind::ObjectRenamed));
}

#[test]
fn window_plus_pause_interact_correctly() {
    // A windowed run that is ALSO paused must wait for both: resume
    // during a closed window defers to the next opening.
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 1 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
    users.make_admin("u").unwrap();
    let mut d = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 1));
    let flow = FlowBuilder::sequential("weekend-work")
        .step("a", DglOperation::CreateCollection { path: "/wk".into() })
        .build()
        .unwrap();
    let options = RunOptions { window: Some(dgf_simgrid::ScheduleWindow::weekends()), ..Default::default() };
    let txn = d.submit_flow_with("u", flow, options).unwrap();
    d.pause(&txn).unwrap();
    // Pump into Wednesday: paused AND windowed — nothing runs.
    d.pump_until(SimTime::from_days(2));
    assert!(!d.grid().exists(&path("/wk")));
    d.resume(&txn).unwrap();
    // Still Wednesday: the window gates even after resume.
    d.pump_until(SimTime::from_days(3));
    assert!(!d.grid().exists(&path("/wk")));
    // Saturday: it finally runs.
    d.pump_until(SimTime::from_days(5) + Duration::from_hours(1));
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
}

#[test]
fn engine_metrics_add_up() {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 1 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
    users.make_admin("u").unwrap();
    let mut d = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 1));
    let flow = FlowBuilder::sequential("mix")
        .step("mk", DglOperation::CreateCollection { path: "/m".into() })
        .step("put", DglOperation::Ingest { path: "/m/x".into(), size: "12345".into(), resource: "site0-disk".into() })
        .step("note", DglOperation::Notify { message: "done".into() })
        .build()
        .unwrap();
    d.submit_flow("u", flow).unwrap();
    d.pump();
    let m = d.metrics();
    assert_eq!(m.runs_submitted, 1);
    assert_eq!(m.runs_completed, 1);
    assert_eq!(m.runs_failed, 0);
    assert_eq!(m.steps_executed, 3);
    assert_eq!(m.dgms_ops, 2, "notify is engine-local");
    assert_eq!(m.bytes_moved, 12345);
    assert_eq!(d.notifications().len(), 1);
    // Grid-level audit agrees.
    assert_eq!(d.grid().events().len(), 2);
}

#[test]
fn directly_driven_grid_and_engine_share_one_audit_stream() {
    // Mixing direct DGMS calls (setup scripts) with engine runs keeps one
    // coherent event history — the trigger cursor must not skip or
    // double-count.
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 1 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
    users.make_admin("u").unwrap();
    let mut d = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 1));
    d.triggers_mut().register(dgf_triggers::Trigger::new(
        "count-all",
        "u",
        LogicalPath::root(),
        dgf_triggers::TriggerAction::Notify("saw ${event.path}".into()),
    ));
    // Direct grid mutation (no engine involvement yet).
    d.grid_mut().execute("u", Operation::CreateCollection { path: path("/direct") }, SimTime::ZERO).unwrap();
    // Engine run: its post-op poll also picks up the direct event.
    let flow = FlowBuilder::sequential("f")
        .step("mk", DglOperation::CreateCollection { path: "/via-engine".into() })
        .build()
        .unwrap();
    d.submit_flow("u", flow).unwrap();
    d.pump();
    let messages: Vec<&str> = d.notifications().iter().map(|n| n.message.as_str()).collect();
    assert!(messages.contains(&"saw /direct"));
    assert!(messages.contains(&"saw /via-engine"));
    assert_eq!(messages.len(), 2, "each event fires exactly once: {messages:?}");
}
