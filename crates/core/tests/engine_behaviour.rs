//! End-to-end behaviour of the DfMS engine: every control pattern, the
//! lifecycle protocol, fault policies, triggers, scheduling, virtual
//! data, ILM jobs, and provenance-driven restart.

use dgf_dfms::{Dfms, ProvenanceQuery, RunOptions, StepOutcome};
use dgf_dgl::{
    DglOperation, Expr, FlowBuilder, RuleAction, RunState, Step, UserDefinedRule,
};
use dgf_dgms::{DataGrid, EventKind, LogicalPath, Operation, Principal, UserRegistry};
use dgf_scheduler::{PlannerKind, Scheduler};
use dgf_simgrid::{Duration, GridBuilder, GridPreset, ScheduleWindow, SimTime};
use dgf_triggers::{Trigger, TriggerAction};

fn path(s: &str) -> LogicalPath {
    LogicalPath::parse(s).unwrap()
}

/// Three-site mesh engine with an admin user `u`.
fn dfms() -> Dfms {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 3 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
    users.make_admin("u").unwrap();
    Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 7))
}

fn ingest_op(p: &str, size: u64) -> DglOperation {
    DglOperation::Ingest { path: p.into(), size: size.to_string(), resource: "site0-disk".into() }
}

#[test]
fn sequential_flow_executes_in_order_with_simulated_time() {
    let mut d = dfms();
    let flow = FlowBuilder::sequential("pipeline")
        .step("mk", DglOperation::CreateCollection { path: "/data".into() })
        .step("a", ingest_op("/data/a", 80_000_000)) // ~1 s on disk
        .step("b", ingest_op("/data/b", 160_000_000)) // ~2 s
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump();
    let report = d.status(&txn, None).unwrap();
    assert_eq!(report.state, RunState::Completed);
    assert_eq!(report.steps_completed, 3);
    assert_eq!(report.steps_total, 3);
    // Time advanced by the sum of the operation durations (~3s + metadata).
    assert!(d.now() >= SimTime::from_secs(3), "clock is {}", d.now());
    // Order: /data/a was created strictly before /data/b.
    let a = d.grid().stat_object(&path("/data/a")).unwrap().created;
    let b = d.grid().stat_object(&path("/data/b")).unwrap().created;
    assert!(a < b);
}

#[test]
fn parallel_flow_overlaps_in_time() {
    let mut d = dfms();
    // Two 160 MB ingests to different resources in parallel: wall clock
    // should be ~2 s, not ~4 s.
    let par = FlowBuilder::parallel("fan")
        .flow(
            FlowBuilder::sequential("left")
                .step("a", DglOperation::Ingest { path: "/a".into(), size: "160000000".into(), resource: "site0-disk".into() })
                .build()
                .unwrap(),
        )
        .flow(
            FlowBuilder::sequential("right")
                .step("b", DglOperation::Ingest { path: "/b".into(), size: "160000000".into(), resource: "site1-disk".into() })
                .build()
                .unwrap(),
        )
        .build()
        .unwrap();
    let txn = d.submit_flow("u", par).unwrap();
    d.pump();
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
    let elapsed = d.now().as_secs_f64();
    assert!(elapsed < 3.0, "parallel branches overlapped: {elapsed}s");
    assert!(elapsed > 1.9, "but each still took its ~2s: {elapsed}s");
}

#[test]
fn while_loop_counts_with_scoped_variables() {
    let mut d = dfms();
    let flow = FlowBuilder::while_loop("loop", "i < 3")
        .unwrap()
        .var("i", "0")
        .step("make", DglOperation::CreateCollection { path: "/c${i}".into() })
        .step("incr", DglOperation::Assign { variable: "i".into(), expr: Expr::parse("i + 1").unwrap() })
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump();
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
    for i in 0..3 {
        assert!(d.grid().exists(&path(&format!("/c{i}"))), "/c{i} exists");
    }
    assert!(!d.grid().exists(&path("/c3")));
    // Each iteration materialized 2 steps.
    assert_eq!(d.status(&txn, None).unwrap().steps_total, 6);
}

#[test]
fn foreach_over_collection_binds_the_variable() {
    let mut d = dfms();
    // Seed a collection with three objects.
    let now = SimTime::ZERO;
    d.grid_mut().execute("u", Operation::CreateCollection { path: path("/in") }, now).unwrap();
    for i in 0..3 {
        d.grid_mut()
            .execute("u", Operation::Ingest { path: path(&format!("/in/f{i}")), size: 10, resource: "site0-disk".into() }, now)
            .unwrap();
    }
    let flow = FlowBuilder::for_each_in_collection("sweep", "file", "/in")
        .step("tag", DglOperation::SetMetadata { path: "${file}".into(), attribute: "swept".into(), value: "yes".into() })
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump();
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
    for i in 0..3 {
        let obj = d.grid().stat_object(&path(&format!("/in/f{i}"))).unwrap();
        assert!(obj.metadata.iter().any(|t| t.attribute == "swept"), "f{i} tagged");
    }
}

#[test]
fn foreach_query_source_filters_by_metadata() {
    let mut d = dfms();
    let now = SimTime::ZERO;
    d.grid_mut().execute("u", Operation::CreateCollection { path: path("/docs") }, now).unwrap();
    for (name, kind) in [("a", "pdf"), ("b", "raw"), ("c", "pdf")] {
        let p = path(&format!("/docs/{name}"));
        d.grid_mut().execute("u", Operation::Ingest { path: p.clone(), size: 1, resource: "site0-disk".into() }, now).unwrap();
        d.grid_mut()
            .execute("u", Operation::SetMetadata { path: p, triple: dgf_dgms::MetaTriple::new("type", kind) }, now)
            .unwrap();
    }
    let flow = FlowBuilder::for_each_query("pdfs", "f", "/docs", "type", "pdf")
        .step("note", DglOperation::Notify { message: "pdf: ${f}".into() })
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump();
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
    let notes: Vec<_> = d.notifications().iter().map(|n| n.message.clone()).collect();
    assert_eq!(notes, vec!["pdf: /docs/a", "pdf: /docs/c"]);
}

#[test]
fn switch_selects_the_matching_arm() {
    let mut d = dfms();
    let make_switch = |kind: &str| {
        FlowBuilder::switch("route", &format!("'{kind}'"))
            .unwrap()
            .case("pdf", dgf_dgl::Flow::sequence("pdf-arm", vec![Step::new("p", DglOperation::CreateCollection { path: "/pdf".into() })]))
            .case("raw", dgf_dgl::Flow::sequence("raw-arm", vec![Step::new("r", DglOperation::CreateCollection { path: "/raw".into() })]))
            .default_case(dgf_dgl::Flow::sequence("other-arm", vec![Step::new("o", DglOperation::CreateCollection { path: "/other".into() })]))
            .build()
            .unwrap()
    };
    let txn = d.submit_flow("u", make_switch("raw")).unwrap();
    d.pump();
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
    assert!(d.grid().exists(&path("/raw")));
    assert!(!d.grid().exists(&path("/pdf")));
    // Unmatched value takes the default arm.
    let txn2 = d.submit_flow("u", make_switch("mystery")).unwrap();
    d.pump();
    assert_eq!(d.status(&txn2, None).unwrap().state, RunState::Completed);
    assert!(d.grid().exists(&path("/other")));
}

#[test]
fn before_entry_and_after_exit_rules_fire() {
    let mut d = dfms();
    let flow = FlowBuilder::sequential("ruled")
        .before_entry(vec![Step::new("hello", DglOperation::Notify { message: "entering".into() })])
        .after_exit(vec![Step::new("bye", DglOperation::Notify { message: "exiting".into() })])
        .step("work", DglOperation::CreateCollection { path: "/w".into() })
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump();
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
    let messages: Vec<_> = d.notifications().iter().map(|n| n.message.as_str()).collect();
    assert_eq!(messages, vec!["entering", "exiting"]);
}

#[test]
fn rule_condition_selects_action_by_name() {
    let mut d = dfms();
    // Appendix A: "The Actions are executed if the condition statement
    // evaluates to the name of the action."
    let rule = UserDefinedRule::new(
        dgf_dgl::RULE_AFTER_EXIT,
        Expr::parse("size > 1000 && 'big' || 'small'").unwrap(),
        vec![
            RuleAction { name: "big".into(), steps: vec![Step::new("b", DglOperation::Notify { message: "big file".into() })] },
            RuleAction { name: "small".into(), steps: vec![Step::new("s", DglOperation::Notify { message: "small file".into() })] },
        ],
    );
    // Our && yields booleans, so use an explicit switch-style condition.
    let rule = UserDefinedRule {
        condition: Expr::parse("(size > 1000) == true && 'big' == 'big' && 'big' || 'small'").unwrap(),
        ..rule
    };
    // Simpler and unambiguous: condition that IS the action name.
    let rule = UserDefinedRule {
        condition: Expr::parse("kind").unwrap(),
        ..rule
    };
    let flow = FlowBuilder::sequential("f")
        .var("size", "5000")
        .var("kind", "big")
        .rule(rule)
        .step("w", DglOperation::CreateCollection { path: "/x".into() })
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump();
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
    assert_eq!(d.notifications().len(), 1);
    assert_eq!(d.notifications()[0].message, "big file");
}

#[test]
fn step_failure_fails_sequential_parent_and_skips_rest() {
    let mut d = dfms();
    let flow = FlowBuilder::sequential("f")
        .step("ok", DglOperation::CreateCollection { path: "/ok".into() })
        .step("bad", DglOperation::Delete { path: "/missing".into() })
        .step("never", DglOperation::CreateCollection { path: "/never".into() })
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump();
    let report = d.status(&txn, None).unwrap();
    assert_eq!(report.state, RunState::Failed);
    assert!(report.message.as_deref().unwrap_or("").contains("bad"));
    assert!(d.grid().exists(&path("/ok")), "earlier effects persist (non-transactional)");
    assert!(!d.grid().exists(&path("/never")), "later steps never ran");
    assert_eq!(d.metrics().runs_failed, 1);
}

#[test]
fn error_policy_ignore_and_retry() {
    let mut d = dfms();
    // Ignore: the failure is recorded but the flow continues.
    let flow = FlowBuilder::sequential("f")
        .add_step(
            Step::new("bad", DglOperation::Delete { path: "/missing".into() })
                .with_error_policy(dgf_dgl::ErrorPolicy::Ignore),
        )
        .step("after", DglOperation::CreateCollection { path: "/after".into() })
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump();
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
    assert!(d.grid().exists(&path("/after")));

    // Retry: a delete of a missing object keeps failing; retries then fail.
    let flow = FlowBuilder::sequential("g")
        .add_step(
            Step::new("bad", DglOperation::Delete { path: "/missing".into() })
                .with_error_policy(dgf_dgl::ErrorPolicy::Retry(2)),
        )
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump();
    let report = d.status(&txn, None).unwrap();
    assert_eq!(report.state, RunState::Failed);
    assert!(report.message.as_deref().unwrap().contains("after 2 retries"));
    assert_eq!(d.metrics().retries, 2);
}

#[test]
fn checksum_mismatch_fails_the_verification_step() {
    let mut d = dfms();
    let now = SimTime::ZERO;
    d.grid_mut()
        .execute("u", Operation::Ingest { path: path("/x"), size: 1000, resource: "site0-disk".into() }, now)
        .unwrap();
    d.grid_mut()
        .execute("u", Operation::Checksum { path: path("/x"), resource: None, register: true }, now)
        .unwrap();
    d.grid_mut().corrupt_replica(&path("/x"), "site0-disk").unwrap();
    let flow = FlowBuilder::sequential("verify")
        .step("check", DglOperation::Checksum { path: "/x".into(), resource: Some("site0-disk".into()), register: false })
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump();
    let report = d.status(&txn, None).unwrap();
    assert_eq!(report.state, RunState::Failed);
    assert!(report.message.as_deref().unwrap().contains("integrity"), "{report:?}");
}

#[test]
fn pause_resume_defers_new_steps_only() {
    let mut d = dfms();
    let flow = FlowBuilder::sequential("long")
        .step("a", ingest_op("/a", 80_000_000))
        .step("b", ingest_op("/b", 80_000_000))
        .step("c", ingest_op("/c", 80_000_000))
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    // Run the first step only (~1s), then pause.
    d.pump_until(SimTime::ZERO + Duration::from_millis(1_500));
    d.pause(&txn).unwrap();
    d.pump();
    let report = d.status(&txn, None).unwrap();
    assert!(report.steps_completed < 3, "paused before finishing: {report}");
    assert!(!report.state.is_terminal());
    // Resume and finish.
    d.resume(&txn).unwrap();
    d.pump();
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
    assert_eq!(d.status(&txn, None).unwrap().steps_completed, 3);
    // Lifecycle errors on bad states.
    assert!(d.pause(&txn).is_err(), "cannot pause a completed run");
    assert!(d.resume(&txn).is_err());
}

#[test]
fn stop_then_restart_resumes_from_provenance() {
    let mut d = dfms();
    let flow = FlowBuilder::sequential("archive")
        .step("a", ingest_op("/a", 80_000_000))
        .step("b", ingest_op("/b", 80_000_000))
        .step("c", ingest_op("/c", 80_000_000))
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump_until(SimTime::ZERO + Duration::from_millis(1_500)); // step a done, b in flight
    d.stop(&txn).unwrap();
    d.pump();
    let report = d.status(&txn, None).unwrap();
    assert_eq!(report.state, RunState::Stopped);
    assert!(d.grid().exists(&path("/a")));
    assert!(!d.grid().exists(&path("/c")));

    // Restart: a new transaction in the same lineage skips step a.
    let txn2 = d.restart(&txn).unwrap();
    assert_ne!(txn2, txn);
    d.pump();
    let report2 = d.status(&txn2, None).unwrap();
    assert_eq!(report2.state, RunState::Completed, "{report2}");
    assert!(d.grid().exists(&path("/c")));
    assert_eq!(d.metrics().steps_skipped_restart, 1, "step a was skipped, not re-run");
    // Provenance shows the full story across both transactions.
    let lineage_records = d.provenance().query(&ProvenanceQuery::lineage(&txn));
    assert!(lineage_records.iter().any(|r| r.transaction == txn));
    assert!(lineage_records.iter().any(|r| r.transaction == txn2));
    assert!(lineage_records.iter().any(|r| r.outcome == StepOutcome::Skipped));
}

#[test]
fn status_queries_address_any_node() {
    let mut d = dfms();
    let flow = FlowBuilder::sequential("outer")
        .flow(
            FlowBuilder::sequential("inner")
                .step("a", ingest_op("/a", 10))
                .step("b", ingest_op("/b", 10))
                .build()
                .unwrap(),
        )
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump();
    let root = d.status(&txn, None).unwrap();
    assert_eq!(root.node, "/");
    assert_eq!(root.children.len(), 1);
    let inner = d.status(&txn, Some("/0")).unwrap();
    assert_eq!(inner.name, "inner");
    assert_eq!(inner.children.len(), 2);
    let leaf = d.status(&txn, Some("/0/1")).unwrap();
    assert_eq!(leaf.name, "b");
    assert_eq!(leaf.state, RunState::Completed);
    assert!(d.status(&txn, Some("/9")).is_err());
    assert!(d.status("t999", None).is_err());
}

#[test]
fn window_constrained_runs_wait_for_the_window() {
    let mut d = dfms();
    // Submit Monday 09:00 with a weekend-only window.
    let flow = FlowBuilder::sequential("weekend-job")
        .step("w", DglOperation::CreateCollection { path: "/weekend".into() })
        .build()
        .unwrap();
    // Advance the engine clock to Monday 09:00 first.
    d.pump_until(SimTime::from_hours(9));
    let options = RunOptions { window: Some(ScheduleWindow::weekends()), ..Default::default() };
    let txn = d.submit_flow_with("u", flow, options).unwrap();
    // Pump through Friday: nothing happens.
    d.pump_until(SimTime::from_days(4));
    assert!(!d.grid().exists(&path("/weekend")));
    assert!(!d.status(&txn, None).unwrap().state.is_terminal());
    // Pump into Saturday: it runs.
    d.pump_until(SimTime::from_days(5) + Duration::from_hours(1));
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
    let created = d.grid().stat_collection(&path("/weekend")).unwrap().created;
    assert!(created >= SimTime::from_days(5), "ran inside the window: {created}");
}

#[test]
fn triggers_fire_flows_and_notifications_from_engine_activity() {
    let mut d = dfms();
    // Trigger: when a file is ingested anywhere under /incoming, register
    // its checksum (the §2.2 "creating metadata when a file is created"
    // automation) and notify.
    let action_flow = FlowBuilder::sequential("auto-checksum")
        .step("sum", DglOperation::Checksum { path: "${event.path}".into(), resource: None, register: true })
        .build()
        .unwrap();
    d.triggers_mut().register(
        Trigger::new("auto-checksum", "u", path("/incoming"), TriggerAction::Flow(action_flow))
            .on(&[EventKind::ObjectIngested]),
    );
    d.triggers_mut().register(
        Trigger::new("notify-ingest", "u", path("/incoming"), TriggerAction::Notify("ingested ${event.path}".into()))
            .on(&[EventKind::ObjectIngested]),
    );
    let flow = FlowBuilder::sequential("producer")
        .step("mk", DglOperation::CreateCollection { path: "/incoming".into() })
        .step("put", DglOperation::Ingest { path: "/incoming/x".into(), size: "100".into(), resource: "site0-disk".into() })
        .build()
        .unwrap();
    d.submit_flow("u", flow).unwrap();
    d.pump();
    // The notification fired.
    assert!(d.notifications().iter().any(|n| n.message == "ingested /incoming/x"));
    // The triggered flow ran and registered a checksum.
    let obj = d.grid().stat_object(&path("/incoming/x")).unwrap();
    assert!(obj.checksum.is_some(), "trigger flow registered the digest");
    assert!(d.metrics().trigger_firings >= 2);
}

#[test]
fn execute_steps_schedule_stage_and_register_outputs() {
    let mut d = dfms();
    let now = SimTime::ZERO;
    d.grid_mut()
        .execute("u", Operation::Ingest { path: path("/raw"), size: 1_000_000_000, resource: "site0-pfs".into() }, now)
        .unwrap();
    let flow = FlowBuilder::sequential("science")
        .step(
            "derive",
            DglOperation::Execute {
                code: "wave-sim".into(),
                nominal_secs: "120".into(),
                resource_type: Some("compute".into()),
                inputs: vec!["/raw".into()],
                outputs: vec![("/derived".into(), "50000000".into())],
            },
        )
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump();
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
    assert!(d.grid().exists(&path("/derived")));
    // Cost-based planning kept execution at the data: the output lives at site0.
    let out = d.grid().stat_object(&path("/derived")).unwrap();
    let out_domain = d.grid().topology().storage_domain(out.replicas[0].storage);
    assert_eq!(d.grid().topology().domain(out_domain).name, "site0");
    // Execution consumed simulated time ≥ nominal 120 s.
    assert!(d.now() >= SimTime::from_secs(120));
    assert_eq!(d.metrics().exec_tasks, 1);
    // All slots released.
    let topo = d.grid().topology();
    assert!(topo.compute_ids().all(|c| topo.compute(c).busy == 0));
}

#[test]
fn virtual_data_skips_repeated_derivations() {
    let mut d = dfms();
    let now = SimTime::ZERO;
    d.grid_mut()
        .execute("u", Operation::Ingest { path: path("/raw"), size: 1000, resource: "site0-disk".into() }, now)
        .unwrap();
    let derive = |out: &str| {
        FlowBuilder::sequential("science")
            .step(
                "derive",
                DglOperation::Execute {
                    code: "transform".into(),
                    nominal_secs: "60".into(),
                    resource_type: None,
                    inputs: vec!["/raw".into()],
                    outputs: vec![(out.to_string(), "100".into())],
                },
            )
            .build()
            .unwrap()
    };
    let t1 = d.submit_flow("u", derive("/out")).unwrap();
    d.pump();
    assert_eq!(d.status(&t1, None).unwrap().state, RunState::Completed);
    let time_after_first = d.now();

    // Second identical derivation: skipped via the catalog, ~no time.
    let t2 = d.submit_flow("u", derive("/out")).unwrap();
    d.pump();
    let report = d.status(&t2, None).unwrap();
    assert_eq!(report.state, RunState::Completed);
    assert_eq!(d.metrics().steps_skipped_virtual, 1);
    assert!(d.now().since(time_after_first) < Duration::from_secs(1), "no recomputation");
}

#[test]
fn ilm_jobs_recur_on_schedule() {
    let mut d = dfms();
    d.grid_mut().execute("u", Operation::CreateCollection { path: path("/nightly") }, SimTime::ZERO).unwrap();
    let flow = FlowBuilder::sequential("nightly-note")
        .step("n", DglOperation::Notify { message: "ilm ran".into() })
        .build()
        .unwrap();
    let job = dgf_ilm::IlmJob::unconstrained("nightly", "u", flow, Duration::from_days(1));
    d.register_ilm_job(job);
    d.pump_until(SimTime::from_days(3) + Duration::from_hours(1));
    let runs = d.notifications().iter().filter(|n| n.message == "ilm ran").count();
    assert_eq!(runs, 4, "day 0, 1, 2, 3");
}

#[test]
fn iteration_limit_guards_infinite_loops() {
    let mut d = dfms();
    let flow = FlowBuilder::while_loop("forever", "true")
        .unwrap()
        .step("n", DglOperation::Assign { variable: "x".into(), expr: Expr::parse("1").unwrap() })
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump();
    let report = d.status(&txn, None).unwrap();
    assert_eq!(report.state, RunState::Failed);
    assert!(report.message.as_deref().unwrap().contains("iterations"));
}

#[test]
fn invalid_flows_and_users_are_rejected_at_submit() {
    let mut d = dfms();
    let dup = dgf_dgl::Flow::sequence(
        "bad",
        vec![
            Step::new("same", DglOperation::Notify { message: "1".into() }),
            Step::new("same", DglOperation::Notify { message: "2".into() }),
        ],
    );
    assert!(d.submit_flow("u", dup).is_err(), "structural validation at submission");
    let fine = dgf_dgl::Flow::sequence("ok", vec![]);
    assert!(d.submit_flow("ghost", fine).is_err(), "unknown user");
}

#[test]
fn provenance_snapshot_survives_process_restart() {
    let mut d = dfms();
    let flow = FlowBuilder::sequential("f")
        .step("a", ingest_op("/a", 10))
        .build()
        .unwrap();
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump();
    let snapshot = d.provenance().snapshot();

    // "Years later": a fresh engine, restored store.
    let mut later = dfms();
    later.restore_provenance(dgf_dfms::ProvenanceStore::restore(&snapshot).unwrap());
    let records = later.provenance().query(&ProvenanceQuery::transaction(&txn));
    assert!(!records.is_empty());
    assert!(records.iter().any(|r| r.verb == "ingest" && r.outcome == StepOutcome::Completed));
}

#[test]
fn parallel_foreach_iterations_overlap() {
    let mut d = dfms();
    let now = SimTime::ZERO;
    d.grid_mut().execute("u", Operation::CreateCollection { path: path("/src") }, now).unwrap();
    for i in 0..4 {
        d.grid_mut()
            .execute(
                "u",
                Operation::Ingest { path: path(&format!("/src/f{i}")), size: 80_000_000, resource: "site0-disk".into() },
                now,
            )
            .unwrap();
    }
    // Replicating 4×80MB to 4 different sites' archives concurrently.
    let flow = FlowBuilder::for_each_in_collection("rep", "f", "/src")
        .concurrent()
        .step("cp", DglOperation::Replicate { path: "${f}".into(), src: None, dst: "site1-disk".into() })
        .build()
        .unwrap();
    // Replicas to the same resource would collide on paths, but each file
    // is distinct so all four replicate; the shared link makes them slower
    // than solo but still overlapped.
    let txn = d.submit_flow("u", flow).unwrap();
    d.pump();
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
    let elapsed = d.now().as_secs_f64();
    // Serial would be ≥ 4 s (4×1 s at 80 MB/s); overlapped-with-sharing is
    // ~4 s too on one link, BUT the statuses confirm all ran; check tree.
    let report = d.status(&txn, None).unwrap();
    assert_eq!(report.steps_total, 4);
    assert_eq!(report.steps_completed, 4);
    assert!(elapsed < 8.0, "not serialized with overhead: {elapsed}");
}
