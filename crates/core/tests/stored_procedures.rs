//! §2.2 datagrid stored procedures: named, parameterized flows executed
//! server-side.

use dgf_dfms::Dfms;
use dgf_dgl::{DglOperation, FlowBuilder, RunState};
use dgf_dgms::{DataGrid, LogicalPath, Principal, UserRegistry};
use dgf_scheduler::{PlannerKind, Scheduler};
use dgf_simgrid::{GridBuilder, GridPreset};

fn dfms() -> Dfms {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
    users.make_admin("u").unwrap();
    Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 1))
}

fn path(s: &str) -> LogicalPath {
    LogicalPath::parse(s).unwrap()
}

/// A reusable "safe ingest" procedure: ingest + register digest +
/// off-site replica, parameterized by path, size, and resources.
fn safe_ingest_procedure() -> dgf_dgl::Flow {
    FlowBuilder::sequential("safe-ingest")
        .var("target", "/unset")
        .var("bytes", "0")
        .var("home", "site0-disk")
        .var("offsite", "site1-disk")
        .step("put", DglOperation::Ingest { path: "${target}".into(), size: "${bytes}".into(), resource: "${home}".into() })
        .step("sum", DglOperation::Checksum { path: "${target}".into(), resource: None, register: true })
        .step("cp", DglOperation::Replicate { path: "${target}".into(), src: None, dst: "${offsite}".into() })
        .build()
        .unwrap()
}

#[test]
fn procedures_run_with_per_call_parameters() {
    let mut d = dfms();
    d.register_procedure("safe-ingest", safe_ingest_procedure()).unwrap();
    assert_eq!(d.procedures(), vec!["safe-ingest"]);

    let t1 = d.call_procedure("u", "safe-ingest", &[("target", "/a.dat"), ("bytes", "1000")]).unwrap();
    let t2 = d.call_procedure("u", "safe-ingest", &[("target", "/b.dat"), ("bytes", "2000")]).unwrap();
    d.pump();
    for txn in [&t1, &t2] {
        assert_eq!(d.status(txn, None).unwrap().state, RunState::Completed);
    }
    for (p, size) in [("/a.dat", 1000u64), ("/b.dat", 2000)] {
        let obj = d.grid().stat_object(&path(p)).unwrap();
        assert_eq!(obj.size, size);
        assert_eq!(obj.replicas.len(), 2);
        assert!(obj.checksum.is_some());
    }
}

#[test]
fn extra_args_become_new_variables() {
    let mut d = dfms();
    let proc_flow = FlowBuilder::sequential("note")
        .step("n", DglOperation::Notify { message: "${who} says ${what}".into() })
        .build()
        .unwrap();
    d.register_procedure("note", proc_flow).unwrap();
    let txn = d.call_procedure("u", "note", &[("who", "arun"), ("what", "hello grid")]).unwrap();
    d.pump();
    assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
    assert_eq!(d.notifications()[0].message, "arun says hello grid");
}

#[test]
fn unknown_procedures_and_invalid_flows_are_rejected() {
    let mut d = dfms();
    assert!(d.call_procedure("u", "nope", &[]).is_err());
    let invalid = dgf_dgl::Flow::sequence(
        "dup",
        vec![
            dgf_dgl::Step::new("same", DglOperation::Notify { message: "1".into() }),
            dgf_dgl::Step::new("same", DglOperation::Notify { message: "2".into() }),
        ],
    );
    assert!(d.register_procedure("bad", invalid).is_err());
    assert!(d.procedures().is_empty());
}

#[test]
fn procedure_calls_are_independent_transactions_with_provenance() {
    let mut d = dfms();
    d.register_procedure("safe-ingest", safe_ingest_procedure()).unwrap();
    let t1 = d.call_procedure("u", "safe-ingest", &[("target", "/x"), ("bytes", "1")]).unwrap();
    d.pump();
    // Calling again with the same target fails (already exists) — but
    // only that call, not the procedure registration.
    let t2 = d.call_procedure("u", "safe-ingest", &[("target", "/x"), ("bytes", "1")]).unwrap();
    d.pump();
    assert_eq!(d.status(&t1, None).unwrap().state, RunState::Completed);
    assert_eq!(d.status(&t2, None).unwrap().state, RunState::Failed);
    // Both calls are fully provenanced.
    use dgf_dfms::ProvenanceQuery;
    assert!(!d.provenance().query(&ProvenanceQuery::transaction(&t1)).is_empty());
    assert!(!d.provenance().query(&ProvenanceQuery::transaction(&t2)).is_empty());
}
