//! Property tests over the provenance store's durable form: any store —
//! arbitrary records, every outcome, optional trace links — survives a
//! snapshot → restore round trip byte- and field-identically. This is
//! the invariant crash recovery leans on: journal checkpoints embed
//! provenance snapshots, and replay rebuilds the store from them.

use dgf_dfms::{ProvenanceRecord, ProvenanceStore, StepOutcome};
use dgf_simgrid::SimTime;
use proptest::prelude::*;

fn outcome_strategy() -> impl Strategy<Value = StepOutcome> {
    prop_oneof![
        Just(StepOutcome::Completed),
        Just(StepOutcome::Failed),
        Just(StepOutcome::Skipped),
        Just(StepOutcome::Stopped),
    ]
}

/// Attribute-safe text: printable, no leading/trailing space runs (the
/// codec preserves interior whitespace but trims nothing).
fn text() -> impl Strategy<Value = String> {
    "[!-~]([ -~]{0,16}[!-~])?".prop_map(|s| s.replace(['<', '>', '&', '"'], "_"))
}

fn record_strategy() -> impl Strategy<Value = ProvenanceRecord> {
    (
        (
            "[a-z][a-z0-9-]{0,10}",
            "t[1-9][0-9]{0,3}",
            "(/[0-9]{1,2}){0,4}",
            text(),
            "[a-z]{1,12}",
            "[a-z][a-z0-9]{0,8}",
        ),
        (0u64..1_000_000, 0u64..1_000_000),
        outcome_strategy(),
        text(),
        proptest::option::of(any::<u64>()),
        proptest::option::of(any::<u64>()),
    )
        .prop_map(|((lineage, transaction, node, name, verb, user), (t0, dt), outcome, detail, trace_id, span_id)| {
            ProvenanceRecord {
                lineage,
                transaction,
                node: if node.is_empty() { "/".into() } else { node },
                name,
                verb,
                user,
                started: SimTime(t0),
                finished: SimTime(t0 + dt),
                outcome,
                detail,
                trace_id,
                span_id,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// restore(snapshot(store)) reproduces every record, in order.
    #[test]
    fn snapshot_restore_round_trips(records in proptest::collection::vec(record_strategy(), 0..24)) {
        let mut store = ProvenanceStore::new();
        for r in &records {
            store.record(r.clone());
        }
        let xml = store.snapshot();
        let restored = ProvenanceStore::restore(&xml).expect("snapshot parses back");
        prop_assert_eq!(restored.records(), &records[..]);
        // And the round trip is a fixed point: snapshotting the restored
        // store yields the identical document.
        prop_assert_eq!(restored.snapshot(), xml);
    }

    /// The restore path never panics on arbitrary input — it returns a
    /// typed `ProvenanceError` instead.
    #[test]
    fn restore_is_panic_free(input in "\\PC{0,300}") {
        let _ = ProvenanceStore::restore(&input);
    }
}
