//! Time travel over the write-ahead journal: materialize the engine at
//! any since-genesis transition ordinal, diff two ordinals, and bisect
//! history for the first ordinal where a predicate turned true.
//!
//! The journal's commands are a deterministic replay script (see
//! `crate::recovery`), so "the engine at ordinal `o`" is well defined:
//! re-drive the script from genesis and stop applying effects once
//! transition `o` has been derived. [`Dfms::recover_to`] does exactly
//! that — read-only (it never opens the journal for writing, so a live
//! server can time-travel its *own* journal between commands) — and the
//! [`TimeTravel`] handle packages it into the operator console surface:
//! `materialize` / `diff` / `bisect`, reachable over the DGL wire as
//! `timeTravelQuery`/`timeTravelReport`. The operator guide is
//! `docs/TIME_TRAVEL.md`.

use crate::engine::Dfms;
use crate::error::DfmsError;
use crate::provenance::ProvenanceRecord;
use crate::recovery::{self, EngineJournal, JournalConfig, ReplayState};
use dgf_dgl::{
    BisectSpec, BisectSummary, DiffSummary, FlowDelta, OrdinalSummary, RunState, TimeTravelOp,
    TimeTravelQuery, TimeTravelReport,
};
use dgf_journal::Journal;
use std::fmt;
use std::path::{Path, PathBuf};

/// An engine materialized at a past ordinal by [`Dfms::recover_to`],
/// with the replay's accounting.
pub struct Materialized {
    /// The engine, frozen at the requested ordinal. It has no journal
    /// attached (time travel is read-only): commands still work but are
    /// not recorded, which makes the engine safe to probe and discard.
    pub engine: Dfms,
    /// The ordinal actually reached — `transitions_derived - 1`, or
    /// `None` when the replayed prefix derived no transitions at all.
    pub ordinal: Option<u64>,
    /// The ordinal the caller asked for (`None` = end of history).
    pub requested: Option<u64>,
    /// True when the whole history fit under the requested ordinal,
    /// i.e. this materialization *is* the full replay.
    pub complete: bool,
    /// Journaled commands applied before the replay halted.
    pub commands_applied: u64,
    /// Transitions derived (= `ordinal + 1` when any derived).
    pub transitions_derived: u64,
}

impl Materialized {
    /// The wire-shaped summary of this materialization.
    pub fn summary(&self) -> OrdinalSummary {
        OrdinalSummary {
            ordinal: self.ordinal,
            requested: self.requested,
            complete: self.complete,
            commands_applied: self.commands_applied,
            transitions_derived: self.transitions_derived,
            time_us: self.engine.now().0,
            flows: self.engine.flow_summaries(),
        }
    }
}

impl fmt::Debug for Materialized {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Materialized")
            .field("ordinal", &self.ordinal)
            .field("requested", &self.requested)
            .field("complete", &self.complete)
            .field("commands_applied", &self.commands_applied)
            .field("transitions_derived", &self.transitions_derived)
            .finish_non_exhaustive()
    }
}

/// The structured delta between two materialized ordinals: the
/// provenance records written between them and every flow whose state
/// or progress changed. Produced by [`TimeTravel::diff`];
/// `diff(a, a)` is always [`StateDiff::is_empty`].
#[derive(Debug, Clone, PartialEq)]
pub struct StateDiff {
    /// The earlier ordinal.
    pub from: u64,
    /// The later ordinal.
    pub to: u64,
    /// Clock at the earlier ordinal, µs.
    pub time_from_us: u64,
    /// Clock at the later ordinal, µs.
    pub time_to_us: u64,
    /// Provenance records present at `to` but not yet at `from`, in
    /// derivation order. The `from` store is verified to be an exact
    /// prefix of the `to` store (determinism makes it one; anything
    /// else is reported as an error by [`TimeTravel::diff`]).
    pub provenance_added: Vec<ProvenanceRecord>,
    /// Flows that appeared or changed between the ordinals; unchanged
    /// flows are omitted.
    pub flows: Vec<FlowDelta>,
}

impl StateDiff {
    /// True when nothing observable changed between the two ordinals.
    pub fn is_empty(&self) -> bool {
        self.provenance_added.is_empty() && self.flows.is_empty()
    }

    /// The wire-shaped summary of this delta.
    pub fn summary(&self) -> DiffSummary {
        DiffSummary {
            from: self.from,
            to: self.to,
            provenance_added: self.provenance_added.len() as u64,
            time_from_us: self.time_from_us,
            time_to_us: self.time_to_us,
            flows: self.flows.clone(),
        }
    }
}

/// A bisection predicate, evaluated against a materialized engine.
///
/// Bisection assumes the predicate is *monotone* over the journal's
/// history — false up to some ordinal, true from there on — the same
/// contract `git bisect` puts on "broken". [`BisectPredicate::Stalled`]
/// is monotone for a flow that stalls and never recovers (the common
/// diagnostic case); a flow that recovers breaks monotonicity past the
/// recovery, so bisect the prefix where the stall persists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BisectPredicate {
    /// The flow has sat idle past the watchdog's stall deadline
    /// (computed directly from the progress watermark, so it holds
    /// regardless of when `health_check` last ran).
    Stalled {
        /// The flow's transaction id.
        transaction: String,
    },
    /// The flow has reached the given lifecycle state.
    FlowState {
        /// The flow's transaction id.
        transaction: String,
        /// The state to locate the first occurrence of.
        state: RunState,
    },
    /// The flow variable renders to the given text in the root scope.
    Variable {
        /// The flow's transaction id.
        transaction: String,
        /// The variable name.
        name: String,
        /// The rendered value to match.
        value: String,
    },
}

impl BisectPredicate {
    /// Evaluate against a materialized engine.
    pub fn eval(&self, engine: &Dfms) -> bool {
        match self {
            BisectPredicate::Stalled { transaction } => {
                let Some(health) = engine.obs().health_flow(transaction) else { return false };
                let config = engine.obs().health_config();
                let deadline = config.stalled_after.max(config.slow_after);
                engine.now().since(health.last_progress) >= deadline
            }
            BisectPredicate::FlowState { transaction, state } => engine
                .flow_summaries()
                .iter()
                .any(|f| &f.transaction == transaction && f.state == *state),
            BisectPredicate::Variable { transaction, name, value } => engine
                .flow_variable(transaction, name)
                .map(|v| v.to_string() == *value)
                .unwrap_or(false),
        }
    }

    /// Build from the wire-level [`BisectSpec`].
    pub fn from_spec(spec: BisectSpec) -> Self {
        match spec {
            BisectSpec::Stalled { transaction } => BisectPredicate::Stalled { transaction },
            BisectSpec::State { transaction, state } => {
                BisectPredicate::FlowState { transaction, state }
            }
            BisectSpec::Variable { transaction, name, value } => {
                BisectPredicate::Variable { transaction, name, value }
            }
        }
    }
}

/// A bisection outcome: where the predicate first held and what it
/// cost to find out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BisectOutcome {
    /// First ordinal where the predicate held; `None` when it does not
    /// hold even at the end of history.
    pub first_true: Option<u64>,
    /// Materializations performed: one full probe plus at most
    /// ⌈log₂(ordinals)⌉ binary-search probes.
    pub probes: u64,
    /// The journal's last since-genesis ordinal.
    pub last_ordinal: u64,
}

impl BisectOutcome {
    /// The wire-shaped summary of this outcome.
    pub fn summary(&self) -> BisectSummary {
        BisectSummary {
            first_true: self.first_true,
            probes: self.probes,
            last_ordinal: self.last_ordinal,
        }
    }
}

/// The time-travel console: a journal path, its genesis label, and the
/// engine factory that recovery would use — enough to materialize the
/// engine at any ordinal, diff two, or bisect history. Obtain one
/// directly or via [`Dfms::enable_time_travel`] on a journaled server.
pub struct TimeTravel {
    path: PathBuf,
    label: String,
    factory: Box<dyn Fn() -> Dfms + Send>,
}

impl fmt::Debug for TimeTravel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TimeTravel")
            .field("path", &self.path)
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

impl TimeTravel {
    /// A console over the journal at `path` with the given genesis
    /// label. `factory` must rebuild the same pre-journal configuration
    /// the journaled engine had — the same contract as
    /// [`Dfms::recover`].
    pub fn new(
        path: impl Into<PathBuf>,
        label: impl Into<String>,
        factory: impl Fn() -> Dfms + Send + 'static,
    ) -> Self {
        TimeTravel { path: path.into(), label: label.into(), factory: Box::new(factory) }
    }

    /// The journal file this console replays.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Materialize the engine at `ordinal` (`None` = end of history).
    pub fn materialize(&self, ordinal: Option<u64>) -> Result<Materialized, DfmsError> {
        Dfms::recover_to(&self.path, &self.label, ordinal, || (self.factory)())
    }

    /// The journal's last since-genesis ordinal (`None` when no
    /// transitions were ever derived). Costs one full materialization.
    pub fn last_ordinal(&self) -> Result<Option<u64>, DfmsError> {
        Ok(self.materialize(None)?.ordinal)
    }

    /// Diff two ordinals (order-insensitive: the smaller is `from`).
    /// The earlier state's provenance is verified to be an exact prefix
    /// of the later one's — determinism guarantees it; a mismatch means
    /// the factory no longer rebuilds the journaled configuration and
    /// is reported as a recovery error.
    pub fn diff(&self, a: u64, b: u64) -> Result<StateDiff, DfmsError> {
        let (from, to) = if a <= b { (a, b) } else { (b, a) };
        let earlier = self.materialize(Some(from))?;
        let later = self.materialize(Some(to))?;
        let prov_from = earlier.engine.provenance().records();
        let prov_to = later.engine.provenance().records();
        if prov_to.len() < prov_from.len()
            || prov_from.iter().zip(prov_to.iter()).any(|(a, b)| a != b)
        {
            return Err(DfmsError::Recovery(format!(
                "provenance at ordinal {from} is not a prefix of ordinal {to}: \
                 the factory no longer rebuilds the journaled configuration"
            )));
        }
        let provenance_added = prov_to[prov_from.len()..].to_vec();
        let before = earlier.engine.flow_summaries();
        let flows = later
            .engine
            .flow_summaries()
            .into_iter()
            .filter_map(|after| {
                let old = before.iter().find(|f| f.transaction == after.transaction);
                let unchanged = old.is_some_and(|f| {
                    f.state == after.state && f.steps_completed == after.steps_completed
                });
                if unchanged {
                    return None;
                }
                Some(FlowDelta {
                    transaction: after.transaction,
                    from_state: old.map(|f| f.state),
                    to_state: Some(after.state),
                    steps_from: old.map(|f| f.steps_completed).unwrap_or(0),
                    steps_to: after.steps_completed,
                    steps_total: after.steps_total,
                })
            })
            .collect();
        Ok(StateDiff {
            from,
            to,
            time_from_us: earlier.engine.now().0,
            time_to_us: later.engine.now().0,
            provenance_added,
            flows,
        })
    }

    /// Locate the first ordinal where `predicate` holds, by binary
    /// search over the since-genesis ordinals. One full materialization
    /// learns the last ordinal and whether the predicate ever turns
    /// true; when it does, at most ⌈log₂(ordinals)⌉ further probes pin
    /// the first true one — `git bisect` over the journal.
    pub fn bisect(&self, predicate: &BisectPredicate) -> Result<BisectOutcome, DfmsError> {
        let full = self.materialize(None)?;
        let mut probes = 1u64;
        let Some(last) = full.ordinal else {
            return Ok(BisectOutcome { first_true: None, probes, last_ordinal: 0 });
        };
        if !predicate.eval(&full.engine) {
            return Ok(BisectOutcome { first_true: None, probes, last_ordinal: last });
        }
        // First-true binary search; invariant: predicate(hi) is true.
        let (mut lo, mut hi) = (0u64, last);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let probe = self.materialize(Some(mid))?;
            probes += 1;
            if predicate.eval(&probe.engine) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Ok(BisectOutcome { first_true: Some(lo), probes, last_ordinal: last })
    }
}

impl Dfms {
    /// Materialize the engine the journal at `path` describes, at
    /// since-genesis transition ordinal `ordinal` *inclusive* — the
    /// state after deriving transition `ordinal`. `None` replays the
    /// whole history (like [`Dfms::recover`], but read-only).
    ///
    /// Unlike `recover`, this never opens the journal for writing (no
    /// torn-tail truncation, no fresh checkpoint), so a live server can
    /// materialize past states of its own journal. The returned engine
    /// has no journal attached; its provenance is byte-identical to a
    /// fresh genesis replay truncated after transition `ordinal`.
    ///
    /// An `ordinal` beyond the end of history is not an error: the
    /// materialization is simply `complete` (the full replay).
    pub fn recover_to(
        path: &Path,
        label: &str,
        ordinal: Option<u64>,
        factory: impl FnOnce() -> Dfms,
    ) -> Result<Materialized, DfmsError> {
        let (records, _open) = Journal::read(path)?;
        let mut engine = factory();
        if engine.journal.is_some() {
            return Err(DfmsError::Recovery(
                "the time-travel factory must build an unjournaled engine".into(),
            ));
        }
        if records.is_empty() {
            return Ok(Materialized {
                engine,
                ordinal: None,
                requested: ordinal,
                complete: true,
                commands_applied: 0,
                transitions_derived: 0,
            });
        }
        recovery::check_genesis(&records, label)?;
        let (commands, expected, memo) = recovery::partition(&records);
        debug_assert!(
            recovery::ordinals_aligned(&expected),
            "journal transition ordinals are not strictly increasing — compaction renumbered?"
        );
        engine.journal = Some(EngineJournal {
            journal: None,
            config: JournalConfig { checkpoint_every: 0, compact_on_checkpoint: false, ..JournalConfig::default() },
            label: label.to_owned(),
            commands_since_checkpoint: 0,
            transitions_written: 0,
            replay: Some(ReplayState::new(memo, expected, ordinal)),
        });
        let commands_applied = engine.drive_replay(&commands);
        let replay = engine.take_replay().expect("installed above");
        engine.journal = None;
        let transitions_derived = replay.derived.len() as u64;
        Ok(Materialized {
            engine,
            ordinal: transitions_derived.checked_sub(1),
            requested: ordinal,
            complete: !replay.past_limit,
            commands_applied,
            transitions_derived,
        })
    }

    /// Enable the time-travel console on this journaled server:
    /// `factory` must rebuild the same pre-journal configuration (the
    /// [`Dfms::recover`] contract). The journal path and genesis label
    /// come from the attached journal. After this, DGL
    /// `timeTravelQuery` requests are answered instead of refused.
    pub fn enable_time_travel(
        &mut self,
        factory: impl Fn() -> Dfms + Send + 'static,
    ) -> Result<(), DfmsError> {
        let Some(j) = self.journal.as_ref() else {
            return Err(DfmsError::Recovery("time travel needs an attached journal".into()));
        };
        let Some(journal) = j.journal.as_ref() else {
            return Err(DfmsError::Recovery(
                "time travel cannot be enabled on a replaying materialization".into(),
            ));
        };
        let path = journal.path().to_path_buf();
        let label = j.label.clone();
        self.time_travel = Some(TimeTravel::new(path, label, factory));
        Ok(())
    }

    /// The time-travel console, when enabled.
    pub fn time_travel(&self) -> Option<&TimeTravel> {
        self.time_travel.as_ref()
    }

    /// Answer one DGL time-travel query — the body behind
    /// `timeTravelQuery`. Syncs the journal first so the materialized
    /// history includes everything up to the server's current state.
    pub fn time_travel_query(&mut self, q: &TimeTravelQuery) -> TimeTravelReport {
        let now = self.now().0;
        if self.time_travel.is_none() {
            return TimeTravelReport::disabled(now);
        }
        if let Some(journal) = self.journal.as_mut().and_then(|j| j.journal.as_mut()) {
            if journal.sync().is_err() {
                self.obs().inc("journal", "errors");
            }
        }
        let travel = self.time_travel.as_ref().expect("checked above");
        let mut report = TimeTravelReport {
            time_us: now,
            enabled: true,
            last_ordinal: None,
            inspect: None,
            diff: None,
            bisect: None,
            error: None,
        };
        match &q.op {
            TimeTravelOp::Inspect { ordinal } => match travel.materialize(*ordinal) {
                Ok(m) => {
                    if m.complete {
                        report.last_ordinal = m.ordinal;
                    }
                    report.inspect = Some(m.summary());
                }
                Err(e) => report.error = Some(e.to_string()),
            },
            TimeTravelOp::Diff { from, to } => match travel.diff(*from, *to) {
                Ok(d) => report.diff = Some(d.summary()),
                Err(e) => report.error = Some(e.to_string()),
            },
            TimeTravelOp::Bisect { predicate } => {
                let p = BisectPredicate::from_spec(predicate.clone());
                match travel.bisect(&p) {
                    Ok(b) => {
                        report.last_ordinal = Some(b.last_ordinal);
                        report.bisect = Some(b.summary());
                    }
                    Err(e) => report.error = Some(e.to_string()),
                }
            }
        }
        report
    }
}
