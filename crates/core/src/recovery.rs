//! Engine-side journaling and crash recovery.
//!
//! The `dgf-journal` crate stores CRC-framed records; this module owns
//! the *vocabulary* written into them and the replay machinery that
//! turns a journal back into a running [`crate::Dfms`]:
//!
//! * **genesis** — `<genesis label="..."/>`, written once when a journal
//!   is attached. The label is the operator's assertion that the engine
//!   factory used at recovery rebuilds the same configuration (grid,
//!   users, scheduler, triggers, ILM jobs) the journal assumes; recovery
//!   refuses a mismatched label.
//! * **command** — `<command kind="...">`: one top-level external input
//!   (submission, lifecycle action, pump, binding-mode switch, failure
//!   injection...). Commands are the replay script: re-applying them in
//!   order against a factory-fresh engine deterministically re-derives
//!   every internal state, including span and transaction ids.
//! * **transition** — `<transition kind="..." n="...">`: a derived
//!   effect (provenance write, step start, scheduler binding, trigger
//!   firing, run admission). Transitions are *verification* data: replay
//!   re-derives them and counts divergences against the journal. `n` is
//!   the transition's ordinal since genesis, so records stay aligned
//!   across compactions.
//! * **checkpoint** — a full provenance snapshot plus a flow-state
//!   summary. Checkpoints bound compaction (older transitions and stale
//!   checkpoints are dropped) and carry the completed-step memo that
//!   [`dgf_dgl::ReplayStats::steps_skipped_restart`] accounts against.
//!
//! Queries (status, telemetry, validation, recovery) are *not*
//! journaled: they derive no engine state that commands would not
//! re-derive. Likewise grid/trigger/ILM setup performed before the
//! journal is attached belongs to the factory, not the journal.

use crate::run::RunOptions;
use dgf_journal::{Journal, JournalError, SyncPolicy};
use dgf_simgrid::{ComputeId, FailureEvent, LinkId, ScheduleWindow, StorageId};
use dgf_xml::Element;
use std::collections::HashSet;

/// Journal behavior knobs. See `docs/RECOVERY.md` for tuning guidance.
#[derive(Debug, Clone, Copy)]
pub struct JournalConfig {
    /// When appended records hit the disk (commands and checkpoints are
    /// always synced; this batches transitions).
    pub sync: SyncPolicy,
    /// Write an automatic checkpoint after this many top-level commands
    /// (0 disables automatic checkpoints; call [`crate::Dfms::checkpoint`]
    /// yourself).
    pub checkpoint_every: u64,
    /// Compact the journal at every checkpoint, dropping transitions and
    /// checkpoints older than the new one.
    pub compact_on_checkpoint: bool,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig { sync: SyncPolicy::default(), checkpoint_every: 64, compact_on_checkpoint: true }
    }
}

/// Replay bookkeeping, present only while `Dfms::recover` is driving
/// the command script.
#[derive(Debug)]
pub(crate) struct ReplayState {
    /// Completed steps known to the journal: (lineage, node) from the
    /// last checkpoint's provenance plus every journaled `provenance`
    /// transition. Consumed (removed) as replay re-reaches each step, so
    /// `skips` counts each completed step once.
    pub memo: HashSet<(String, String)>,
    /// Journaled transitions, as (`n`, compact XML with the journal's
    /// `seq` attribute stripped).
    pub expected: Vec<(u64, String)>,
    /// Transitions re-derived by replay, in derivation order (index is
    /// the transition's `n`).
    pub derived: Vec<String>,
    /// Completed-at-crash steps re-reached by replay
    /// (`steps_skipped_restart` accounting).
    pub skips: u64,
}

/// The engine's journaling state: the open journal plus its vocabulary
/// counters.
#[derive(Debug)]
pub(crate) struct EngineJournal {
    pub journal: Journal,
    pub config: JournalConfig,
    /// Top-level commands since the last checkpoint.
    pub commands_since_checkpoint: u64,
    /// Transitions journaled since genesis (stamped as `n`); replay
    /// resets this to the re-derived count so ordinals stay aligned.
    pub transitions_written: u64,
    /// `Some` while `Dfms::recover` is replaying; suppresses appends.
    pub replay: Option<ReplayState>,
}

impl EngineJournal {
    /// Wrap a freshly created (empty) journal: writes the genesis record.
    pub fn create(mut journal: Journal, label: &str, config: JournalConfig) -> Result<Self, JournalError> {
        journal.append(Element::new("genesis").with_attr("label", label))?;
        Ok(EngineJournal {
            journal,
            config,
            commands_since_checkpoint: 0,
            transitions_written: 0,
            replay: None,
        })
    }

    /// Journal one derived effect — or, during replay, record it for
    /// divergence checking instead.
    pub fn on_transition(&mut self, mut body: Element) -> Result<(), JournalError> {
        match &mut self.replay {
            Some(r) => {
                body.set_attr("n", r.derived.len().to_string());
                r.derived.push(body.to_xml());
                Ok(())
            }
            None => {
                body.set_attr("n", self.transitions_written.to_string());
                self.transitions_written += 1;
                self.journal.append(body)?;
                Ok(())
            }
        }
    }
}

/// A `<command kind="...">` shell.
pub(crate) fn command(kind: &str) -> Element {
    Element::new("command").with_attr("kind", kind)
}

/// A `<transition kind="...">` shell.
pub(crate) fn transition(kind: &str) -> Element {
    Element::new("transition").with_attr("kind", kind)
}

/// Clone a journaled body without the journal's own `seq` attribute, so
/// it compares equal to a freshly re-derived transition.
pub(crate) fn strip_seq(el: &Element) -> Element {
    let mut e = el.clone();
    e.attributes.retain(|(name, _)| name != "seq");
    e
}

/// Encode [`RunOptions`] for a `submitFlow` command. Omitted entirely
/// when the options are all defaults, keeping the common case compact.
pub(crate) fn options_element(options: &RunOptions) -> Option<Element> {
    if options.window.is_none() && options.trigger_depth == 0 && options.lineage.is_none() {
        return None;
    }
    let mut el = Element::new("options");
    if let Some(lineage) = &options.lineage {
        el.set_attr("lineage", lineage);
    }
    if options.trigger_depth != 0 {
        el.set_attr("depth", options.trigger_depth.to_string());
    }
    if let Some(window) = &options.window {
        let (days, start, end) = window.parts();
        let mask: String = days.iter().map(|d| if *d { '1' } else { '0' }).collect();
        el.push_element(
            Element::new("window")
                .with_attr("days", mask)
                .with_attr("start", start.to_string())
                .with_attr("end", end.to_string()),
        );
    }
    Some(el)
}

/// Decode the `<options>` child of a `submitFlow` command (absent means
/// defaults).
pub(crate) fn options_from_element(el: Option<&Element>) -> RunOptions {
    let Some(el) = el else { return RunOptions::default() };
    let window = el.child("window").and_then(|w| {
        let mask = w.attr("days")?;
        let mut days = [false; 7];
        for (i, c) in mask.chars().take(7).enumerate() {
            days[i] = c == '1';
        }
        let start: u8 = w.attr("start")?.parse().ok()?;
        let end: u8 = w.attr("end")?.parse().ok()?;
        if start >= 24 || end > 24 || !days.iter().any(|d| *d) {
            return None;
        }
        Some(ScheduleWindow::from_parts(days, start, end))
    });
    RunOptions {
        window,
        trigger_depth: el.attr("depth").and_then(|d| d.parse().ok()).unwrap_or(0),
        lineage: el.attr("lineage").map(str::to_owned),
    }
}

/// Encode a failure-injection command body.
pub(crate) fn failure_element(event: &FailureEvent) -> Element {
    let (target, id, online) = match event {
        FailureEvent::Storage(id, online) => ("storage", id.0, *online),
        FailureEvent::Compute(id, online) => ("compute", id.0, *online),
        FailureEvent::Link(id, online) => ("link", id.0, *online),
    };
    command("failure")
        .with_attr("target", target)
        .with_attr("id", id.to_string())
        .with_attr("online", if online { "true" } else { "false" })
}

/// Decode a failure-injection command body.
pub(crate) fn failure_from_element(el: &Element) -> Option<FailureEvent> {
    let id: u32 = el.attr("id")?.parse().ok()?;
    let online = el.attr("online")? == "true";
    Some(match el.attr("target")? {
        "storage" => FailureEvent::Storage(StorageId(id), online),
        "compute" => FailureEvent::Compute(ComputeId(id), online),
        "link" => FailureEvent::Link(LinkId(id), online),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_round_trip_and_defaults_stay_implicit() {
        assert!(options_element(&RunOptions::default()).is_none());
        let opts = RunOptions {
            window: Some(ScheduleWindow::off_hours(20, 6)),
            trigger_depth: 2,
            lineage: Some("t9".into()),
        };
        let el = options_element(&opts).unwrap();
        let back = options_from_element(Some(&el));
        assert_eq!(back.lineage.as_deref(), Some("t9"));
        assert_eq!(back.trigger_depth, 2);
        // The wrap encoding (end <= start) survives the round trip.
        assert_eq!(back.window.unwrap().parts(), opts.window.as_ref().unwrap().parts());
    }

    #[test]
    fn failure_events_round_trip() {
        for event in [
            FailureEvent::Storage(StorageId(3), false),
            FailureEvent::Compute(ComputeId(1), true),
            FailureEvent::Link(LinkId(0), false),
        ] {
            let el = failure_element(&event);
            assert_eq!(failure_from_element(&el), Some(event));
        }
    }

    #[test]
    fn strip_seq_removes_only_the_journal_stamp() {
        let el = Element::new("transition").with_attr("kind", "x").with_attr("seq", "9").with_attr("n", "0");
        let stripped = strip_seq(&el);
        assert_eq!(stripped.attr("seq"), None);
        assert_eq!(stripped.attr("kind"), Some("x"));
        assert_eq!(stripped.attr("n"), Some("0"));
    }
}
