//! Engine-side journaling and crash recovery.
//!
//! The `dgf-journal` crate stores CRC-framed records; this module owns
//! the *vocabulary* written into them and the replay machinery that
//! turns a journal back into a running [`crate::Dfms`]:
//!
//! * **genesis** — `<genesis label="..."/>`, written once when a journal
//!   is attached. The label is the operator's assertion that the engine
//!   factory used at recovery rebuilds the same configuration (grid,
//!   users, scheduler, triggers, ILM jobs) the journal assumes; recovery
//!   refuses a mismatched label.
//! * **command** — `<command kind="...">`: one top-level external input
//!   (submission, lifecycle action, pump, binding-mode switch, failure
//!   injection...). Commands are the replay script: re-applying them in
//!   order against a factory-fresh engine deterministically re-derives
//!   every internal state, including span and transaction ids.
//! * **transition** — `<transition kind="..." n="...">`: a derived
//!   effect (provenance write, step start, scheduler binding, trigger
//!   firing, run admission). Transitions are *verification* data: replay
//!   re-derives them and counts divergences against the journal. `n` is
//!   the transition's **since-genesis ordinal**: the index this
//!   transition had in the full derivation sequence, counted from the
//!   genesis record onward.
//! * **checkpoint** — a full provenance snapshot plus a flow-state
//!   summary. Checkpoints bound compaction (older transitions and stale
//!   checkpoints are dropped) and carry the completed-step memo that
//!   [`dgf_dgl::ReplayStats::steps_skipped_restart`] accounts against.
//!
//! ## Ordinal accounting across compaction
//!
//! Compaction drops transition records older than the surviving
//! checkpoint but **never renumbers** the survivors, and it keeps every
//! command — replay is always a *full* re-drive of the command script
//! from genesis, so a freshly replayed engine re-derives transitions
//! `0, 1, 2, ...` regardless of how many transition *records* the file
//! still holds. The alignment invariant this module maintains (and
//! [`crate::Dfms::recover`] debug-asserts via [`ordinals_aligned`]) is:
//! the `n` attributes of the transition records surviving in the file
//! are **strictly increasing in file order**, so each surviving record
//! can be compared against `derived[n]` of the replay. After replay,
//! [`EngineJournal::transitions_written`] is reset to the *re-derived*
//! count (ordinals since genesis), **not** to the number of transition
//! records left in the compacted file — the two differ as soon as one
//! compaction has run.
//!
//! The same ordinal is the coordinate system of the time-travel surface
//! (`Dfms::recover_to`, diff, bisect — see `docs/TIME_TRAVEL.md`):
//! "ordinal `o`" always means "the state after deriving transition `o`
//! of the since-genesis sequence".
//!
//! Queries (status, telemetry, validation, recovery, time travel) are
//! *not* journaled: they derive no engine state that commands would not
//! re-derive. Likewise grid/trigger/ILM setup performed before the
//! journal is attached belongs to the factory, not the journal.

use crate::error::DfmsError;
use crate::run::RunOptions;
use dgf_journal::{Journal, JournalError, Record, RecordKind, SyncPolicy};
use dgf_simgrid::{ComputeId, FailureEvent, LinkId, ScheduleWindow, StorageId};
use dgf_xml::Element;
use std::collections::HashSet;

/// Journal behavior knobs. See `docs/RECOVERY.md` for tuning guidance.
#[derive(Debug, Clone, Copy)]
pub struct JournalConfig {
    /// When appended records hit the disk (commands and checkpoints are
    /// always synced; this batches transitions).
    pub sync: SyncPolicy,
    /// Write an automatic checkpoint after this many top-level commands
    /// (0 disables automatic checkpoints; call [`crate::Dfms::checkpoint`]
    /// yourself).
    pub checkpoint_every: u64,
    /// Compact the journal at every checkpoint, dropping transitions and
    /// checkpoints older than the new one.
    pub compact_on_checkpoint: bool,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig { sync: SyncPolicy::default(), checkpoint_every: 64, compact_on_checkpoint: true }
    }
}

/// Replay bookkeeping, present only while `Dfms::recover` (or the
/// time-travel `Dfms::recover_to`) is driving the command script.
#[derive(Debug)]
pub(crate) struct ReplayState {
    /// Completed steps known to the journal: (lineage, node) from the
    /// last checkpoint's provenance plus every journaled `provenance`
    /// transition. Consumed (removed) as replay re-reaches each step, so
    /// `skips` counts each completed step once.
    pub memo: HashSet<(String, String)>,
    /// Journaled transitions, as (`n`, compact XML with the journal's
    /// `seq` attribute stripped). `n` is the since-genesis ordinal;
    /// after compaction this list starts above zero but stays strictly
    /// increasing (see [`ordinals_aligned`]).
    pub expected: Vec<(u64, String)>,
    /// Transitions re-derived by replay, in derivation order (index is
    /// the transition's since-genesis ordinal `n`).
    pub derived: Vec<String>,
    /// Completed-at-crash steps re-reached by replay
    /// (`steps_skipped_restart` accounting).
    pub skips: u64,
    /// Time travel: highest since-genesis ordinal (inclusive) whose
    /// effects should apply. `None` replays the whole history.
    pub limit: Option<u64>,
    /// Set once a transition beyond `limit` tried to derive; pump loops
    /// and the command script halt as soon as they observe it.
    pub past_limit: bool,
}

impl ReplayState {
    /// Replay bookkeeping over the journal's expectations, optionally
    /// halting after since-genesis ordinal `limit`.
    pub fn new(
        memo: HashSet<(String, String)>,
        expected: Vec<(u64, String)>,
        limit: Option<u64>,
    ) -> Self {
        ReplayState { memo, expected, derived: Vec::new(), skips: 0, limit, past_limit: false }
    }
}

/// The engine's journaling state: the open journal plus its vocabulary
/// counters. `journal` is `None` only for read-only time-travel
/// materializations ([`crate::Dfms::recover_to`]), which replay a
/// journal *file* without ever holding it open for writing.
#[derive(Debug)]
pub(crate) struct EngineJournal {
    pub journal: Option<Journal>,
    pub config: JournalConfig,
    /// The genesis label this journal was created (or recovered) with.
    pub label: String,
    /// Top-level commands since the last checkpoint.
    pub commands_since_checkpoint: u64,
    /// Transitions derived since genesis — the next ordinal to stamp as
    /// `n`. After a replay this is reset to the *re-derived* count
    /// (`derived.len()`), never to the number of transition records the
    /// compacted file happens to retain: compaction drops old transition
    /// records but the ordinal sequence keeps counting from genesis.
    pub transitions_written: u64,
    /// `Some` while a replay is driving the engine; suppresses appends.
    pub replay: Option<ReplayState>,
}

impl EngineJournal {
    /// Wrap a freshly created (empty) journal: writes the genesis record.
    pub fn create(mut journal: Journal, label: &str, config: JournalConfig) -> Result<Self, JournalError> {
        journal.append(Element::new("genesis").with_attr("label", label))?;
        Ok(EngineJournal {
            journal: Some(journal),
            config,
            label: label.to_owned(),
            commands_since_checkpoint: 0,
            transitions_written: 0,
            replay: None,
        })
    }

    /// Journal one derived effect — or, during replay, record it for
    /// divergence checking instead.
    ///
    /// Returns whether the transition's *effects* should apply: always
    /// `true` in live operation and ordinary replay, `false` once a
    /// time-travel replay has derived past its ordinal limit (the
    /// caller then suppresses the corresponding provenance write, which
    /// is what makes `recover_to(o)`'s provenance an exact prefix).
    pub fn on_transition(&mut self, mut body: Element) -> Result<bool, JournalError> {
        match &mut self.replay {
            Some(r) => {
                let n = r.derived.len() as u64;
                if r.limit.is_some_and(|limit| n > limit) {
                    r.past_limit = true;
                    return Ok(false);
                }
                body.set_attr("n", n.to_string());
                r.derived.push(body.to_xml());
                Ok(true)
            }
            None => {
                body.set_attr("n", self.transitions_written.to_string());
                self.transitions_written += 1;
                if let Some(journal) = self.journal.as_mut() {
                    journal.append(body)?;
                }
                Ok(true)
            }
        }
    }
}

/// The ordinal alignment invariant: the `n` attributes of the
/// transition records surviving in a journal file must be strictly
/// increasing in file order. Compaction preserves this because it drops
/// a *prefix* of the transition records (everything older than the
/// surviving checkpoint) and never renumbers the rest; replay depends
/// on it because each surviving record is verified against
/// `derived[n]`. [`crate::Dfms::recover`] turns this into a debug
/// assertion over the partitioned journal.
pub(crate) fn ordinals_aligned(expected: &[(u64, String)]) -> bool {
    expected.windows(2).all(|w| w[0].0 < w[1].0)
}

/// Refuse to replay a journal whose genesis label differs from the one
/// the caller asserts its factory rebuilds: replay against a
/// differently configured engine would silently diverge.
pub(crate) fn check_genesis(records: &[Record], label: &str) -> Result<(), DfmsError> {
    match records.iter().find(|r| r.kind == RecordKind::Genesis) {
        None => Err(DfmsError::Recovery("journal has records but no genesis".into())),
        Some(g) => {
            let found = g.body.attr("label").unwrap_or("");
            if found != label {
                return Err(DfmsError::Recovery(format!(
                    "genesis label mismatch: journal says {found:?}, recovery was given {label:?}"
                )));
            }
            Ok(())
        }
    }
}

/// Partition a journal into the three replay inputs: commands are the
/// replay script, transitions the `(ordinal, stripped XML)`
/// expectations, and the last checkpoint's provenance (plus every
/// journaled `provenance` transition) the completed-step memo that
/// [`dgf_dgl::ReplayStats::steps_skipped_restart`] accounts against.
#[allow(clippy::type_complexity)]
pub(crate) fn partition(
    records: &[Record],
) -> (Vec<Element>, Vec<(u64, String)>, HashSet<(String, String)>) {
    let mut commands: Vec<Element> = Vec::new();
    let mut expected: Vec<(u64, String)> = Vec::new();
    let mut memo: HashSet<(String, String)> = HashSet::new();
    let memo_record = |memo: &mut HashSet<(String, String)>, rec: &Element| {
        if rec.attr("outcome") == Some("completed") && rec.attr("verb") != Some("flow") {
            if let (Some(lineage), Some(node)) = (rec.attr("lineage"), rec.attr("node")) {
                memo.insert((lineage.to_owned(), node.to_owned()));
            }
        }
    };
    for r in records {
        match r.kind {
            RecordKind::Command => commands.push(r.body.clone()),
            RecordKind::Transition => {
                let n = r.body.attr("n").and_then(|v| v.parse().ok()).unwrap_or(u64::MAX);
                expected.push((n, strip_seq(&r.body).to_xml()));
                if r.body.attr("kind") == Some("provenance") {
                    if let Some(rec) = r.body.child("record") {
                        memo_record(&mut memo, rec);
                    }
                }
            }
            RecordKind::Checkpoint => {
                if let Some(prov) = r.body.child("provenance") {
                    for rec in prov.children_named("record") {
                        memo_record(&mut memo, rec);
                    }
                }
            }
            RecordKind::Genesis => {}
        }
    }
    (commands, expected, memo)
}

/// A `<command kind="...">` shell.
pub(crate) fn command(kind: &str) -> Element {
    Element::new("command").with_attr("kind", kind)
}

/// A `<transition kind="...">` shell.
pub(crate) fn transition(kind: &str) -> Element {
    Element::new("transition").with_attr("kind", kind)
}

/// Clone a journaled body without the journal's own `seq` attribute, so
/// it compares equal to a freshly re-derived transition.
pub(crate) fn strip_seq(el: &Element) -> Element {
    let mut e = el.clone();
    e.attributes.retain(|(name, _)| name != "seq");
    e
}

/// Encode [`RunOptions`] for a `submitFlow` command. Omitted entirely
/// when the options are all defaults, keeping the common case compact.
pub(crate) fn options_element(options: &RunOptions) -> Option<Element> {
    if options.window.is_none() && options.trigger_depth == 0 && options.lineage.is_none() {
        return None;
    }
    let mut el = Element::new("options");
    if let Some(lineage) = &options.lineage {
        el.set_attr("lineage", lineage);
    }
    if options.trigger_depth != 0 {
        el.set_attr("depth", options.trigger_depth.to_string());
    }
    if let Some(window) = &options.window {
        let (days, start, end) = window.parts();
        let mask: String = days.iter().map(|d| if *d { '1' } else { '0' }).collect();
        el.push_element(
            Element::new("window")
                .with_attr("days", mask)
                .with_attr("start", start.to_string())
                .with_attr("end", end.to_string()),
        );
    }
    Some(el)
}

/// Decode the `<options>` child of a `submitFlow` command (absent means
/// defaults).
pub(crate) fn options_from_element(el: Option<&Element>) -> RunOptions {
    let Some(el) = el else { return RunOptions::default() };
    let window = el.child("window").and_then(|w| {
        let mask = w.attr("days")?;
        let mut days = [false; 7];
        for (i, c) in mask.chars().take(7).enumerate() {
            days[i] = c == '1';
        }
        let start: u8 = w.attr("start")?.parse().ok()?;
        let end: u8 = w.attr("end")?.parse().ok()?;
        if start >= 24 || end > 24 || !days.iter().any(|d| *d) {
            return None;
        }
        Some(ScheduleWindow::from_parts(days, start, end))
    });
    RunOptions {
        window,
        trigger_depth: el.attr("depth").and_then(|d| d.parse().ok()).unwrap_or(0),
        lineage: el.attr("lineage").map(str::to_owned),
    }
}

/// Encode a failure-injection command body.
pub(crate) fn failure_element(event: &FailureEvent) -> Element {
    let (target, id, online) = match event {
        FailureEvent::Storage(id, online) => ("storage", id.0, *online),
        FailureEvent::Compute(id, online) => ("compute", id.0, *online),
        FailureEvent::Link(id, online) => ("link", id.0, *online),
    };
    command("failure")
        .with_attr("target", target)
        .with_attr("id", id.to_string())
        .with_attr("online", if online { "true" } else { "false" })
}

/// Decode a failure-injection command body.
pub(crate) fn failure_from_element(el: &Element) -> Option<FailureEvent> {
    let id: u32 = el.attr("id")?.parse().ok()?;
    let online = el.attr("online")? == "true";
    Some(match el.attr("target")? {
        "storage" => FailureEvent::Storage(StorageId(id), online),
        "compute" => FailureEvent::Compute(ComputeId(id), online),
        "link" => FailureEvent::Link(LinkId(id), online),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_round_trip_and_defaults_stay_implicit() {
        assert!(options_element(&RunOptions::default()).is_none());
        let opts = RunOptions {
            window: Some(ScheduleWindow::off_hours(20, 6)),
            trigger_depth: 2,
            lineage: Some("t9".into()),
        };
        let el = options_element(&opts).unwrap();
        let back = options_from_element(Some(&el));
        assert_eq!(back.lineage.as_deref(), Some("t9"));
        assert_eq!(back.trigger_depth, 2);
        // The wrap encoding (end <= start) survives the round trip.
        assert_eq!(back.window.unwrap().parts(), opts.window.as_ref().unwrap().parts());
    }

    #[test]
    fn failure_events_round_trip() {
        for event in [
            FailureEvent::Storage(StorageId(3), false),
            FailureEvent::Compute(ComputeId(1), true),
            FailureEvent::Link(LinkId(0), false),
        ] {
            let el = failure_element(&event);
            assert_eq!(failure_from_element(&el), Some(event));
        }
    }

    #[test]
    fn ordinal_alignment_invariant() {
        let t = |n: u64| (n, format!("<transition n=\"{n}\"/>"));
        // The empty and singleton journals are trivially aligned.
        assert!(ordinals_aligned(&[]));
        assert!(ordinals_aligned(&[t(7)]));
        // A fresh (never compacted) journal: ordinals from zero.
        assert!(ordinals_aligned(&[t(0), t(1), t(2)]));
        // A compacted journal: a dropped prefix leaves a strictly
        // increasing suffix that starts above zero.
        assert!(ordinals_aligned(&[t(41), t(42), t(45)]));
        // Renumbering or reordering the survivors breaks alignment.
        assert!(!ordinals_aligned(&[t(3), t(3)]));
        assert!(!ordinals_aligned(&[t(5), t(2), t(9)]));
    }

    #[test]
    fn replay_limit_suppresses_effects_past_the_ordinal() {
        let mut j = EngineJournal {
            journal: None,
            config: JournalConfig::default(),
            label: "test".into(),
            commands_since_checkpoint: 0,
            transitions_written: 0,
            replay: Some(ReplayState::new(HashSet::new(), Vec::new(), Some(1))),
        };
        assert!(j.on_transition(transition("a")).unwrap()); // ordinal 0
        assert!(j.on_transition(transition("b")).unwrap()); // ordinal 1 == limit
        assert!(!j.on_transition(transition("c")).unwrap()); // past the limit
        assert!(!j.on_transition(transition("d")).unwrap());
        let replay = j.replay.take().unwrap();
        assert!(replay.past_limit);
        assert_eq!(replay.derived.len(), 2, "derived stops growing at limit+1");
    }

    #[test]
    fn strip_seq_removes_only_the_journal_stamp() {
        let el = Element::new("transition").with_attr("kind", "x").with_attr("seq", "9").with_attr("n", "0");
        let stripped = strip_seq(&el);
        assert_eq!(stripped.attr("seq"), None);
        assert_eq!(stripped.attr("kind"), Some("x"));
        assert_eq!(stripped.attr("n"), Some("0"));
    }
}
