//! The DfMS error type.

use std::fmt;

/// Errors surfaced by the DfMS API.
#[derive(Debug, Clone, PartialEq)]
pub enum DfmsError {
    /// Unknown transaction id.
    UnknownTransaction(String),
    /// Unknown node path within a transaction.
    UnknownNode {
        /// The transaction the lookup ran against.
        transaction: String,
        /// The node path that did not resolve.
        node: String,
    },
    /// The requested lifecycle change is illegal in the run's state.
    BadLifecycle {
        /// The transaction the action targeted.
        transaction: String,
        /// The refused action (`"pause"`, `"resume"`, ...).
        action: &'static str,
        /// The run state the flow was actually in.
        state: String,
    },
    /// A DGL-level problem (parse, validation, evaluation).
    Dgl(dgf_dgl::DglError),
    /// The submit-time lint gate found error-severity diagnostics. The
    /// full report rides along so callers can surface every code.
    Lint(dgf_dgl::ValidationReport),
    /// A DGMS-level problem that terminated submission.
    Dgms(dgf_dgms::DgmsError),
    /// The submitting user is not registered with the grid.
    UnknownUser(String),
    /// The engine refused a runaway loop.
    IterationLimit {
        /// The transaction whose loop tripped the limit.
        transaction: String,
        /// The looping node's path.
        node: String,
        /// The iteration ceiling that was exceeded.
        limit: u64,
    },
    /// No server in the network can own the request.
    NoRoute(String),
    /// A provenance snapshot failed to restore.
    Provenance(crate::ProvenanceError),
    /// The write-ahead journal failed (I/O, foreign file, unframeable
    /// record).
    Journal(dgf_journal::JournalError),
    /// Crash recovery could not proceed (missing or mismatched genesis,
    /// journal already attached, ...).
    Recovery(String),
}

impl fmt::Display for DfmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfmsError::UnknownTransaction(t) => write!(f, "unknown transaction {t:?}"),
            DfmsError::UnknownNode { transaction, node } => {
                write!(f, "transaction {transaction:?} has no node {node:?}")
            }
            DfmsError::BadLifecycle { transaction, action, state } => {
                write!(f, "cannot {action} transaction {transaction:?} in state {state}")
            }
            DfmsError::Dgl(e) => write!(f, "DGL: {e}"),
            DfmsError::Lint(report) => {
                write!(f, "lint rejected flow {:?}: {} error(s)", report.flow, report.errors())?;
                for d in report.diagnostics.iter().filter(|d| d.severity == dgf_dgl::Severity::Error) {
                    write!(f, "; {d}")?;
                }
                Ok(())
            }
            DfmsError::Dgms(e) => write!(f, "DGMS: {e}"),
            DfmsError::UnknownUser(u) => write!(f, "unknown user {u:?}"),
            DfmsError::IterationLimit { transaction, node, limit } => {
                write!(f, "transaction {transaction:?} node {node:?} exceeded {limit} iterations")
            }
            DfmsError::NoRoute(what) => write!(f, "no DfMS server routes {what:?}"),
            DfmsError::Provenance(e) => write!(f, "provenance: {e}"),
            DfmsError::Journal(e) => write!(f, "journal: {e}"),
            DfmsError::Recovery(why) => write!(f, "recovery failed: {why}"),
        }
    }
}

impl std::error::Error for DfmsError {}

impl From<dgf_dgl::DglError> for DfmsError {
    fn from(e: dgf_dgl::DglError) -> Self {
        DfmsError::Dgl(e)
    }
}

impl From<dgf_dgms::DgmsError> for DfmsError {
    fn from(e: dgf_dgms::DgmsError) -> Self {
        DfmsError::Dgms(e)
    }
}

impl From<crate::ProvenanceError> for DfmsError {
    fn from(e: crate::ProvenanceError) -> Self {
        DfmsError::Provenance(e)
    }
}

impl From<dgf_journal::JournalError> for DfmsError {
    fn from(e: dgf_journal::JournalError) -> Self {
        DfmsError::Journal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: DfmsError = dgf_dgl::DglError::UnknownVariable("x".into()).into();
        assert!(e.to_string().contains("DGL"));
        let e: DfmsError = dgf_dgms::DgmsError::UnknownUser("u".into()).into();
        assert!(e.to_string().contains("DGMS"));
        let e = DfmsError::BadLifecycle { transaction: "t1".into(), action: "pause", state: "completed".into() };
        assert!(e.to_string().contains("pause") && e.to_string().contains("completed"));
    }
}
