//! Runtime state of one executing flow: the materialized node tree.
//!
//! The DGL [`Flow`] is the immutable *spec*; a [`Run`] materializes it
//! into runtime [`Node`]s as execution proceeds — loops unroll into
//! fresh child nodes, so "steps total" grows as iterations are
//! discovered, and every node is addressable by a hierarchical path
//! (`/0/3/1`) for status queries at any granularity (§4).

use dgf_dgl::{Flow, RunState, Scope, StatusReport, Step};
use dgf_simgrid::{ScheduleWindow, SimTime};

/// Identifies a run inside one [`crate::Dfms`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunId(pub u64);

/// Identifies a node inside one run's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// Control-state of a flow node.
#[derive(Debug, Clone)]
pub(crate) enum Cursor {
    /// Sequential/parallel over the spec's children.
    Static { next_spec: usize, outstanding: usize, parallel: bool },
    /// While loop: one unrolled iteration (a wrapper flow) at a time.
    While { iterations: u64 },
    /// For-each: items resolved at entry; unrolls one wrapper per item.
    ForEach { items: Vec<String>, next: usize, outstanding: usize, parallel: bool },
    /// Switch: at most one child dispatched.
    Switch,
}

/// A node's body: an unrolled flow or a leaf step.
#[derive(Debug, Clone)]
pub(crate) enum NodeBody {
    Flow { spec: Flow, children: Vec<NodeId>, cursor: Cursor },
    Step { spec: Step, attempts: u32 },
}

/// One runtime node.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub parent: Option<NodeId>,
    pub index_in_parent: usize,
    pub name: String,
    pub state: RunState,
    pub scope: Scope,
    pub started: SimTime,
    pub finished: SimTime,
    pub message: Option<String>,
    /// The tracing span covering this node's execution: the flow span
    /// for the root, a request span per materialized node below it.
    pub span: Option<dgf_obs::SpanContext>,
    pub body: NodeBody,
}

impl Node {
    pub(crate) fn is_step(&self) -> bool {
        matches!(self.body, NodeBody::Step { .. })
    }
}

/// Per-run execution options.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Restrict step dispatch to this window (ILM off-hours runs).
    pub window: Option<ScheduleWindow>,
    /// Cascade depth when the run was started by a trigger.
    pub trigger_depth: u32,
    /// Lineage override: restarts reuse the original lineage so the
    /// provenance memo can skip completed steps.
    pub lineage: Option<String>,
}

/// The runtime state of one submitted flow.
#[derive(Debug)]
pub(crate) struct Run {
    pub txn: String,
    pub lineage: String,
    pub user: String,
    pub vo: Option<String>,
    pub paused: bool,
    pub stop_requested: bool,
    pub options: RunOptions,
    pub nodes: Vec<Node>,
    /// Work items deferred while paused or outside the window.
    pub deferred: Vec<crate::engine::Work>,
}

impl Run {
    pub(crate) fn root(&self) -> NodeId {
        NodeId(0)
    }

    pub(crate) fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// Allocate a child node.
    pub(crate) fn alloc(&mut self, parent: Option<NodeId>, index_in_parent: usize, name: String, body: NodeBody) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            parent,
            index_in_parent,
            name,
            state: RunState::Pending,
            scope: Scope::root(),
            started: SimTime::ZERO,
            finished: SimTime::ZERO,
            message: None,
            span: None,
            body,
        });
        id
    }

    /// The hierarchical path of a node (`/`, `/0`, `/0/3`...).
    pub(crate) fn path_of(&self, id: NodeId) -> String {
        let mut indices = Vec::new();
        let mut at = id;
        while let Some(parent) = self.node(at).parent {
            indices.push(self.node(at).index_in_parent);
            at = parent;
        }
        if indices.is_empty() {
            return "/".to_owned();
        }
        indices.reverse();
        let mut s = String::new();
        for i in indices {
            s.push('/');
            s.push_str(&i.to_string());
        }
        s
    }

    /// Resolve a hierarchical path back to a node.
    pub(crate) fn find(&self, path: &str) -> Option<NodeId> {
        let mut at = self.root();
        for segment in path.split('/').filter(|s| !s.is_empty()) {
            let idx: usize = segment.parse().ok()?;
            let children = match &self.node(at).body {
                NodeBody::Flow { children, .. } => children,
                NodeBody::Step { .. } => return None,
            };
            at = *children.get(idx)?;
        }
        Some(at)
    }

    /// Steps completed / total in the subtree rooted at `id` (counting
    /// materialized step nodes only; loops grow the total as they unroll).
    pub(crate) fn progress(&self, id: NodeId) -> (usize, usize) {
        let node = self.node(id);
        match &node.body {
            NodeBody::Step { .. } => {
                let done = usize::from(matches!(node.state, RunState::Completed | RunState::Skipped));
                (done, 1)
            }
            NodeBody::Flow { children, .. } => {
                let mut done = 0;
                let mut total = 0;
                for child in children {
                    let (d, t) = self.progress(*child);
                    done += d;
                    total += t;
                }
                (done, total)
            }
        }
    }

    /// Build a DGL status report for a node.
    pub(crate) fn report(&self, id: NodeId) -> StatusReport {
        let node = self.node(id);
        let (steps_completed, steps_total) = self.progress(id);
        let children = match &node.body {
            NodeBody::Flow { children, .. } => children
                .iter()
                .map(|c| (self.path_of(*c), self.node(*c).name.clone(), self.node(*c).state))
                .collect(),
            NodeBody::Step { .. } => Vec::new(),
        };
        StatusReport {
            transaction: self.txn.clone(),
            node: self.path_of(id),
            name: node.name.clone(),
            state: node.state,
            steps_completed,
            steps_total,
            message: node.message.clone(),
            children,
            events: Vec::new(),
            metrics: Vec::new(),
            spans: Vec::new(),
        }
    }

    /// Mark every non-terminal node in the subtree `Stopped`.
    pub(crate) fn stop_subtree(&mut self, id: NodeId, at: SimTime) {
        let children: Vec<NodeId> = match &self.node(id).body {
            NodeBody::Flow { children, .. } => children.clone(),
            NodeBody::Step { .. } => Vec::new(),
        };
        for child in children {
            self.stop_subtree(child, at);
        }
        let node = self.node_mut(id);
        if !node.state.is_terminal() {
            node.state = RunState::Stopped;
            node.finished = at;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_dgl::{DglOperation, Flow as DglFlow};

    fn step_spec(name: &str) -> Step {
        Step::new(name, DglOperation::Notify { message: "x".into() })
    }

    fn test_run() -> Run {
        let spec = DglFlow::sequence("root", vec![]);
        let mut run = Run {
            txn: "t1".into(),
            lineage: "t1".into(),
            user: "u".into(),
            vo: None,
            paused: false,
            stop_requested: false,
            options: RunOptions::default(),
            nodes: Vec::new(),
            deferred: Vec::new(),
        };
        let root_body = NodeBody::Flow {
            spec,
            children: Vec::new(),
            cursor: Cursor::Static { next_spec: 0, outstanding: 0, parallel: false },
        };
        run.alloc(None, 0, "root".into(), root_body);
        run
    }

    fn attach_step(run: &mut Run, parent: NodeId, idx: usize, name: &str) -> NodeId {
        let id = run.alloc(Some(parent), idx, name.into(), NodeBody::Step { spec: step_spec(name), attempts: 0 });
        if let NodeBody::Flow { children, .. } = &mut run.node_mut(parent).body {
            children.push(id);
        }
        id
    }

    #[test]
    fn paths_round_trip() {
        let mut run = test_run();
        let root = run.root();
        let inner = run.alloc(
            Some(root),
            0,
            "inner".into(),
            NodeBody::Flow {
                spec: DglFlow::sequence("inner", vec![]),
                children: Vec::new(),
                cursor: Cursor::Static { next_spec: 0, outstanding: 0, parallel: false },
            },
        );
        if let NodeBody::Flow { children, .. } = &mut run.node_mut(root).body {
            children.push(inner);
        }
        let s1 = attach_step(&mut run, inner, 0, "a");
        let s2 = attach_step(&mut run, inner, 1, "b");
        assert_eq!(run.path_of(root), "/");
        assert_eq!(run.path_of(inner), "/0");
        assert_eq!(run.path_of(s1), "/0/0");
        assert_eq!(run.path_of(s2), "/0/1");
        assert_eq!(run.find("/"), Some(root));
        assert_eq!(run.find("/0/1"), Some(s2));
        assert_eq!(run.find("/0/9"), None);
        assert_eq!(run.find("/0/0/0"), None, "steps have no children");
        assert_eq!(run.find("/x"), None);
    }

    #[test]
    fn progress_counts_materialized_steps() {
        let mut run = test_run();
        let root = run.root();
        let a = attach_step(&mut run, root, 0, "a");
        let _b = attach_step(&mut run, root, 1, "b");
        assert_eq!(run.progress(root), (0, 2));
        run.node_mut(a).state = RunState::Completed;
        assert_eq!(run.progress(root), (1, 2));
        let report = run.report(root);
        assert_eq!(report.steps_completed, 1);
        assert_eq!(report.steps_total, 2);
        assert_eq!(report.children.len(), 2);
        assert_eq!(report.node, "/");
    }

    #[test]
    fn stop_subtree_preserves_terminal_states() {
        let mut run = test_run();
        let root = run.root();
        let a = attach_step(&mut run, root, 0, "a");
        let b = attach_step(&mut run, root, 1, "b");
        run.node_mut(a).state = RunState::Completed;
        run.node_mut(b).state = RunState::Running;
        run.stop_subtree(root, SimTime::from_secs(9));
        assert_eq!(run.node(a).state, RunState::Completed, "finished work stays finished");
        assert_eq!(run.node(b).state, RunState::Stopped);
        assert_eq!(run.node(root).state, RunState::Stopped);
    }
}
