//! The DfMS engine: deterministic interpretation of DGL flows on the
//! simulation clock.

use crate::error::DfmsError;
use crate::provenance::{ProvenanceRecord, ProvenanceStore, StepOutcome};
use crate::recovery::{self, EngineJournal, JournalConfig, ReplayState};
use crate::run::{Cursor, NodeBody, NodeId, Run, RunId, RunOptions};
use dgf_journal::Journal;
use dgf_xml::Element;
use dgf_dgl::{
    interpolate, Children, ControlPattern, DataGridRequest, DataGridResponse, DglOperation, Expr,
    Flow, FlowStatusQuery, IterSource, RequestAck, RequestBody, RequestMode, RunState, Scope,
    StatusReport, Step, TelemetryQuery, TelemetryReport, UserDefinedRule, ValidationReport, Value,
};
use dgf_dgms::{
    DataGrid, EventKind, LogicalPath, MetaQuery, MetaTriple, NamespaceEvent, Operation,
    PendingOp, Permission,
};
use dgf_ilm::IlmJob;
use dgf_obs::{EventKind as ObsKind, Obs, Phase, SpanContext, SpanKind};
use dgf_scheduler::{AbstractTask, BindingCache, BindingMode, ResourceReq, Scheduler, VirtualDataCatalog};
use dgf_simgrid::{ComputeId, Duration, EventQueue, FailureEvent, SimTime, StorageId};
use dgf_triggers::{Firing, TriggerAction, TriggerEngine};
use std::collections::{BTreeMap, HashMap};
use std::path::Path;

/// Hard ceiling on while-loop iterations: a runaway `while (true)` in a
/// submitted document must not hang the server.
const MAX_LOOP_ITERATIONS: u64 = 100_000;

/// How long a task waits before re-probing a saturated grid.
const QUEUE_RETRY_INTERVAL: Duration = Duration(30_000_000); // 30 s

/// A notification emitted by a `notify` operation or trigger action —
/// the §2.2 "sending notifications when specific types of files are
/// ingested" use case.
#[derive(Debug, Clone, PartialEq)]
pub struct Notification {
    /// When it was emitted.
    pub time: SimTime,
    /// The emitting transaction (or trigger name).
    pub source: String,
    /// The rendered message.
    pub message: String,
}

/// Engine-level counters (observability + experiments).
///
/// This is the legacy counter shape, kept for existing callers; it is
/// now *derived* from the [`Obs`] metrics registry by [`Dfms::metrics`]
/// rather than maintained as a separate struct. New code should prefer
/// [`Dfms::metrics_snapshot`], which exposes every scope and histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineMetrics {
    /// Flows accepted.
    pub runs_submitted: u64,
    /// Flows that reached `Completed`.
    pub runs_completed: u64,
    /// Flows that reached `Failed`.
    pub runs_failed: u64,
    /// Steps that executed an operation.
    pub steps_executed: u64,
    /// Steps skipped by the virtual-data catalog.
    pub steps_skipped_virtual: u64,
    /// Steps skipped by the restart memo.
    pub steps_skipped_restart: u64,
    /// DGMS operations performed (including staging).
    pub dgms_ops: u64,
    /// Bytes moved by DGMS operations.
    pub bytes_moved: u64,
    /// Business-logic executions.
    pub exec_tasks: u64,
    /// Trigger firings handled.
    pub trigger_firings: u64,
    /// Step retry attempts.
    pub retries: u64,
}

/// Work items on the engine's event queue.
#[derive(Debug, Clone)]
pub(crate) enum Work {
    /// Begin (or re-attempt) a node.
    Start { run: RunId, node: NodeId },
    /// A DGMS operation issued by `node` finished.
    OpDone { run: RunId, node: NodeId },
    /// A business-logic execution finished.
    ExecDone { run: RunId, node: NodeId, compute: ComputeId, outputs: Vec<(LogicalPath, StorageId, u64)>, code: String, inputs: Vec<LogicalPath> },
    /// A recurring ILM job is due.
    IlmDue { job: usize },
}

/// The Datagridflow Management System server core.
///
/// Owns the DGMS, the scheduler, the trigger engine, the virtual-data
/// catalog, the provenance store, and the event queue. All time is
/// simulation time: [`Dfms::pump`] drains due events deterministically.
#[derive(Debug)]
pub struct Dfms {
    grid: DataGrid,
    scheduler: Scheduler,
    binding: BindingCache,
    triggers: TriggerEngine,
    catalog: VirtualDataCatalog,
    queue: EventQueue<Work>,
    runs: Vec<Run>,
    txn_index: HashMap<String, RunId>,
    pending_ops: HashMap<(RunId, usize), PendingOp>,
    provenance: ProvenanceStore,
    notifications: Vec<Notification>,
    obs: Obs,
    ilm_jobs: Vec<IlmJob>,
    procedures: HashMap<String, Flow>,
    next_txn: u64,
    /// The write-ahead journal, when attached (see `docs/RECOVERY.md`).
    pub(crate) journal: Option<EngineJournal>,
    /// Re-entrancy depth of journaled command methods: only depth-0
    /// calls are external inputs worth journaling; everything beneath
    /// them (trigger-spawned flows, the pump inside a synchronous
    /// `handle`) is re-derived by replay.
    cmd_depth: u32,
    /// Replay statistics when this engine was built by [`Dfms::recover`].
    last_replay: Option<dgf_dgl::ReplayStats>,
    /// Time-travel context, when enabled (see `docs/TIME_TRAVEL.md`):
    /// lets this engine answer DGL `timeTravelQuery` requests by
    /// materializing past states of its own journal.
    pub(crate) time_travel: Option<crate::time_travel::TimeTravel>,
    /// Wall-clock contention stats shared with the threaded server
    /// front-end, when one wraps this engine (report-only; see
    /// [`crate::server`]). Folded into DGL `profileReport`s.
    server_stats: Option<std::sync::Arc<crate::server::ServerStats>>,
    /// Per-class SLA deadline budgets (see [`Dfms::set_class_objective`]):
    /// flows submitted with a matching reserved `dgf.class` variable
    /// inherit the class budget unless they carry their own
    /// `dgf.deadline`. Ordered so reports iterate deterministically.
    class_objectives: BTreeMap<String, Duration>,
}

impl Dfms {
    /// A DfMS over a grid, with the given scheduler.
    ///
    /// The engine owns the master [`Obs`] handle; clones are pushed into
    /// the scheduler and the trigger engine so every layer records into
    /// one shared flight recorder and metrics registry.
    pub fn new(grid: DataGrid, mut scheduler: Scheduler) -> Self {
        let obs = Obs::default();
        scheduler.set_obs(obs.clone());
        let mut triggers = TriggerEngine::new();
        triggers.set_obs(obs.clone());
        Dfms {
            grid,
            scheduler,
            binding: BindingCache::new(BindingMode::Late),
            triggers,
            catalog: VirtualDataCatalog::new(),
            queue: EventQueue::new(),
            runs: Vec::new(),
            txn_index: HashMap::new(),
            pending_ops: HashMap::new(),
            provenance: ProvenanceStore::new(),
            notifications: Vec::new(),
            obs,
            ilm_jobs: Vec::new(),
            procedures: HashMap::new(),
            next_txn: 1,
            journal: None,
            cmd_depth: 0,
            last_replay: None,
            time_travel: None,
            server_stats: None,
            class_objectives: BTreeMap::new(),
        }
    }

    /// Share the server front-end's contention stats with this engine so
    /// `profileQuery` responses can carry them (called by
    /// [`crate::server::DfmsServer::start`]).
    pub(crate) fn attach_server_stats(&mut self, stats: std::sync::Arc<crate::server::ServerStats>) {
        self.server_stats = Some(stats);
    }

    /// Switch the binding mode (default: late binding).
    pub fn set_binding_mode(&mut self, mode: BindingMode) {
        let el = self.should_journal().then(|| {
            recovery::command("bindingMode").with_attr(
                "mode",
                match mode {
                    BindingMode::Late => "late",
                    BindingMode::Early => "early",
                },
            )
        });
        self.with_command(el, |e| e.binding = BindingCache::new(mode));
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The underlying datagrid.
    pub fn grid(&self) -> &DataGrid {
        &self.grid
    }

    /// Mutable grid access (setup, fault injection).
    pub fn grid_mut(&mut self) -> &mut DataGrid {
        &mut self.grid
    }

    /// The trigger engine (register/remove triggers here).
    pub fn triggers_mut(&mut self) -> &mut TriggerEngine {
        &mut self.triggers
    }

    /// The trigger engine, read-only.
    pub fn triggers(&self) -> &TriggerEngine {
        &self.triggers
    }

    /// The provenance store.
    pub fn provenance(&self) -> &ProvenanceStore {
        &self.provenance
    }

    /// Replace the provenance store (reload from a snapshot).
    pub fn restore_provenance(&mut self, store: ProvenanceStore) {
        self.provenance = store;
    }

    /// Notifications emitted so far.
    pub fn notifications(&self) -> &[Notification] {
        &self.notifications
    }

    /// Engine counters, derived from the `engine` scope of the metrics
    /// registry (the legacy shape; see [`Dfms::metrics_snapshot`] for
    /// the full registry).
    pub fn metrics(&self) -> EngineMetrics {
        let s = self.obs.snapshot();
        let c = |name: &str| s.counter("engine", name);
        EngineMetrics {
            runs_submitted: c("runs.submitted"),
            runs_completed: c("runs.completed"),
            runs_failed: c("runs.failed"),
            steps_executed: c("steps.executed"),
            steps_skipped_virtual: c("steps.skipped.virtual"),
            steps_skipped_restart: c("steps.skipped.restart"),
            dgms_ops: c("dgms.ops"),
            bytes_moved: c("bytes.moved"),
            exec_tasks: c("exec.tasks"),
            trigger_firings: c("trigger.firings"),
            retries: c("step.retries"),
        }
    }

    /// The observability handle: flight recorder + metrics registry.
    /// Clones share state with the engine, so a handle taken before a
    /// run observes everything the run records.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// A full metrics snapshot across every scope, with the `grid`
    /// scope scraped live from the transfer model's lifetime totals.
    pub fn metrics_snapshot(&self) -> dgf_obs::MetricsSnapshot {
        let mut snap = self.obs.snapshot();
        let totals = self.grid.transfer_model().totals();
        snap.insert("grid", "transfers.started", dgf_obs::MetricValue::Counter(totals.started));
        snap.insert("grid", "transfers.bytes", dgf_obs::MetricValue::Counter(totals.bytes));
        snap
    }

    /// The virtual-data catalog.
    pub fn catalog(&self) -> &VirtualDataCatalog {
        &self.catalog
    }

    // ------------------------------------------------------------------
    // Live telemetry (time-series sampling, health watchdog, scrape/tail)
    // ------------------------------------------------------------------

    /// Configure the telemetry subsystem: the time-series sampling
    /// schedule and the flow-health watchdog deadlines. Both default to
    /// sensible values (see [`dgf_obs::SamplingConfig`] and
    /// [`dgf_obs::HealthConfig`]); call this before submitting flows to
    /// tighten or relax them.
    pub fn configure_telemetry(&mut self, sampling: dgf_obs::SamplingConfig, health: dgf_obs::HealthConfig) {
        self.obs.ts_configure(sampling);
        self.obs.health_configure(health);
    }

    /// Force a telemetry sample pass right now: every live gauge is
    /// appended to its time series, the flows-by-state and queue-depth
    /// gauges are refreshed, and the flow-health watchdog re-classifies
    /// every live flow (emitting `health.*` recorder events and the
    /// `dfms/flows_stalled` gauge on transitions).
    ///
    /// The event loop calls this automatically whenever the sampling
    /// interval has elapsed; operator surfaces call it before building
    /// a scrape so the report is never staler than "now".
    pub fn sample_telemetry(&mut self) {
        self.obs.set_now(self.now());
        self.obs.prof_enter(Phase::TelemetrySample);
        let topology = self.grid.topology();
        // Per-storage occupancy, labeled by resource name (sorted keys
        // keep the scrape stable; resource names are unique).
        for sid in topology.storage_ids().collect::<Vec<_>>() {
            let s = topology.storage(sid);
            self.obs.ts_record("storage.used_bytes", &s.name, s.used as i64);
        }
        // Per-link utilization: concurrently active transfers on each
        // link, labeled by its endpoint domains.
        for idx in 0..topology.link_count() {
            let id = dgf_simgrid::LinkId(idx as u32);
            let link = topology.link(id);
            let label = format!(
                "{}~{}",
                topology.domain(link.endpoints.0).name,
                topology.domain(link.endpoints.1).name
            );
            let active = self.grid.transfer_model().active_on(id);
            self.obs.ts_record("link.active_transfers", &label, active as i64);
        }
        // Per-cluster busy slots.
        for cid in topology.compute_ids().collect::<Vec<_>>() {
            let c = topology.compute(cid);
            self.obs.ts_record("compute.busy_slots", &c.name, c.busy as i64);
        }
        // Scheduler/engine load: event-queue depth and in-flight ops.
        self.obs.ts_record("engine.queue_depth", "", self.queue.len() as i64);
        self.obs.ts_record("engine.pending_ops", "", self.pending_ops.len() as i64);
        self.obs.gauge_set("engine", "queue.depth", self.queue.len() as i64);
        self.obs.gauge_set("engine", "pending.ops", self.pending_ops.len() as i64);
        self.obs.gauge_set(
            "grid",
            "transfers.active",
            self.grid.transfer_model().total_active_shares() as i64,
        );
        // Flows by state: every state is recorded each pass (zeros
        // included) so the series' label set never varies between runs.
        const STATES: [RunState; 7] = [
            RunState::Pending,
            RunState::Running,
            RunState::Paused,
            RunState::Completed,
            RunState::Failed,
            RunState::Stopped,
            RunState::Skipped,
        ];
        for state in STATES {
            let count = self.runs.iter().filter(|r| r.nodes[0].state == state).count() as i64;
            self.obs.ts_record("flows.state", &state.to_string(), count);
            self.obs.gauge_set("dfms", &format!("flows.{state}"), count);
        }
        self.obs.ts_mark_sampled();
        self.obs.health_check();
        self.obs.prof_exit(Phase::TelemetrySample);
    }

    /// The Prometheus-style text scrape: every current metric (including
    /// the live `grid` transfer totals) plus every time-series rollup,
    /// stable-ordered and deterministic across identically-seeded runs.
    pub fn telemetry_scrape(&self) -> String {
        let snap = self.metrics_snapshot();
        dgf_obs::render_scrape(&snap, &self.obs.ts_store(), self.obs.now())
    }

    /// Cursor-read the flight recorder: events with `seq >= cursor`
    /// (oldest first, at most `limit`), the cursor to resume from, and
    /// an explicit count of events the bounded ring evicted before the
    /// reader caught up. See [`dgf_obs::FlightRecorder::tail`].
    pub fn tail_events(&self, cursor: u64, limit: usize) -> dgf_obs::EventTail {
        self.obs.tail(cursor, limit)
    }

    /// Answer a DGL [`TelemetryQuery`]: samples fresh telemetry, then
    /// assembles the requested scrape and/or tail page.
    pub fn telemetry_query(&mut self, q: &TelemetryQuery) -> TelemetryReport {
        /// Tail page cap when the query does not name one.
        const DEFAULT_TAIL_LIMIT: usize = 256;
        self.sample_telemetry();
        let mut report = TelemetryReport { time_us: self.obs.now().0, ..TelemetryReport::default() };
        if q.scrape {
            report.scrape = Some(self.telemetry_scrape());
        }
        if let Some(cursor) = q.tail_from {
            let tail = self.tail_events(cursor, q.tail_limit.unwrap_or(DEFAULT_TAIL_LIMIT));
            report.events = tail
                .events
                .iter()
                .map(|e| dgf_dgl::ReportEvent {
                    time_us: e.time.0,
                    seq: e.seq,
                    kind: e.kind.name().to_owned(),
                    detail: e.kind.detail(),
                })
                .collect();
            report.next_cursor = Some(tail.next_cursor);
            report.dropped = Some(tail.dropped);
        }
        report
    }

    /// Answer a DGL [`dgf_dgl::ProfileQuery`]: snapshot the engine's
    /// phase-attribution tree (depth-first, children in phase-id order),
    /// optionally render the folded-stack text, and fold in the server
    /// front-end's contention counters when one is attached. With
    /// `reset`, the profile (and contention stats) restart from zero
    /// after the snapshot — interval profiling.
    pub fn profile_query(&mut self, q: &dgf_dgl::ProfileQuery) -> dgf_dgl::ProfileReport {
        self.obs.set_now(self.now());
        let snap = self.obs.profile_snapshot();
        let phases = snap
            .nodes
            .iter()
            .map(|n| dgf_dgl::ProfilePhase {
                depth: n.depth,
                phase: n.phase.name().to_owned(),
                calls: n.stats.calls,
                sim_us: n.stats.sim_us,
                wall_ns: n.stats.wall_ns,
                allocs: n.stats.allocs,
            })
            .collect();
        let folded = q.folded.then(|| snap.folded());
        let contention = self.server_stats.as_ref().map(|s| s.snapshot());
        if q.reset {
            self.obs.profile_reset();
            if let Some(stats) = &self.server_stats {
                stats.reset();
            }
        }
        dgf_dgl::ProfileReport { time_us: self.obs.now().0, phases, folded, contention }
    }

    /// The engine's current profile snapshot (phase tree). Operator
    /// surfaces that sit on the engine directly — examples, benches —
    /// use this; wire clients go through [`Dfms::profile_query`].
    pub fn profile_snapshot(&self) -> dgf_obs::ProfileSnapshot {
        self.obs.profile_snapshot()
    }

    /// Answer a DGL [`dgf_dgl::WhyQuery`]: snapshot the attribution
    /// engine — completed-flow critical paths, the aggregated
    /// wait-state bottleneck table, and SLA alert lifecycles, with
    /// burn rates computed against the engine clock. Read-only: alert
    /// transitions are derived on the event loop (a journaled command
    /// context), never from a query, so asking "why" cannot perturb
    /// what recovery replays.
    pub fn why_query(&mut self, q: &dgf_dgl::WhyQuery) -> dgf_dgl::WhyReport {
        self.obs.set_now(self.now());
        let now = self.now();
        let wanted =
            |flow: &str, txn: &str| q.flow.as_deref().map(|f| f == flow || f == txn).unwrap_or(true);
        let all_paths = self.obs.why_paths();
        let flows_analyzed = all_paths.len() as u64;
        let paths = if q.paths {
            all_paths.iter().filter(|p| wanted(&p.flow, &p.txn)).map(why_path_to_dgl).collect()
        } else {
            Vec::new()
        };
        let bottlenecks = self
            .obs
            .why_bottlenecks(q.top_k as usize)
            .iter()
            .map(|b| dgf_dgl::WhyBottleneck {
                state: wait_state_to_dgl(b.state),
                resource: b.resource.clone(),
                total_us: b.total_us,
                share_ppm: b.share_ppm,
            })
            .collect();
        let alerts = if q.alerts {
            self.obs
                .why_alerts()
                .iter()
                .filter(|a| wanted(&a.flow, &a.txn))
                .map(|a| why_alert_to_dgl(a, now))
                .collect()
        } else {
            Vec::new()
        };
        dgf_dgl::WhyReport {
            time_us: now.0,
            flows_analyzed,
            attributed_us: self.obs.why_attributed_us(),
            paths,
            bottlenecks,
            alerts,
        }
    }

    /// Register a per-class SLA deadline budget: a flow submitted with
    /// the reserved `dgf.class` variable equal to `class` (and no
    /// per-flow `dgf.deadline` override) gets `budget` as its
    /// deadline, measured from submission. Journaled as a command so
    /// recovery re-registers the objective before replaying the
    /// submissions it governs.
    pub fn set_class_objective(&mut self, class: &str, budget: Duration) {
        let el = self.should_journal().then(|| {
            recovery::command("classObjective")
                .with_attr("class", class)
                .with_attr("budgetUs", budget.0.to_string())
        });
        self.with_command(el, |e| {
            e.class_objectives.insert(class.to_owned(), budget);
        });
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    // ------------------------------------------------------------------
    // Submission and the DGL protocol
    // ------------------------------------------------------------------

    /// Handle a complete DGL request document, honoring its mode:
    /// synchronous requests pump the engine until the flow terminates
    /// and return its final status; asynchronous requests return an
    /// acknowledgement immediately (Appendix A).
    pub fn handle(&mut self, request: DataGridRequest) -> DataGridResponse {
        match &request.body {
            RequestBody::StatusQuery(q) => match self.status_query(q) {
                Ok(report) => DataGridResponse::status(&request.id, report),
                Err(e) => DataGridResponse::ack(
                    &request.id,
                    RequestAck { transaction: q.transaction.clone(), state: RunState::Failed, valid: false, message: Some(e.to_string()) },
                ),
            },
            RequestBody::Telemetry(q) => {
                let report = self.telemetry_query(&q.clone());
                DataGridResponse::telemetry(&request.id, report)
            }
            RequestBody::Validation(q) => {
                self.obs.set_now(self.now());
                self.obs.prof_enter(Phase::LintGate);
                let report = self.validate_flow(&q.flow, request.vo.as_deref());
                self.obs.prof_exit(Phase::LintGate);
                DataGridResponse::validation(&request.id, report)
            }
            RequestBody::Recovery(q) => {
                let mut report = self.recovery_query();
                if !q.flows {
                    report.flows.clear();
                }
                DataGridResponse::recovery(&request.id, report)
            }
            RequestBody::TimeTravel(q) => {
                let report = self.time_travel_query(&q.clone());
                DataGridResponse::time_travel(&request.id, report)
            }
            RequestBody::Profile(q) => {
                let report = self.profile_query(&q.clone());
                DataGridResponse::profile(&request.id, report)
            }
            RequestBody::Why(q) => {
                let report = self.why_query(&q.clone());
                DataGridResponse::why(&request.id, report)
            }
            RequestBody::Flow(_) => {
                let el = self
                    .should_journal()
                    .then(|| recovery::command("handle").with_child(request.to_element()));
                self.with_command(el, |e| e.handle_flow(request))
            }
        }
    }

    /// The flow-submission arm of [`Dfms::handle`] — one journaled
    /// command, covering the submission *and* (for synchronous requests)
    /// the pump to completion.
    fn handle_flow(&mut self, request: DataGridRequest) -> DataGridResponse {
        let mode = request.mode;
        let request_id = request.id.clone();
        match self.submit(request) {
            Ok(txn) => match mode {
                RequestMode::Asynchronous => DataGridResponse::ack(
                    &request_id,
                    RequestAck { transaction: txn, state: RunState::Pending, valid: true, message: None },
                ),
                RequestMode::Synchronous => {
                    self.pump_until_terminal(&txn);
                    let report = self
                        .status(&txn, None)
                        .expect("run exists: just submitted");
                    DataGridResponse::status(&request_id, report)
                }
            },
            Err(e) => DataGridResponse::ack(
                &request_id,
                RequestAck { transaction: String::new(), state: RunState::Failed, valid: false, message: Some(e.to_string()) },
            ),
        }
    }

    /// Handle a raw DGL XML document and answer with DGL XML.
    pub fn handle_xml(&mut self, xml: &str) -> String {
        self.obs.set_now(self.now());
        self.obs.prof_enter(Phase::DglParse);
        let parsed = dgf_dgl::parse_request(xml);
        self.obs.prof_exit(Phase::DglParse);
        match parsed {
            Ok(request) => self.handle(request).to_xml(),
            Err(e) => DataGridResponse::ack(
                "unparsed",
                RequestAck { transaction: String::new(), state: RunState::Failed, valid: false, message: Some(e.to_string()) },
            )
            .to_xml(),
        }
    }

    /// Submit a flow-execution request, returning its transaction id.
    /// The flow starts when the engine is pumped.
    pub fn submit(&mut self, request: DataGridRequest) -> Result<String, DfmsError> {
        let el = self
            .should_journal()
            .then(|| recovery::command("submit").with_child(request.to_element()));
        self.with_command(el, |e| e.submit_inner(request))
    }

    fn submit_inner(&mut self, request: DataGridRequest) -> Result<String, DfmsError> {
        let RequestBody::Flow(flow) = request.body else {
            return Err(DfmsError::Dgl(dgf_dgl::DglError::Invalid("submit expects a flow body".into())));
        };
        self.grid.users().get(&request.user).map_err(|_| DfmsError::UnknownUser(request.user.clone()))?;
        flow.validate()?;
        self.lint_gate(&flow, request.vo.as_deref())?;
        self.spawn_run(flow, &request.user, request.vo.clone(), &request.id, RunOptions::default())
    }

    /// Convenience: submit a flow for `user` with default options.
    pub fn submit_flow(&mut self, user: &str, flow: Flow) -> Result<String, DfmsError> {
        self.submit_flow_with(user, flow, RunOptions::default())
    }

    /// Submit with explicit run options (window, lineage, trigger depth).
    pub fn submit_flow_with(&mut self, user: &str, flow: Flow, options: RunOptions) -> Result<String, DfmsError> {
        let el = self.should_journal().then(|| {
            let mut el = recovery::command("submitFlow").with_attr("user", user).with_child(flow.to_element());
            if let Some(opts) = recovery::options_element(&options) {
                el.push_element(opts);
            }
            el
        });
        self.with_command(el, |e| e.submit_flow_with_inner(user, flow, options))
    }

    fn submit_flow_with_inner(&mut self, user: &str, flow: Flow, options: RunOptions) -> Result<String, DfmsError> {
        self.grid.users().get(user).map_err(|_| DfmsError::UnknownUser(user.to_owned()))?;
        flow.validate()?;
        self.lint_gate(&flow, None)?;
        self.spawn_run(flow, user, None, "api", options)
    }

    /// Run the static analyzer over a flow against this grid: def/use,
    /// control-flow, and feasibility passes (`dgf-lint`), with SLA
    /// matchmaking under `vo`. Pure query — records nothing.
    pub fn validate_flow(&self, flow: &Flow, vo: Option<&str>) -> ValidationReport {
        let ctx = dgf_lint::GridContext {
            topology: self.grid.topology(),
            infra: self.scheduler.infra(),
            vo,
        };
        dgf_lint::lint_with_grid(flow, &ctx)
    }

    /// The submit-time lint gate: every flow is analyzed before a
    /// transaction opens, the outcome lands in the flight recorder and
    /// metrics (`lint.*`), and error-severity diagnostics refuse the
    /// submission with the full report in the error.
    fn lint_gate(&mut self, flow: &Flow, vo: Option<&str>) -> Result<(), DfmsError> {
        self.obs.set_now(self.now());
        self.obs.prof_enter(Phase::LintGate);
        let report = self.validate_flow(flow, vo);
        self.obs.prof_exit(Phase::LintGate);
        let errors = report.errors() as u64;
        let warnings = report.warnings() as u64;
        let rejected = !report.valid;
        self.obs.inc("lint", "flows.checked");
        self.obs.add("lint", "diagnostics.errors", errors);
        self.obs.add("lint", "diagnostics.warnings", warnings);
        self.obs.record(ObsKind::LintReport { flow: report.flow.clone(), errors, warnings, rejected });
        if rejected {
            self.obs.inc("lint", "flows.rejected");
            return Err(DfmsError::Lint(report));
        }
        Ok(())
    }

    fn spawn_run(
        &mut self,
        flow: Flow,
        user: &str,
        vo: Option<String>,
        _request_id: &str,
        options: RunOptions,
    ) -> Result<String, DfmsError> {
        let txn = format!("t{}", self.next_txn);
        self.next_txn += 1;
        let id = RunId(self.runs.len() as u64);
        // SLA objective, read before the spec moves into the run: the
        // reserved `dgf.deadline` / `dgf.class` variables (or a
        // registered class budget) govern this flow's deadline.
        let sla = self.sla_objective(&flow);
        let lineage = options.lineage.clone().unwrap_or_else(|| txn.clone());
        let mut run = Run {
            txn: txn.clone(),
            lineage,
            user: user.to_owned(),
            vo,
            paused: false,
            stop_requested: false,
            options,
            nodes: Vec::new(),
            deferred: Vec::new(),
        };
        let name = flow.name.clone();
        let cursor = initial_cursor(&flow.logic.pattern);
        run.alloc(None, 0, name, NodeBody::Flow { spec: flow, children: Vec::new(), cursor });
        // Early binding (Pegasus-style up-front planning): pin a
        // placement for every statically addressable execute step now,
        // against the grid's *current* state. Loop bodies and templated
        // steps cannot be pre-planned and fall back to bind-at-start.
        if self.binding.mode() == dgf_scheduler::BindingMode::Early {
            let spec = match &run.nodes[0].body {
                NodeBody::Flow { spec, .. } => spec.clone(),
                NodeBody::Step { .. } => unreachable!(),
            };
            let mut specs = Vec::new();
            collect_execute_specs(&spec, "", &mut specs);
            self.obs.prof_enter(Phase::Schedule);
            for (path, step) in specs {
                if let Some(task) = abstract_task_from_spec(&step, run.vo.clone()) {
                    let key = format!("{}:{}", run.lineage, path);
                    let _ = self.binding.resolve(&mut self.scheduler, &self.grid, &key, &task, None);
                }
            }
            self.obs.prof_exit(Phase::Schedule);
        }
        let flow_name = run.nodes[0].name.clone();
        let lineage = run.lineage.clone();
        self.runs.push(run);
        self.txn_index.insert(txn.clone(), id);
        self.obs.set_now(self.now());
        // The root of the run's trace: every span below — requests,
        // bindings, DGMS ops, transfers, trigger actions — parents back
        // to this flow span.
        let flow_span = self.obs.span_start(SpanKind::Flow, &flow_name, None);
        self.obs.span_attr(flow_span, "txn", &txn);
        self.obs.span_attr(flow_span, "user", user);
        self.obs.span_attr(flow_span, "lineage", &lineage);
        self.runs[id.0 as usize].nodes[0].span = Some(flow_span);
        self.obs.inc("engine", "runs.submitted");
        self.obs.record(ObsKind::RunSubmitted { txn: txn.clone(), flow: flow_name.clone(), user: user.to_owned() });
        self.journal_transition(
            recovery::transition("run.submitted")
                .with_attr("txn", &txn)
                .with_attr("flow", &flow_name)
                .with_attr("user", user),
        );
        // Open the SLA alert in `pending`; the event loop moves it to
        // `firing`/`resolved`. The transition is journaled so recovery
        // replays the identical lifecycle.
        if let Some((class, budget)) = sla {
            let now = self.now();
            let deadline = now + budget;
            self.obs.record(ObsKind::SlaAlert {
                txn: txn.clone(),
                class: class.clone(),
                state: dgf_obs::AlertState::Pending,
                burn_ppm: 0,
            });
            if self.journal_transition(
                recovery::transition("alert")
                    .with_attr("txn", &txn)
                    .with_attr("class", &class)
                    .with_attr("state", "pending")
                    .with_attr("deadlineUs", deadline.0.to_string()),
            ) {
                self.obs.why_register_alert(dgf_obs::SlaAlert {
                    txn: txn.clone(),
                    class,
                    flow: flow_name.clone(),
                    started: now,
                    deadline,
                    state: dgf_obs::AlertState::Pending,
                    fired_at: None,
                    resolved_at: None,
                    breached: false,
                });
            }
        }
        // The watchdog counts submission as the first progress.
        self.obs.health_register(&txn);
        self.queue.schedule_in(Duration::ZERO, Work::Start { run: id, node: NodeId(0) });
        Ok(txn)
    }

    /// Resolve a flow's SLA deadline objective from its reserved
    /// variables: a positive `dgf.deadline` (budget in seconds) wins;
    /// otherwise a registered class budget matching `dgf.class`
    /// applies. Returns the objective class and budget, or `None` when
    /// the flow carries no objective.
    fn sla_objective(&self, flow: &Flow) -> Option<(String, Duration)> {
        let var = |name: &str| {
            flow.variables.iter().find(|v| v.name == name).map(|v| v.initial.as_str())
        };
        let class = var("dgf.class").map(str::to_owned);
        if let Some(budget) = var("dgf.deadline")
            .and_then(|t| Value::from_text(t).as_f64())
            .filter(|s| *s > 0.0)
        {
            return Some((class.unwrap_or_else(|| "flow".to_owned()), Duration::from_secs_f64(budget)));
        }
        let class = class?;
        let budget = *self.class_objectives.get(&class)?;
        Some((class, budget))
    }

    /// Register a recurring ILM job; its first run is scheduled at the
    /// next window opening.
    pub fn register_ilm_job(&mut self, job: IlmJob) -> usize {
        let idx = self.ilm_jobs.len();
        let first = job.next_start(self.now());
        self.ilm_jobs.push(job);
        self.queue.schedule_at(first, Work::IlmDue { job: idx });
        idx
    }

    // ------------------------------------------------------------------
    // Datagrid stored procedures (§2.2)
    // ------------------------------------------------------------------

    /// Register a named, parameterized flow — "datagrid stored
    /// procedures ... run from the DGMS itself rather than executing the
    /// procedure outside the DGMS using client side components" (§2.2).
    ///
    /// The flow's top-level variables are the procedure's parameters;
    /// callers override them per invocation.
    pub fn register_procedure(&mut self, name: impl Into<String>, flow: Flow) -> Result<(), DfmsError> {
        let name = name.into();
        let el = self
            .should_journal()
            .then(|| recovery::command("procedure").with_attr("name", &name).with_child(flow.to_element()));
        self.with_command(el, |e| {
            flow.validate()?;
            e.procedures.insert(name, flow);
            Ok(())
        })
    }

    /// Registered procedure names, sorted.
    pub fn procedures(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.procedures.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Invoke a stored procedure with parameter overrides. Returns the
    /// new transaction id; pump the engine to run it.
    pub fn call_procedure(
        &mut self,
        user: &str,
        name: &str,
        args: &[(&str, &str)],
    ) -> Result<String, DfmsError> {
        let el = self.should_journal().then(|| {
            let mut el = recovery::command("call").with_attr("user", user).with_attr("proc", name);
            for (arg, value) in args {
                el.push_element(Element::new("arg").with_attr("name", *arg).with_attr("value", *value));
            }
            el
        });
        self.with_command(el, |e| e.call_procedure_inner(user, name, args))
    }

    fn call_procedure_inner(
        &mut self,
        user: &str,
        name: &str,
        args: &[(&str, &str)],
    ) -> Result<String, DfmsError> {
        let mut flow = self
            .procedures
            .get(name)
            .cloned()
            .ok_or_else(|| DfmsError::UnknownTransaction(format!("procedure:{name}")))?;
        for (arg, value) in args {
            match flow.variables.iter_mut().find(|v| v.name == *arg) {
                Some(decl) => decl.initial = (*value).to_owned(),
                None => flow.variables.push(dgf_dgl::VarDecl::new(*arg, *value)),
            }
        }
        self.submit_flow(user, flow)
    }

    // ------------------------------------------------------------------
    // Pumping
    // ------------------------------------------------------------------

    /// Process every due event until the queue is empty. Returns the
    /// number of events processed.
    pub fn pump(&mut self) -> usize {
        let el = self.should_journal().then(|| recovery::command("pump"));
        self.with_command(el, |e| {
            let mut n = 0;
            while !e.replay_halted() {
                let Some((_, work)) = e.queue.pop() else { break };
                n += 1;
                e.dispatch(work);
            }
            n
        })
    }

    /// Process events until `txn`'s root is terminal (or the queue runs
    /// dry). ILM jobs reschedule themselves forever, so this also stops
    /// when only `IlmDue` work remains.
    pub fn pump_until_terminal(&mut self, txn: &str) {
        let el = self.should_journal().then(|| recovery::command("pumpTxn").with_attr("txn", txn));
        self.with_command(el, |e| {
            while !e.is_terminal(txn) && !e.replay_halted() {
                let Some((_, work)) = e.queue.pop() else { break };
                e.dispatch(work);
            }
        })
    }

    /// Process events with timestamps `<= until`.
    pub fn pump_until(&mut self, until: SimTime) -> usize {
        let el = self
            .should_journal()
            .then(|| recovery::command("pumpUntil").with_attr("until", until.0.to_string()));
        self.with_command(el, |e| {
            let mut n = 0;
            while !e.replay_halted() && e.queue.next_time().map(|t| t <= until).unwrap_or(false) {
                let (_, work) = e.queue.pop().expect("peeked");
                n += 1;
                e.dispatch(work);
            }
            // A halted time-travel replay must not advance the clock past
            // the limiting transition — "state at ordinal o" includes the
            // clock reading at that derivation.
            if !e.replay_halted() {
                e.queue.advance_to(until.max(e.queue.now()));
                // The advance may have carried the clock past a
                // deadline with no queued work left to observe it.
                e.obs.set_now(e.queue.now());
                e.evaluate_alerts();
            }
            n
        })
    }

    /// Advance SLA alert lifecycles to the engine clock: every pending
    /// alert whose deadline has passed moves to `firing`, recorded in
    /// the flight recorder AND journaled as a derived transition so a
    /// crash/recover cycle replays the identical lifecycle. Called
    /// only from journaled command contexts (the event loop and the
    /// `pump_until` tail) — read-only queries must never derive new
    /// transitions, or replay would diverge.
    fn evaluate_alerts(&mut self) {
        let now = self.now();
        for txn in self.obs.why_due_firings(now) {
            let Some(alert) = self.obs.why_alert(&txn) else { continue };
            let burn = alert.burn_ppm(now);
            self.obs.inc("engine", "sla.firings");
            self.obs.record(ObsKind::SlaAlert {
                txn: txn.clone(),
                class: alert.class.clone(),
                state: dgf_obs::AlertState::Firing,
                burn_ppm: burn,
            });
            if self.journal_transition(
                recovery::transition("alert")
                    .with_attr("txn", &txn)
                    .with_attr("state", "firing")
                    .with_attr("burnPpm", burn.to_string()),
            ) {
                self.obs.why_fire_alert(&txn, now);
            }
        }
    }

    fn is_terminal(&self, txn: &str) -> bool {
        self.txn_index
            .get(txn)
            .map(|id| self.runs[id.0 as usize].nodes[0].state.is_terminal())
            .unwrap_or(true)
    }

    // ------------------------------------------------------------------
    // Lifecycle (§3.1: start, stop, pause, restart)
    // ------------------------------------------------------------------

    fn run_id(&self, txn: &str) -> Result<RunId, DfmsError> {
        self.txn_index.get(txn).copied().ok_or_else(|| DfmsError::UnknownTransaction(txn.to_owned()))
    }

    /// Pause a running flow: in-flight operations finish, but no new
    /// steps dispatch until [`Dfms::resume`].
    pub fn pause(&mut self, txn: &str) -> Result<(), DfmsError> {
        let el = self.should_journal().then(|| recovery::command("pause").with_attr("txn", txn));
        self.with_command(el, |e| e.pause_inner(txn))
    }

    fn pause_inner(&mut self, txn: &str) -> Result<(), DfmsError> {
        let id = self.run_id(txn)?;
        let run = &mut self.runs[id.0 as usize];
        let state = run.nodes[0].state;
        if state.is_terminal() {
            return Err(DfmsError::BadLifecycle { transaction: txn.to_owned(), action: "pause", state: state.to_string() });
        }
        run.paused = true;
        Ok(())
    }

    /// Resume a paused flow.
    pub fn resume(&mut self, txn: &str) -> Result<(), DfmsError> {
        let el = self.should_journal().then(|| recovery::command("resume").with_attr("txn", txn));
        self.with_command(el, |e| e.resume_inner(txn))
    }

    fn resume_inner(&mut self, txn: &str) -> Result<(), DfmsError> {
        let id = self.run_id(txn)?;
        let run = &mut self.runs[id.0 as usize];
        if !run.paused {
            return Err(DfmsError::BadLifecycle {
                transaction: txn.to_owned(),
                action: "resume",
                state: run.nodes[0].state.to_string(),
            });
        }
        run.paused = false;
        let deferred = std::mem::take(&mut run.deferred);
        for work in deferred {
            self.queue.schedule_in(Duration::ZERO, work);
        }
        Ok(())
    }

    /// Stop a flow: every non-terminal node becomes `Stopped`; in-flight
    /// operations are aborted when their completions arrive.
    pub fn stop(&mut self, txn: &str) -> Result<(), DfmsError> {
        let el = self.should_journal().then(|| recovery::command("stop").with_attr("txn", txn));
        self.with_command(el, |e| e.stop_inner(txn))
    }

    fn stop_inner(&mut self, txn: &str) -> Result<(), DfmsError> {
        let id = self.run_id(txn)?;
        let now = self.now();
        let run = &mut self.runs[id.0 as usize];
        let state = run.nodes[0].state;
        if state.is_terminal() {
            return Err(DfmsError::BadLifecycle { transaction: txn.to_owned(), action: "stop", state: state.to_string() });
        }
        run.stop_requested = true;
        run.deferred.clear();
        run.stop_subtree(NodeId(0), now);
        let user = run.user.clone();
        let lineage = run.lineage.clone();
        let txn_s = run.txn.clone();
        let root_span = run.nodes[0].span;
        // Close every span the run still holds open (closing a closed
        // span is a no-op), so the timeline shows where the stop landed.
        let open_spans: Vec<SpanContext> = run.nodes.iter().filter_map(|n| n.span).collect();
        let record = ProvenanceRecord {
            lineage,
            transaction: txn_s.clone(),
            node: "/".into(),
            name: run.nodes[0].name.clone(),
            verb: "flow".into(),
            user,
            started: run.nodes[0].started,
            finished: now,
            outcome: StepOutcome::Stopped,
            detail: "stopped by lifecycle request".into(),
            trace_id: root_span.map(|s| s.trace.0),
            span_id: root_span.map(|s| s.span.0),
        };
        if self.journal_transition(recovery::transition("provenance").with_child(record.to_element())) {
            self.provenance.record(record);
        }
        for ctx in open_spans {
            self.obs.span_end_at(ctx, now);
        }
        self.obs.set_now(now);
        self.obs.record(ObsKind::ProvenanceWrite {
            txn: txn_s.clone(),
            node: "/".into(),
            verb: "flow".into(),
            outcome: "stopped".into(),
        });
        self.obs.record(ObsKind::RunFinished { txn: txn_s, state: "stopped".into() });
        Ok(())
    }

    /// Restart a stopped or failed flow as a new transaction in the same
    /// lineage: steps recorded `Completed` in provenance are skipped, so
    /// the new run resumes where the old one left off.
    pub fn restart(&mut self, txn: &str) -> Result<String, DfmsError> {
        let el = self.should_journal().then(|| recovery::command("restart").with_attr("txn", txn));
        self.with_command(el, |e| e.restart_inner(txn))
    }

    fn restart_inner(&mut self, txn: &str) -> Result<String, DfmsError> {
        let id = self.run_id(txn)?;
        let run = &self.runs[id.0 as usize];
        let state = run.nodes[0].state;
        if !matches!(state, RunState::Stopped | RunState::Failed) {
            return Err(DfmsError::BadLifecycle { transaction: txn.to_owned(), action: "restart", state: state.to_string() });
        }
        let spec = match &run.nodes[0].body {
            NodeBody::Flow { spec, .. } => spec.clone(),
            NodeBody::Step { .. } => unreachable!("roots are flows"),
        };
        let user = run.user.clone();
        let lineage = run.lineage.clone();
        let options = RunOptions { lineage: Some(lineage), ..run.options.clone() };
        self.submit_flow_with(&user, spec, options)
    }

    // ------------------------------------------------------------------
    // Status (§3.1: query the status of any process at any time)
    // ------------------------------------------------------------------

    /// Status of a transaction, optionally narrowed to one node path.
    pub fn status(&self, txn: &str, node: Option<&str>) -> Result<StatusReport, DfmsError> {
        let id = self.run_id(txn)?;
        let run = &self.runs[id.0 as usize];
        let node_id = match node {
            None => run.root(),
            Some(p) => run
                .find(p)
                .ok_or_else(|| DfmsError::UnknownNode { transaction: txn.to_owned(), node: p.to_owned() })?,
        };
        Ok(run.report(node_id))
    }

    fn status_query(&self, q: &FlowStatusQuery) -> Result<StatusReport, DfmsError> {
        let mut report = self.status(&q.transaction, q.node.as_deref())?;
        if let Some(limit) = q.events {
            report.events = self.report_events(&q.transaction, q.node.as_deref(), limit);
        }
        if q.metrics {
            report.metrics = self.report_metrics(&q.transaction);
        }
        if q.trace {
            report.spans = self.report_trace(&q.transaction, q.node.as_deref());
        }
        Ok(report)
    }

    /// The span tree of `txn`'s trace, optionally narrowed to the
    /// subtree under the span of the node at `node`. Creation order.
    fn report_trace(&self, txn: &str, node: Option<&str>) -> Vec<dgf_dgl::ReportSpan> {
        let Some(run_id) = self.txn_index.get(txn) else { return Vec::new() };
        let run = self.run_ref(*run_id);
        let Some(root_ctx) = run.nodes[0].span else { return Vec::new() };
        let spans = self.obs.trace_spans(root_ctx.trace);
        let subtree_root: Option<dgf_obs::SpanId> = match node {
            None | Some("/") => None,
            Some(p) => match run.find(p).and_then(|id| run.node(id).span) {
                Some(ctx) => Some(ctx.span),
                None => return Vec::new(), // node not started: nothing to show
            },
        };
        let parents: HashMap<dgf_obs::SpanId, Option<dgf_obs::SpanId>> =
            spans.iter().map(|s| (s.id, s.parent)).collect();
        let in_subtree = |mut id: dgf_obs::SpanId| -> bool {
            let Some(root) = subtree_root else { return true };
            loop {
                if id == root {
                    return true;
                }
                match parents.get(&id).copied().flatten() {
                    Some(parent) => id = parent,
                    None => return false,
                }
            }
        };
        spans
            .iter()
            .filter(|s| in_subtree(s.id))
            .map(|s| dgf_dgl::ReportSpan {
                id: s.id.0,
                parent: s.parent.map(|p| p.0),
                trace: s.trace.0,
                kind: s.kind.name().to_owned(),
                name: s.name.clone(),
                start_us: s.start.0,
                end_us: s.end.map(|t| t.0),
                attrs: s.attrs.clone(),
            })
            .collect()
    }

    /// The flight-recorder events attributable to `txn` (optionally
    /// narrowed to the subtree under `node`), oldest first, capped to
    /// the most recent `limit`.
    fn report_events(&self, txn: &str, node: Option<&str>, limit: usize) -> Vec<dgf_dgl::ReportEvent> {
        let mut events: Vec<_> = self
            .obs
            .events()
            .into_iter()
            .filter(|e| e.kind.transaction() == Some(txn))
            .filter(|e| match (node, e.kind.node()) {
                (None, _) | (Some("/"), _) => true,
                (Some(prefix), Some(n)) => n == prefix || n.starts_with(&format!("{prefix}/")),
                (Some(_), None) => false,
            })
            .collect();
        if events.len() > limit {
            events.drain(..events.len() - limit);
        }
        events
            .into_iter()
            .map(|e| dgf_dgl::ReportEvent {
                time_us: e.time.0,
                seq: e.seq,
                kind: e.kind.name().to_owned(),
                detail: e.kind.detail(),
            })
            .collect()
    }

    /// All metric samples visible to a status query on `txn`: every
    /// subsystem scope, plus `txn`'s own per-run scope — but not other
    /// transactions' per-run scopes.
    fn report_metrics(&self, txn: &str) -> Vec<dgf_dgl::ReportMetric> {
        let own_run_scope = format!("run:{txn}");
        self.metrics_snapshot()
            .samples
            .iter()
            .filter(|s| !s.scope.starts_with("run:") || s.scope == own_run_scope)
            .map(|s| dgf_dgl::ReportMetric {
                scope: s.scope.clone(),
                name: s.name.clone(),
                kind: s.value.kind().to_owned(),
                value: s.value.render(),
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // The event loop
    // ------------------------------------------------------------------

    fn dispatch(&mut self, work: Work) {
        // Stamp the shared observability clock so every event recorded
        // while handling this work item carries the simulation time.
        self.obs.set_now(self.now());
        // Opportunistic telemetry: sample gauges and run the health
        // watchdog whenever the sampling interval has elapsed. Driven
        // by the event loop, so sampling times are deterministic.
        if self.obs.ts_due() {
            self.sample_telemetry();
        }
        // Deadlines are pure clock facts: alert firings are evaluated
        // on every event-loop beat, before the work item runs.
        self.evaluate_alerts();
        self.obs.prof_enter(Phase::StepExecute);
        match work {
            Work::Start { run, node } => self.start_node(run, node),
            Work::OpDone { run, node } => self.op_done(run, node),
            Work::ExecDone { run, node, compute, outputs, code, inputs } => {
                self.exec_done(run, node, compute, outputs, code, inputs)
            }
            Work::IlmDue { job } => self.ilm_due(job),
        }
        self.obs.prof_exit(Phase::StepExecute);
    }

    fn run_ref(&self, id: RunId) -> &Run {
        &self.runs[id.0 as usize]
    }

    fn run_mut(&mut self, id: RunId) -> &mut Run {
        &mut self.runs[id.0 as usize]
    }

    fn start_node(&mut self, run_id: RunId, node_id: NodeId) {
        let now = self.now();
        {
            let run = self.run_ref(run_id);
            if run.stop_requested {
                return;
            }
            if run.paused {
                self.run_mut(run_id).deferred.push(Work::Start { run: run_id, node: node_id });
                return;
            }
            // Window gating: steps only dispatch inside the window.
            if let Some(window) = &run.options.window {
                if !window.is_open(now) {
                    let reopen = window.next_open(now);
                    let wait = window.wait_until_open(now);
                    let txn = run.txn.clone();
                    let path = run.path_of(node_id);
                    self.obs.inc("engine", "window.waits");
                    self.obs.observe("engine", "window.wait", wait);
                    // Attribution: the park interval is a wait mark so
                    // the critical path charges it to `window-closed`.
                    self.obs.why_mark(&txn, &path, dgf_obs::WaitState::WindowClosed, now, reopen, "window");
                    self.obs.record(ObsKind::WindowWait { txn, node: path, resume_us: reopen.0 });
                    self.queue.schedule_at(reopen, Work::Start { run: run_id, node: node_id });
                    return;
                }
            }
        }
        // Compute the node's scope: parent scope + fresh frame + declared vars.
        let parent_scope = {
            let run = self.run_ref(run_id);
            match self.run_ref(run_id).node(node_id).parent {
                Some(p) => run.node(p).scope.clone(),
                None => Scope::root(),
            }
        };
        let mut scope = parent_scope;
        scope.push();
        // Declare node variables (interpolated against the enclosing scope).
        let var_decls: Vec<(String, String)> = {
            let run = self.run_ref(run_id);
            let node = run.node(node_id);
            match &node.body {
                NodeBody::Flow { spec, .. } => spec.variables.iter().map(|v| (v.name.clone(), v.initial.clone())).collect(),
                NodeBody::Step { spec, .. } => spec.variables.iter().map(|v| (v.name.clone(), v.initial.clone())).collect(),
            }
        };
        for (name, initial) in var_decls {
            match interpolate(&initial, &scope) {
                Ok(text) => scope.declare(name, Value::from_text(&text)),
                Err(e) => {
                    self.fail_node(run_id, node_id, format!("variable {name:?}: {e}"));
                    return;
                }
            }
        }
        {
            let run = self.run_mut(run_id);
            let node = run.node_mut(node_id);
            node.state = RunState::Running;
            node.started = now;
            node.scope = scope;
        }
        // Open the node's request span under its parent's (the root's
        // flow span was opened at submission). A retry keeps its first
        // span: one span covers all attempts of the same node.
        if self.run_ref(run_id).node(node_id).span.is_none() {
            if let Some(parent) = self.run_ref(run_id).node(node_id).parent {
                let (parent_span, name, path) = {
                    let run = self.run_ref(run_id);
                    (run.node(parent).span, run.node(node_id).name.clone(), run.path_of(node_id))
                };
                let ctx = self.obs.span_start(SpanKind::Request, &name, parent_span);
                self.obs.span_attr(ctx, "node", &path);
                self.run_mut(run_id).node_mut(node_id).span = Some(ctx);
            }
        }
        // beforeEntry rules.
        if let Err(e) = self.run_rules(run_id, node_id, dgf_dgl::RULE_BEFORE_ENTRY) {
            self.fail_node(run_id, node_id, format!("beforeEntry: {e}"));
            return;
        }
        let is_step = self.run_ref(run_id).node(node_id).is_step();
        if is_step {
            let (txn, path, name) = {
                let run = self.run_ref(run_id);
                (run.txn.clone(), run.path_of(node_id), run.node(node_id).name.clone())
            };
            self.obs.record(ObsKind::StepStarted { txn: txn.clone(), node: path.clone(), name: name.clone() });
            self.journal_transition(
                recovery::transition("step.start")
                    .with_attr("txn", &txn)
                    .with_attr("node", &path)
                    .with_attr("name", &name),
            );
            self.start_step(run_id, node_id);
        } else {
            self.start_flow(run_id, node_id);
        }
    }

    // ------------------------------------------------------------------
    // Flow control patterns
    // ------------------------------------------------------------------

    fn start_flow(&mut self, run_id: RunId, node_id: NodeId) {
        let pattern = {
            let run = self.run_ref(run_id);
            match &run.node(node_id).body {
                NodeBody::Flow { spec, .. } => spec.logic.pattern.clone(),
                NodeBody::Step { .. } => unreachable!(),
            }
        };
        match pattern {
            ControlPattern::Sequential => self.advance_static(run_id, node_id),
            ControlPattern::Parallel => {
                // Materialize every spec child now.
                let count = self.spec_child_count(run_id, node_id);
                if count == 0 {
                    self.complete_node(run_id, node_id, Ok(()));
                    return;
                }
                if let NodeBody::Flow { cursor, .. } = &mut self.run_mut(run_id).node_mut(node_id).body {
                    *cursor = Cursor::Static { next_spec: count, outstanding: count, parallel: true };
                }
                for i in 0..count {
                    let child = self.materialize_spec_child(run_id, node_id, i);
                    self.queue.schedule_in(Duration::ZERO, Work::Start { run: run_id, node: child });
                }
            }
            ControlPattern::While(cond) => self.advance_while(run_id, node_id, &cond),
            ControlPattern::ForEach { var, source, parallel } => {
                let items = match self.resolve_items(run_id, node_id, &source) {
                    Ok(items) => items,
                    Err(e) => {
                        self.fail_node(run_id, node_id, format!("for-each source: {e}"));
                        return;
                    }
                };
                if items.is_empty() {
                    self.complete_node(run_id, node_id, Ok(()));
                    return;
                }
                if let NodeBody::Flow { cursor, .. } = &mut self.run_mut(run_id).node_mut(node_id).body {
                    *cursor = Cursor::ForEach { items: items.clone(), next: 0, outstanding: 0, parallel };
                }
                if parallel {
                    for (i, item) in items.iter().enumerate() {
                        let child = self.materialize_iteration(run_id, node_id, i, Some((var.clone(), item.clone())));
                        self.queue.schedule_in(Duration::ZERO, Work::Start { run: run_id, node: child });
                    }
                    if let NodeBody::Flow { cursor: Cursor::ForEach { next, outstanding, .. }, .. } =
                        &mut self.run_mut(run_id).node_mut(node_id).body
                    {
                        *next = items.len();
                        *outstanding = items.len();
                    }
                } else {
                    self.dispatch_next_foreach(run_id, node_id, var);
                }
            }
            ControlPattern::Switch { on, cases } => {
                let scope = self.run_ref(run_id).node(node_id).scope.clone();
                let selected = match on.eval(&scope) {
                    Ok(v) => {
                        let text = v.to_string();
                        let exact = cases.iter().position(|c| c.value.as_deref() == Some(text.as_str()));
                        exact.or_else(|| cases.iter().position(|c| c.value.is_none()))
                    }
                    Err(e) => {
                        self.fail_node(run_id, node_id, format!("switch: {e}"));
                        return;
                    }
                };
                match selected {
                    Some(idx) => {
                        let child = self.materialize_spec_child(run_id, node_id, idx);
                        self.queue.schedule_in(Duration::ZERO, Work::Start { run: run_id, node: child });
                    }
                    None => self.complete_node(run_id, node_id, Ok(())), // no arm matched
                }
            }
        }
    }

    /// Sequential dispatch: materialize and start the next spec child,
    /// or complete the flow.
    fn advance_static(&mut self, run_id: RunId, node_id: NodeId) {
        let (next, count) = {
            let run = self.run_ref(run_id);
            match &run.node(node_id).body {
                NodeBody::Flow { cursor: Cursor::Static { next_spec, .. }, spec, .. } => {
                    (*next_spec, spec_children_len(spec))
                }
                _ => unreachable!("advance_static on a static flow"),
            }
        };
        if next >= count {
            self.complete_node(run_id, node_id, Ok(()));
            return;
        }
        if let NodeBody::Flow { cursor: Cursor::Static { next_spec, .. }, .. } =
            &mut self.run_mut(run_id).node_mut(node_id).body
        {
            *next_spec += 1;
        }
        let child = self.materialize_spec_child(run_id, node_id, next);
        self.queue.schedule_in(Duration::ZERO, Work::Start { run: run_id, node: child });
    }

    /// While loop: re-check the condition; unroll the next iteration or
    /// finish.
    fn advance_while(&mut self, run_id: RunId, node_id: NodeId, cond: &Expr) {
        let (iterations, scope) = {
            let run = self.run_ref(run_id);
            let node = run.node(node_id);
            let iterations = match &node.body {
                NodeBody::Flow { cursor: Cursor::While { iterations }, .. } => *iterations,
                _ => 0,
            };
            (iterations, node.scope.clone())
        };
        if iterations >= MAX_LOOP_ITERATIONS {
            let txn = self.run_ref(run_id).txn.clone();
            let path = self.run_ref(run_id).path_of(node_id);
            self.fail_node(
                run_id,
                node_id,
                DfmsError::IterationLimit { transaction: txn, node: path, limit: MAX_LOOP_ITERATIONS }.to_string(),
            );
            return;
        }
        match cond.eval_bool(&scope) {
            Ok(true) => {
                if let NodeBody::Flow { cursor, .. } = &mut self.run_mut(run_id).node_mut(node_id).body {
                    *cursor = Cursor::While { iterations: iterations + 1 };
                }
                let idx = iterations as usize;
                let child = self.materialize_iteration(run_id, node_id, idx, None);
                self.queue.schedule_in(Duration::ZERO, Work::Start { run: run_id, node: child });
            }
            Ok(false) => self.complete_node(run_id, node_id, Ok(())),
            Err(e) => self.fail_node(run_id, node_id, format!("while condition: {e}")),
        }
    }

    fn dispatch_next_foreach(&mut self, run_id: RunId, node_id: NodeId, var: String) {
        let (next, items) = {
            let run = self.run_ref(run_id);
            match &run.node(node_id).body {
                NodeBody::Flow { cursor: Cursor::ForEach { next, items, .. }, .. } => (*next, items.clone()),
                _ => unreachable!(),
            }
        };
        if next >= items.len() {
            self.complete_node(run_id, node_id, Ok(()));
            return;
        }
        if let NodeBody::Flow { cursor: Cursor::ForEach { next, .. }, .. } =
            &mut self.run_mut(run_id).node_mut(node_id).body
        {
            *next += 1;
        }
        let child = self.materialize_iteration(run_id, node_id, next, Some((var, items[next].clone())));
        self.queue.schedule_in(Duration::ZERO, Work::Start { run: run_id, node: child });
    }

    /// Clone spec child `idx` of `parent` into a runtime node.
    fn materialize_spec_child(&mut self, run_id: RunId, parent: NodeId, idx: usize) -> NodeId {
        let (body, name, runtime_idx) = {
            let run = self.run_ref(run_id);
            match &run.node(parent).body {
                NodeBody::Flow { spec, children, .. } => {
                    let runtime_idx = children.len();
                    // Clone only the selected child spec — cloning the
                    // whole parent spec would make wide flows quadratic.
                    match &spec.children {
                        Children::Flows(flows) => {
                            let f = flows[idx].clone();
                            let name = f.name.clone();
                            let cursor = initial_cursor(&f.logic.pattern);
                            (NodeBody::Flow { spec: f, children: Vec::new(), cursor }, name, runtime_idx)
                        }
                        Children::Steps(steps) => {
                            let s = steps[idx].clone();
                            let name = s.name.clone();
                            (NodeBody::Step { spec: s, attempts: 0 }, name, runtime_idx)
                        }
                    }
                }
                NodeBody::Step { .. } => unreachable!(),
            }
        };
        let run = self.run_mut(run_id);
        let id = run.alloc(Some(parent), runtime_idx, name, body);
        if let NodeBody::Flow { children, .. } = &mut run.node_mut(parent).body {
            children.push(id);
        }
        id
    }

    /// Create an iteration wrapper: a sequential flow cloning the
    /// parent's spec children, optionally binding a loop variable.
    fn materialize_iteration(
        &mut self,
        run_id: RunId,
        parent: NodeId,
        iteration: usize,
        bind: Option<(String, String)>,
    ) -> NodeId {
        let (children_spec, runtime_idx) = {
            let run = self.run_ref(run_id);
            match &run.node(parent).body {
                NodeBody::Flow { spec, children, .. } => (spec.children.clone(), children.len()),
                NodeBody::Step { .. } => unreachable!(),
            }
        };
        let mut wrapper = Flow {
            name: format!("iter{iteration}"),
            variables: Vec::new(),
            logic: dgf_dgl::FlowLogic::sequential(),
            children: children_spec,
        };
        if let Some((var, item)) = bind {
            // Bind via a variable declaration; values are plain strings
            // (paths, names) so no interpolation hazards.
            wrapper.variables.push(dgf_dgl::VarDecl::new(var, item));
        }
        let cursor = initial_cursor(&wrapper.logic.pattern);
        let name = wrapper.name.clone();
        let run = self.run_mut(run_id);
        let id = run.alloc(Some(parent), runtime_idx, name, NodeBody::Flow { spec: wrapper, children: Vec::new(), cursor });
        if let NodeBody::Flow { children, .. } = &mut run.node_mut(parent).body {
            children.push(id);
        }
        id
    }

    fn spec_child_count(&self, run_id: RunId, node_id: NodeId) -> usize {
        match &self.run_ref(run_id).node(node_id).body {
            NodeBody::Flow { spec, .. } => spec_children_len(spec),
            NodeBody::Step { .. } => 0,
        }
    }

    fn resolve_items(&mut self, run_id: RunId, node_id: NodeId, source: &IterSource) -> Result<Vec<String>, DfmsError> {
        let scope = self.run_ref(run_id).node(node_id).scope.clone();
        match source {
            IterSource::Items(templates) => templates
                .iter()
                .map(|t| interpolate(t, &scope).map_err(DfmsError::from))
                .collect(),
            IterSource::Collection(template) => {
                let raw = interpolate(template, &scope)?;
                let path = LogicalPath::parse(&raw).map_err(DfmsError::from)?;
                Ok(self.grid.query(&path, &MetaQuery::Any).iter().map(|p| p.to_string()).collect())
            }
            IterSource::Query { collection, attribute, value } => {
                let raw = interpolate(collection, &scope)?;
                let path = LogicalPath::parse(&raw).map_err(DfmsError::from)?;
                let attribute = interpolate(attribute, &scope)?;
                let value = interpolate(value, &scope)?;
                Ok(self
                    .grid
                    .query(&path, &MetaQuery::Eq(attribute, value))
                    .iter()
                    .map(|p| p.to_string())
                    .collect())
            }
            IterSource::Variable(name) => {
                let v = scope
                    .get(name)
                    .cloned()
                    .ok_or_else(|| DfmsError::Dgl(dgf_dgl::DglError::UnknownVariable(name.clone())))?;
                match v {
                    Value::List(items) => Ok(items.iter().map(|i| i.to_string()).collect()),
                    other => Ok(vec![other.to_string()]),
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Steps
    // ------------------------------------------------------------------

    fn start_step(&mut self, run_id: RunId, node_id: NodeId) {
        // Restart memo: skip steps completed in an earlier transaction of
        // this lineage.
        let (lineage, path, is_restart) = {
            let run = self.run_ref(run_id);
            (run.lineage.clone(), run.path_of(node_id), run.options.lineage.is_some())
        };
        if is_restart && self.provenance.step_completed(&lineage, &path) {
            self.obs.inc("engine", "steps.skipped.restart");
            self.skip_node(run_id, node_id, "restart: completed in an earlier transaction");
            return;
        }
        // Replay memo: the journal recorded this step as completed before
        // the crash. Count it for `steps_skipped_restart`, then execute it
        // anyway — replay re-derives every effect, it never trusts state
        // it could recompute.
        if let Some(journal) = self.journal.as_mut() {
            if let Some(replay) = journal.replay.as_mut() {
                if replay.memo.remove(&(lineage.clone(), path.clone())) {
                    replay.skips += 1;
                    self.obs.inc("engine", "steps.skipped.restart");
                }
            }
        }
        let (op, scope) = {
            let run = self.run_ref(run_id);
            let node = run.node(node_id);
            match &node.body {
                NodeBody::Step { spec, .. } => (spec.operation.clone(), node.scope.clone()),
                NodeBody::Flow { .. } => unreachable!(),
            }
        };
        match op {
            DglOperation::Assign { variable, expr } => match expr.eval(&scope) {
                Ok(value) => {
                    self.run_mut(run_id).node_mut(node_id).scope.assign(&variable, value);
                    self.obs.inc("engine", "steps.executed");
                    self.complete_node(run_id, node_id, Ok(()));
                }
                Err(e) => self.step_failed(run_id, node_id, format!("assign: {e}")),
            },
            DglOperation::Notify { message } => match interpolate(&message, &scope) {
                Ok(rendered) => {
                    let txn = self.run_ref(run_id).txn.clone();
                    self.notifications.push(Notification { time: self.now(), source: txn, message: rendered });
                    self.obs.inc("engine", "steps.executed");
                    self.complete_node(run_id, node_id, Ok(()));
                }
                Err(e) => self.step_failed(run_id, node_id, format!("notify: {e}")),
            },
            DglOperation::Query { collection, attribute, value, into } => {
                let result: Result<Vec<Value>, DfmsError> = (|| {
                    let path = LogicalPath::parse(&interpolate(&collection, &scope)?)?;
                    let attribute = interpolate(&attribute, &scope)?;
                    let value = interpolate(&value, &scope)?;
                    Ok(self
                        .grid
                        .query(&path, &MetaQuery::Eq(attribute, value))
                        .iter()
                        .map(|p| Value::Str(p.to_string()))
                        .collect())
                })();
                match result {
                    Ok(items) => {
                        self.run_mut(run_id).node_mut(node_id).scope.assign(&into, Value::List(items));
                        self.obs.inc("engine", "steps.executed");
                        self.complete_node(run_id, node_id, Ok(()));
                    }
                    Err(e) => self.step_failed(run_id, node_id, format!("query: {e}")),
                }
            }
            DglOperation::Execute { .. } => self.start_execute(run_id, node_id),
            dgms_op => self.start_dgms_op(run_id, node_id, dgms_op),
        }
    }

    /// Translate a DGL operation into a DGMS operation with interpolation.
    fn build_dgms_op(&self, op: &DglOperation, scope: &Scope) -> Result<Operation, DfmsError> {
        let path = |template: &str| -> Result<LogicalPath, DfmsError> {
            Ok(LogicalPath::parse(&interpolate(template, scope)?)?)
        };
        let text = |template: &str| -> Result<String, DfmsError> { Ok(interpolate(template, scope)?) };
        Ok(match op {
            DglOperation::CreateCollection { path: p } => Operation::CreateCollection { path: path(p)? },
            DglOperation::Ingest { path: p, size, resource } => {
                let size_text = text(size)?;
                let size = Value::from_text(&size_text).as_i64().filter(|s| *s >= 0).ok_or_else(|| {
                    DfmsError::Dgl(dgf_dgl::DglError::Invalid(format!("ingest size {size_text:?} is not a byte count")))
                })? as u64;
                Operation::Ingest { path: path(p)?, size, resource: text(resource)? }
            }
            DglOperation::Replicate { path: p, src, dst } => Operation::Replicate {
                path: path(p)?,
                src: src.as_deref().map(text).transpose()?,
                dst: text(dst)?,
            },
            DglOperation::Migrate { path: p, from, to } => {
                Operation::Migrate { path: path(p)?, from: text(from)?, to: text(to)? }
            }
            DglOperation::Trim { path: p, resource } => Operation::Trim { path: path(p)?, resource: text(resource)? },
            DglOperation::Delete { path: p } => Operation::Delete { path: path(p)? },
            DglOperation::Rename { path: p, to } => Operation::Rename { path: path(p)?, to: path(to)? },
            DglOperation::Checksum { path: p, resource, register } => Operation::Checksum {
                path: path(p)?,
                resource: resource.as_deref().map(text).transpose()?,
                register: *register,
            },
            DglOperation::SetMetadata { path: p, attribute, value } => Operation::SetMetadata {
                path: path(p)?,
                triple: MetaTriple::new(text(attribute)?, text(value)?),
            },
            DglOperation::SetPermission { path: p, grantee, level } => {
                let level_text = text(level)?;
                let permission = match level_text.as_str() {
                    "read" => Permission::Read,
                    "write" => Permission::Write,
                    "own" => Permission::Own,
                    "none" => Permission::None,
                    other => {
                        return Err(DfmsError::Dgl(dgf_dgl::DglError::Invalid(format!(
                            "unknown permission level {other:?}"
                        ))))
                    }
                };
                Operation::SetPermission { path: path(p)?, grantee: text(grantee)?, permission }
            }
            DglOperation::Execute { .. }
            | DglOperation::Assign { .. }
            | DglOperation::Notify { .. }
            | DglOperation::Query { .. } => {
                unreachable!("handled before build_dgms_op")
            }
        })
    }

    fn start_dgms_op(&mut self, run_id: RunId, node_id: NodeId, dgl_op: DglOperation) {
        let now = self.now();
        let (scope, user, depth) = {
            let run = self.run_ref(run_id);
            (run.node(node_id).scope.clone(), run.user.clone(), run.options.trigger_depth)
        };
        let op = match self.build_dgms_op(&dgl_op, &scope) {
            Ok(op) => op,
            Err(e) => {
                self.step_failed(run_id, node_id, e.to_string());
                return;
            }
        };
        let node_span = self.run_ref(run_id).node(node_id).span;
        // BEFORE triggers observe the intent.
        let before_firings = self.triggers.before_op(&self.grid, &op, &user, now, depth, node_span);
        self.handle_firings(before_firings);
        match self.grid.begin(&user, op, now) {
            Ok(mut pending) => {
                let duration = pending.duration;
                let ctx = self.obs.span_start(SpanKind::DgmsOp, pending.op.verb(), node_span);
                self.obs.span_attr(ctx, "path", &pending.op.path().to_string());
                if pending.bytes_moved > 0 {
                    self.obs.span_attr(ctx, "bytes", &pending.bytes_moved.to_string());
                }
                // Endpoint attrs let the attribution engine charge
                // byte-moving ops to `transfer-on-link` with a concrete
                // src→dst blame label.
                match &pending.op {
                    Operation::Replicate { src, dst, .. } => {
                        if let Some(src) = src {
                            self.obs.span_attr(ctx, "src", src);
                        }
                        self.obs.span_attr(ctx, "dst", dst);
                    }
                    Operation::Ingest { resource, .. } => {
                        self.obs.span_attr(ctx, "dst", resource);
                    }
                    _ => {}
                }
                pending.ctx = Some(ctx);
                self.obs.add("engine", "bytes.moved", pending.bytes_moved);
                self.obs.inc("engine", "dgms.ops");
                self.pending_ops.insert((run_id, node_id.0), pending);
                self.queue.schedule_in(duration, Work::OpDone { run: run_id, node: node_id });
            }
            Err(e) => self.step_failed(run_id, node_id, e.to_string()),
        }
    }

    fn op_done(&mut self, run_id: RunId, node_id: NodeId) {
        let now = self.now();
        let Some(pending) = self.pending_ops.remove(&(run_id, node_id.0)) else {
            return; // stopped runs may have had their pendings dropped
        };
        let op_span = pending.ctx;
        if self.run_ref(run_id).stop_requested {
            if let Some(ctx) = op_span {
                self.obs.span_attr(ctx, "aborted", "stop requested");
                self.obs.span_end_at(ctx, now);
            }
            self.grid.abort(pending);
            return;
        }
        let was_verify = matches!(pending.op, Operation::Checksum { register: false, .. });
        match self.grid.complete(pending, now) {
            Ok(events) => {
                if let Some(ctx) = op_span {
                    self.obs.span_end_at(ctx, now);
                }
                let mismatch = events.iter().any(|e| e.kind == EventKind::ChecksumMismatch);
                self.after_events(&events, run_id, op_span);
                if was_verify && mismatch {
                    let detail = events
                        .iter()
                        .find(|e| e.kind == EventKind::ChecksumMismatch)
                        .map(|e| e.detail.clone())
                        .unwrap_or_default();
                    self.step_failed(run_id, node_id, format!("integrity violation: {detail}"));
                } else {
                    self.obs.inc("engine", "steps.executed");
                    self.complete_node(run_id, node_id, Ok(()));
                }
            }
            Err(e) => {
                if let Some(ctx) = op_span {
                    self.obs.span_attr(ctx, "error", &e.to_string());
                    self.obs.span_end_at(ctx, now);
                }
                self.step_failed(run_id, node_id, e.to_string());
            }
        }
    }

    /// Poll AFTER triggers for freshly emitted events. `cause` is the
    /// span of the activity that emitted them; firings parent their
    /// action spans under it.
    fn after_events(&mut self, _events: &[NamespaceEvent], run_id: RunId, cause: Option<SpanContext>) {
        let depth = self.run_ref(run_id).options.trigger_depth;
        self.obs.prof_enter(Phase::TriggerEval);
        let firings = self.triggers.poll(&self.grid, depth, cause);
        self.handle_firings(firings);
        self.obs.prof_exit(Phase::TriggerEval);
    }

    fn handle_firings(&mut self, firings: Vec<Firing>) {
        for firing in firings {
            let action_name = match &firing.action {
                TriggerAction::Notify(_) => "notify",
                TriggerAction::Flow(_) => "flow",
            };
            self.obs.inc("engine", "trigger.firings");
            self.obs.record(ObsKind::TriggerFired {
                trigger: firing.trigger.clone(),
                action: action_name.into(),
            });
            self.journal_transition(
                recovery::transition("trigger")
                    .with_attr("name", &firing.trigger)
                    .with_attr("action", action_name)
                    .with_attr("event", firing.event.kind.to_string()),
            );
            // The action span parents under the span of the activity that
            // emitted the matched event, chaining the firing back to its
            // causing flow.
            let span = self.obs.span_start(SpanKind::TriggerAction, &firing.trigger, firing.ctx);
            self.obs.span_attr(span, "action", action_name);
            self.obs.span_attr(span, "event", &firing.event.kind.to_string());
            match firing.action {
                TriggerAction::Notify(template) => {
                    let message = interpolate(&template, &firing.bindings)
                        .unwrap_or_else(|e| format!("<bad notify template: {e}>"));
                    self.notifications.push(Notification {
                        time: self.now(),
                        source: format!("trigger:{}", firing.trigger),
                        message,
                    });
                }
                TriggerAction::Flow(mut flow) => {
                    // Pre-bind the event variables so the flow's templates
                    // can reference them.
                    for name in ["event.path", "event.kind", "event.principal"] {
                        if let Some(v) = firing.bindings.get(name) {
                            flow.variables.insert(0, dgf_dgl::VarDecl::new(name, v.to_string()));
                        }
                    }
                    let options = RunOptions { trigger_depth: firing.depth, ..Default::default() };
                    // Trigger flows run as the trigger's owner.
                    if let Ok(txn) = self.submit_flow_with(&firing.owner.clone(), flow, options) {
                        self.obs.span_attr(span, "spawned.txn", &txn);
                        // The spawned flow roots its own trace; cross-link
                        // it back to the firing so causality survives the
                        // trace boundary.
                        if let Some(run_id) = self.txn_index.get(&txn).copied() {
                            if let Some(flow_span) = self.run_ref(run_id).nodes[0].span {
                                self.obs.span_attr(flow_span, "cause.trace", &span.trace.0.to_string());
                                self.obs.span_attr(flow_span, "cause.span", &span.span.0.to_string());
                                // Attribution reads this to charge the
                                // spawned flow's lead-in to the trigger.
                                self.obs.span_attr(flow_span, "cause.trigger", &firing.trigger);
                            }
                        }
                    }
                }
            }
            self.obs.span_end(span);
        }
    }

    // ------------------------------------------------------------------
    // Business-logic execution (scheduler + virtual data)
    // ------------------------------------------------------------------

    fn start_execute(&mut self, run_id: RunId, node_id: NodeId) {
        let now = self.now();
        let (spec, scope, vo, lineage, path_id) = {
            let run = self.run_ref(run_id);
            let node = run.node(node_id);
            let spec = match &node.body {
                NodeBody::Step { spec, .. } => spec.clone(),
                NodeBody::Flow { .. } => unreachable!(),
            };
            (spec, node.scope.clone(), run.vo.clone(), run.lineage.clone(), run.path_of(node_id))
        };
        let DglOperation::Execute { code, nominal_secs, resource_type, inputs, outputs } = &spec.operation else {
            unreachable!("start_execute on an execute step")
        };
        // Resolve the abstract task.
        let task: Result<AbstractTask, DfmsError> = (|| {
            let code = interpolate(code, &scope)?;
            let nominal_text = interpolate(nominal_secs, &scope)?;
            let nominal = Value::from_text(&nominal_text)
                .as_f64()
                .filter(|s| *s >= 0.0)
                .map(Duration::from_secs_f64)
                .ok_or_else(|| DfmsError::Dgl(dgf_dgl::DglError::Invalid(format!("bad nominalSecs {nominal_text:?}"))))?;
            let requirement = match resource_type {
                None => ResourceReq::default(),
                Some(spec_text) => {
                    let rendered = interpolate(spec_text, &scope)?;
                    ResourceReq::parse(&rendered).ok_or_else(|| {
                        DfmsError::Dgl(dgf_dgl::DglError::Invalid(format!("bad resourceType {rendered:?}")))
                    })?
                }
            };
            let inputs = inputs
                .iter()
                .map(|i| Ok(LogicalPath::parse(&interpolate(i, &scope)?)?))
                .collect::<Result<Vec<_>, DfmsError>>()?;
            let outputs = outputs
                .iter()
                .map(|(p, s)| {
                    let path = LogicalPath::parse(&interpolate(p, &scope)?)?;
                    let size_text = interpolate(s, &scope)?;
                    let size = Value::from_text(&size_text).as_i64().filter(|v| *v >= 0).ok_or_else(|| {
                        DfmsError::Dgl(dgf_dgl::DglError::Invalid(format!("bad output size {size_text:?}")))
                    })? as u64;
                    Ok((path, size))
                })
                .collect::<Result<Vec<_>, DfmsError>>()?;
            Ok(AbstractTask { code, nominal, inputs, outputs, requirement, vo })
        })();
        let task = match task {
            Ok(t) => t,
            Err(e) => {
                self.step_failed(run_id, node_id, e.to_string());
                return;
            }
        };
        // Virtual data: skip the derivation if its products exist.
        if self.catalog.lookup(&self.grid, &task.code, &task.inputs).is_some() {
            self.obs.inc("engine", "steps.skipped.virtual");
            self.skip_node(run_id, node_id, "virtual data: outputs already derived");
            return;
        }
        // Bind (late or early) to concrete infrastructure. The binding
        // span brackets planning; it is instantaneous in sim-time, so its
        // value is the parent chain and the plan/replay + placement attrs.
        let node_span = self.run_ref(run_id).node(node_id).span;
        let bind_span = self.obs.span_start(SpanKind::SchedulerBinding, &task.code, node_span);
        let binding_key = format!("{lineage}:{path_id}");
        self.obs.prof_enter(Phase::Schedule);
        let resolved = self.binding.resolve(&mut self.scheduler, &self.grid, &binding_key, &task, Some(bind_span));
        self.obs.prof_exit(Phase::Schedule);
        let placement =
            match resolved {
                Ok(p) => p,
                Err(e @ dgf_scheduler::PlannerError::NoEligibleResource { .. })
                    if self.scheduler.feasible_ever(&self.grid, &task) =>
                {
                    // The grid is saturated, not unsuitable: queue like a
                    // batch system and retry when capacity frees up.
                    let _ = e;
                    self.obs.span_attr(bind_span, "result", "queued");
                    self.obs.span_end(bind_span);
                    self.obs.inc("engine", "exec.queue.retries");
                    // Attribution: the mark tiles exactly one retry
                    // interval, so back-to-back retries merge into one
                    // `queued-for-cluster` critical-path segment
                    // blaming the saturated pool.
                    {
                        let txn = self.run_ref(run_id).txn.clone();
                        let pool = format!(
                            "pool:{}",
                            task.requirement.domain.as_deref().unwrap_or("grid")
                        );
                        self.obs.why_mark(
                            &txn,
                            &path_id,
                            dgf_obs::WaitState::QueuedForCluster,
                            now,
                            now + QUEUE_RETRY_INTERVAL,
                            &pool,
                        );
                    }
                    self.queue.schedule_in(QUEUE_RETRY_INTERVAL, Work::Start { run: run_id, node: node_id });
                    return;
                }
                Err(e) => {
                    self.obs.span_attr(bind_span, "error", &e.to_string());
                    self.obs.span_end(bind_span);
                    self.step_failed(run_id, node_id, e.to_string());
                    return;
                }
            };
        {
            let txn = self.run_ref(run_id).txn.clone();
            let topology = self.grid.topology();
            let compute = topology.compute(placement.compute).name.clone();
            let domain = topology.domain(placement.domain).name.clone();
            self.obs.span_attr(bind_span, "compute", &compute);
            self.obs.span_attr(bind_span, "domain", &domain);
            self.obs.span_end(bind_span);
            self.obs.record(ObsKind::PlannerDecision {
                txn: txn.clone(),
                node: path_id.clone(),
                code: task.code.clone(),
                compute: compute.clone(),
                domain: domain.clone(),
                est_us: (placement.estimate.stage_in + placement.estimate.exec).0,
            });
            self.journal_transition(
                recovery::transition("binding")
                    .with_attr("txn", &txn)
                    .with_attr("node", &path_id)
                    .with_attr("code", &task.code)
                    .with_attr("compute", &compute)
                    .with_attr("domain", &domain),
            );
        }
        // Claim the slot (early-bound placements may be stale).
        if !self.grid.topology_mut().compute_mut(placement.compute).claim_slot() {
            self.step_failed(
                run_id,
                node_id,
                format!("compute resource {} unavailable at execution time", self.grid.topology().compute(placement.compute).name),
            );
            return;
        }
        // Stage missing inputs (sequential transfers, real replicas).
        let user = self.run_ref(run_id).user.clone();
        let mut stage_total = Duration::ZERO;
        for plan in &placement.stage {
            if plan.is_local() {
                continue;
            }
            let dst_name = self.grid.topology().storage(plan.dst).name.clone();
            let src_name = self.grid.topology().storage(plan.src).name.clone();
            {
                let txn = self.run_ref(run_id).txn.clone();
                self.obs.record(ObsKind::TransferScheduled {
                    txn,
                    node: path_id.clone(),
                    path: plan.path.to_string(),
                    src: src_name.clone(),
                    dst: dst_name.clone(),
                    bytes: plan.bytes,
                });
            }
            // Transfers run sequentially: each span starts where the
            // previous one ended, ahead of the shared clock.
            let t_span =
                self.obs.span_start_at(now + stage_total, SpanKind::NetworkTransfer, "stage-in", node_span);
            self.obs.span_attr(t_span, "path", &plan.path.to_string());
            self.obs.span_attr(t_span, "src", &src_name);
            self.obs.span_attr(t_span, "dst", &dst_name);
            self.obs.span_attr(t_span, "bytes", &plan.bytes.to_string());
            let op = Operation::Replicate { path: plan.path.clone(), src: Some(src_name), dst: dst_name };
            match self.grid.execute(&user, op, now + stage_total) {
                Ok((d, events)) => {
                    stage_total += d;
                    self.obs.span_end_at(t_span, now + stage_total);
                    self.obs.inc("engine", "dgms.ops");
                    self.obs.add("engine", "bytes.moved", plan.bytes);
                    self.after_events(&events, run_id, Some(t_span));
                }
                Err(dgf_dgms::DgmsError::ReplicaExists { .. }) => {
                    // Another task staged it meanwhile; fine.
                    self.obs.span_attr(t_span, "result", "already staged");
                    self.obs.span_end_at(t_span, now + stage_total);
                }
                Err(e) => {
                    self.obs.span_attr(t_span, "error", &e.to_string());
                    self.obs.span_end_at(t_span, now + stage_total);
                    self.grid.topology_mut().compute_mut(placement.compute).release_slot();
                    self.step_failed(run_id, node_id, format!("staging {}: {e}", plan.path));
                    return;
                }
            }
        }
        // Output write time at the chosen stores.
        let mut output_total = Duration::ZERO;
        for (_, storage, bytes) in &placement.outputs {
            output_total += self.grid.topology().storage(*storage).access_time(*bytes);
        }
        let exec = placement.estimate.exec;
        self.obs.inc("engine", "exec.tasks");
        self.queue.schedule_in(
            stage_total + exec + output_total,
            Work::ExecDone {
                run: run_id,
                node: node_id,
                compute: placement.compute,
                outputs: placement.outputs.clone(),
                code: task.code.clone(),
                inputs: task.inputs.clone(),
            },
        );
    }

    fn exec_done(
        &mut self,
        run_id: RunId,
        node_id: NodeId,
        compute: ComputeId,
        outputs: Vec<(LogicalPath, StorageId, u64)>,
        code: String,
        inputs: Vec<LogicalPath>,
    ) {
        let now = self.now();
        self.grid.topology_mut().compute_mut(compute).release_slot();
        if self.run_ref(run_id).stop_requested {
            return;
        }
        let user = self.run_ref(run_id).user.clone();
        let node_span = self.run_ref(run_id).node(node_id).span;
        // Register outputs in the namespace.
        let mut output_paths = Vec::with_capacity(outputs.len());
        for (path, storage, bytes) in outputs {
            let resource = self.grid.topology().storage(storage).name.clone();
            let t_span = self.obs.span_start_at(now, SpanKind::NetworkTransfer, "output", node_span);
            self.obs.span_attr(t_span, "path", &path.to_string());
            self.obs.span_attr(t_span, "dst", &resource);
            self.obs.span_attr(t_span, "bytes", &bytes.to_string());
            match self.grid.execute(&user, Operation::Ingest { path: path.clone(), size: bytes, resource }, now) {
                Ok((_, events)) => {
                    self.obs.span_end_at(t_span, now);
                    self.obs.inc("engine", "dgms.ops");
                    self.after_events(&events, run_id, Some(t_span));
                    output_paths.push(path);
                }
                Err(dgf_dgms::DgmsError::AlreadyExists(_)) => {
                    self.obs.span_attr(t_span, "result", "already registered");
                    self.obs.span_end_at(t_span, now);
                    output_paths.push(path); // idempotent re-run
                }
                Err(e) => {
                    self.obs.span_attr(t_span, "error", &e.to_string());
                    self.obs.span_end_at(t_span, now);
                    self.step_failed(run_id, node_id, format!("registering output {path}: {e}"));
                    return;
                }
            }
        }
        self.catalog.register(&code, &inputs, &output_paths);
        self.obs.inc("engine", "steps.executed");
        self.complete_node(run_id, node_id, Ok(()));
    }

    // ------------------------------------------------------------------
    // Completion, failure, rules
    // ------------------------------------------------------------------

    fn skip_node(&mut self, run_id: RunId, node_id: NodeId, reason: &str) {
        let now = self.now();
        {
            let run = self.run_mut(run_id);
            let node = run.node_mut(node_id);
            node.state = RunState::Skipped;
            node.finished = now;
            node.message = Some(reason.to_owned());
        }
        self.record_node(run_id, node_id, StepOutcome::Skipped);
        self.child_finished(run_id, node_id, true);
    }

    fn fail_node(&mut self, run_id: RunId, node_id: NodeId, message: String) {
        let now = self.now();
        {
            let run = self.run_mut(run_id);
            let node = run.node_mut(node_id);
            node.state = RunState::Failed;
            node.finished = now;
            node.message = Some(message);
        }
        let _ = self.run_rules(run_id, node_id, dgf_dgl::RULE_AFTER_EXIT);
        self.record_node(run_id, node_id, StepOutcome::Failed);
        if self.run_ref(run_id).node(node_id).parent.is_none() {
            self.obs.inc("engine", "runs.failed");
            self.finish_run_obs(run_id, node_id, "failed");
        }
        self.child_finished(run_id, node_id, false);
    }

    /// Step-level failure: applies the step's error policy before
    /// escalating.
    fn step_failed(&mut self, run_id: RunId, node_id: NodeId, message: String) {
        let policy = {
            let run = self.run_ref(run_id);
            match &run.node(node_id).body {
                NodeBody::Step { spec, .. } => spec.on_error,
                NodeBody::Flow { .. } => dgf_dgl::ErrorPolicy::Fail,
            }
        };
        match policy {
            dgf_dgl::ErrorPolicy::Retry(max) => {
                let attempts = {
                    let run = self.run_mut(run_id);
                    match &mut run.node_mut(node_id).body {
                        NodeBody::Step { attempts, .. } => {
                            *attempts += 1;
                            *attempts
                        }
                        NodeBody::Flow { .. } => unreachable!(),
                    }
                };
                if attempts <= max {
                    self.obs.inc("engine", "step.retries");
                    {
                        let run = self.run_ref(run_id);
                        self.obs.record(ObsKind::FaultRetry {
                            txn: run.txn.clone(),
                            node: run.path_of(node_id),
                            attempt: attempts,
                        });
                    }
                    // Re-plan from scratch (late binding may choose a
                    // different resource this time).
                    self.queue.schedule_in(Duration::ZERO, Work::Start { run: run_id, node: node_id });
                    return;
                }
                self.fail_node(run_id, node_id, format!("{message} (after {max} retries)"));
            }
            dgf_dgl::ErrorPolicy::Ignore => {
                let now = self.now();
                {
                    let run = self.run_mut(run_id);
                    let node = run.node_mut(node_id);
                    node.state = RunState::Completed;
                    node.finished = now;
                    node.message = Some(format!("ignored failure: {message}"));
                }
                let _ = self.run_rules(run_id, node_id, dgf_dgl::RULE_AFTER_EXIT);
                self.record_node(run_id, node_id, StepOutcome::Completed);
                self.child_finished(run_id, node_id, true);
            }
            dgf_dgl::ErrorPolicy::Fail => self.fail_node(run_id, node_id, message),
        }
    }

    fn complete_node(&mut self, run_id: RunId, node_id: NodeId, outcome: Result<(), String>) {
        match outcome {
            Ok(()) => {
                let now = self.now();
                {
                    let run = self.run_mut(run_id);
                    let node = run.node_mut(node_id);
                    node.state = RunState::Completed;
                    node.finished = now;
                }
                let _ = self.run_rules(run_id, node_id, dgf_dgl::RULE_AFTER_EXIT);
                self.record_node(run_id, node_id, StepOutcome::Completed);
                if self.run_ref(run_id).node(node_id).parent.is_none() {
                    self.obs.inc("engine", "runs.completed");
                    self.finish_run_obs(run_id, node_id, "completed");
                }
                self.child_finished(run_id, node_id, true);
            }
            Err(message) => self.fail_node(run_id, node_id, message),
        }
    }

    /// Propagate a child's completion into its parent's cursor.
    fn child_finished(&mut self, run_id: RunId, child: NodeId, success: bool) {
        let Some(parent) = self.run_ref(run_id).node(child).parent else {
            return; // root finished
        };
        // Scope write-back for sequential contexts: assignments made by
        // the child become visible to later siblings and loop conditions.
        let sequential_parent = {
            let run = self.run_ref(run_id);
            matches!(
                &run.node(parent).body,
                NodeBody::Flow { cursor: Cursor::Static { parallel: false, .. }, .. }
                    | NodeBody::Flow { cursor: Cursor::While { .. }, .. }
                    | NodeBody::Flow { cursor: Cursor::ForEach { parallel: false, .. }, .. }
                    | NodeBody::Flow { cursor: Cursor::Switch, .. }
            )
        };
        if sequential_parent {
            let mut child_scope = self.run_ref(run_id).node(child).scope.clone();
            if child_scope.depth() > 1 {
                child_scope.pop();
                self.run_mut(run_id).node_mut(parent).scope = child_scope;
            }
        }
        if !success {
            // A failed/stopped child fails the whole parent (step-level
            // policies were already applied).
            let message = self.run_ref(run_id).node(child).message.clone();
            let child_name = self.run_ref(run_id).node(child).name.clone();
            self.fail_node(
                run_id,
                parent,
                format!("child {child_name:?} failed{}", message.map(|m| format!(": {m}")).unwrap_or_default()),
            );
            return;
        }
        let action = {
            let run = self.run_mut(run_id);
            match &mut run.node_mut(parent).body {
                NodeBody::Flow { cursor, .. } => match cursor {
                    Cursor::Static { parallel: false, .. } => AfterChild::AdvanceStatic,
                    Cursor::Static { parallel: true, outstanding, .. } => {
                        *outstanding -= 1;
                        if *outstanding == 0 {
                            AfterChild::Complete
                        } else {
                            AfterChild::Wait
                        }
                    }
                    Cursor::While { .. } => AfterChild::AdvanceWhile,
                    Cursor::ForEach { parallel: false, .. } => AfterChild::AdvanceForEach,
                    Cursor::ForEach { parallel: true, outstanding, .. } => {
                        *outstanding -= 1;
                        if *outstanding == 0 {
                            AfterChild::Complete
                        } else {
                            AfterChild::Wait
                        }
                    }
                    Cursor::Switch => AfterChild::Complete,
                },
                NodeBody::Step { .. } => unreachable!("steps have no children"),
            }
        };
        match action {
            AfterChild::Wait => {}
            AfterChild::Complete => self.complete_node(run_id, parent, Ok(())),
            AfterChild::AdvanceStatic => self.advance_static(run_id, parent),
            AfterChild::AdvanceWhile => {
                let cond = {
                    let run = self.run_ref(run_id);
                    match &run.node(parent).body {
                        NodeBody::Flow { spec, .. } => match &spec.logic.pattern {
                            ControlPattern::While(c) => c.clone(),
                            _ => unreachable!(),
                        },
                        NodeBody::Step { .. } => unreachable!(),
                    }
                };
                self.advance_while(run_id, parent, &cond);
            }
            AfterChild::AdvanceForEach => {
                let var = {
                    let run = self.run_ref(run_id);
                    match &run.node(parent).body {
                        NodeBody::Flow { spec, .. } => match &spec.logic.pattern {
                            ControlPattern::ForEach { var, .. } => var.clone(),
                            _ => unreachable!(),
                        },
                        NodeBody::Step { .. } => unreachable!(),
                    }
                };
                self.dispatch_next_foreach(run_id, parent, var);
            }
        }
    }

    fn record_node(&mut self, run_id: RunId, node_id: NodeId, outcome: StepOutcome) {
        self.obs.prof_enter(Phase::ProvenanceAppend);
        self.record_node_inner(run_id, node_id, outcome);
        self.obs.prof_exit(Phase::ProvenanceAppend);
    }

    fn record_node_inner(&mut self, run_id: RunId, node_id: NodeId, outcome: StepOutcome) {
        let run = self.run_ref(run_id);
        let node = run.node(node_id);
        let verb = match &node.body {
            NodeBody::Flow { .. } => "flow".to_owned(),
            NodeBody::Step { spec, .. } => spec.operation.verb().to_owned(),
        };
        let span = node.span;
        let record = ProvenanceRecord {
            lineage: run.lineage.clone(),
            transaction: run.txn.clone(),
            node: run.path_of(node_id),
            name: node.name.clone(),
            verb,
            user: run.user.clone(),
            started: node.started,
            finished: node.finished,
            outcome,
            detail: node.message.clone().unwrap_or_default(),
            trace_id: span.map(|s| s.trace.0),
            span_id: span.map(|s| s.span.0),
        };
        let is_step = node.is_step();
        let finished = node.finished;
        // Close the node's span where the node finished; the provenance
        // record above carries the (trace, span) join key.
        if let Some(ctx) = span {
            self.obs.span_attr(ctx, "outcome", outcome.as_str());
            self.obs.span_end_at(ctx, finished);
        }
        let duration = record.finished.since(record.started);
        self.obs.record(ObsKind::ProvenanceWrite {
            txn: record.transaction.clone(),
            node: record.node.clone(),
            verb: record.verb.clone(),
            outcome: outcome.as_str().into(),
        });
        self.obs.inc("engine", "provenance.writes");
        if is_step {
            self.obs.record(ObsKind::StepFinished {
                txn: record.transaction.clone(),
                node: record.node.clone(),
                name: record.name.clone(),
                outcome: outcome.as_str().into(),
            });
            self.obs.observe("engine", "step.duration", duration);
            let run_scope = format!("run:{}", record.transaction);
            self.obs.inc(&run_scope, &format!("steps.{}", outcome.as_str()));
            self.obs.observe(&run_scope, "step.duration", duration);
            // A finished step advances the flow's progress watermark
            // (the watchdog's definition of liveness).
            self.obs.health_progress(&record.transaction, finished);
        }
        if self.journal_transition(recovery::transition("provenance").with_child(record.to_element())) {
            self.provenance.record(record);
        }
    }

    /// Record the terminal flight-recorder event and run-duration sample
    /// for a root node reaching a terminal state.
    fn finish_run_obs(&mut self, run_id: RunId, node_id: NodeId, state: &str) {
        let run = self.run_ref(run_id);
        let node = run.node(node_id);
        let duration = node.finished.since(node.started);
        let finished = node.finished;
        let txn = run.txn.clone();
        let root_span = run.nodes[0].span;
        self.obs.observe("engine", "run.duration", duration);
        self.obs.record(ObsKind::RunFinished { txn: txn.clone(), state: state.into() });
        // Terminal flows leave the watchdog's watch list.
        self.obs.health_finish(&txn);
        // Resolve the flow's SLA alert: burn freezes at the terminal
        // instant, and `breached` records whether the flow ran past
        // its deadline. Journaled like the firing, so recovery replays
        // the full lifecycle byte-identically.
        if let Some(alert) = self.obs.why_alert(&txn) {
            if alert.state != dgf_obs::AlertState::Resolved {
                let breached = finished > alert.deadline;
                let burn = alert.burn_ppm(finished);
                self.obs.record(ObsKind::SlaAlert {
                    txn: txn.clone(),
                    class: alert.class.clone(),
                    state: dgf_obs::AlertState::Resolved,
                    burn_ppm: burn,
                });
                if self.journal_transition(
                    recovery::transition("alert")
                        .with_attr("txn", &txn)
                        .with_attr("state", "resolved")
                        .with_attr("breached", if breached { "true" } else { "false" })
                        .with_attr("burnPpm", burn.to_string()),
                ) {
                    self.obs.why_resolve_alert(&txn, finished, breached);
                }
            }
        }
        // Attribution: the root span was closed by the provenance
        // write just before this call; derive and retain the flow's
        // critical path. A pure function of spans + wait marks, so
        // recovery re-derives it — nothing to journal.
        if let Some(root) = root_span {
            self.obs.why_flow_finished(root);
        }
    }

    /// Run a node's user-defined rule with the given reserved name.
    ///
    /// Appendix A semantics: the tcondition is evaluated; the action
    /// whose *name* equals the result runs. A boolean `true` with a
    /// single action also selects it (the common unconditional case).
    /// Rule-action steps execute inline and atomically (entry/exit hooks
    /// are bookkeeping-weight: metadata, notifications, assignments).
    fn run_rules(&mut self, run_id: RunId, node_id: NodeId, rule_name: &str) -> Result<(), DfmsError> {
        let rules: Vec<UserDefinedRule> = {
            let run = self.run_ref(run_id);
            let node = run.node(node_id);
            let rules = match &node.body {
                NodeBody::Flow { spec, .. } => &spec.logic.rules,
                NodeBody::Step { spec, .. } => &spec.rules,
            };
            rules.iter().filter(|r| r.name == rule_name).cloned().collect()
        };
        for rule in rules {
            let scope = self.run_ref(run_id).node(node_id).scope.clone();
            let value = rule.condition.eval(&scope).map_err(DfmsError::from)?;
            let selected = rule
                .actions
                .iter()
                .find(|a| a.name == value.to_string())
                .or_else(|| {
                    if value.truthy() && rule.actions.len() == 1 {
                        Some(&rule.actions[0])
                    } else {
                        None
                    }
                })
                .cloned();
            if let Some(action) = selected {
                for step in &action.steps {
                    self.run_inline_step(run_id, node_id, step)?;
                }
            }
        }
        Ok(())
    }

    /// Execute one rule-action step synchronously at the current instant.
    fn run_inline_step(&mut self, run_id: RunId, node_id: NodeId, step: &Step) -> Result<(), DfmsError> {
        let now = self.now();
        let scope = self.run_ref(run_id).node(node_id).scope.clone();
        match &step.operation {
            DglOperation::Notify { message } => {
                let rendered = interpolate(message, &scope)?;
                let txn = self.run_ref(run_id).txn.clone();
                self.notifications.push(Notification { time: now, source: txn, message: rendered });
            }
            DglOperation::Assign { variable, expr } => {
                let value = expr.eval(&scope)?;
                self.run_mut(run_id).node_mut(node_id).scope.assign(variable, value);
            }
            DglOperation::Execute { .. } => {
                return Err(DfmsError::Dgl(dgf_dgl::DglError::Invalid(
                    "execute operations are not allowed in rule actions".into(),
                )));
            }
            other => {
                let user = self.run_ref(run_id).user.clone();
                let op = self.build_dgms_op(other, &scope)?;
                let (_, events) = self.grid.execute(&user, op, now)?;
                self.obs.inc("engine", "dgms.ops");
                let node_span = self.run_ref(run_id).node(node_id).span;
                self.after_events(&events, run_id, node_span);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // ILM jobs
    // ------------------------------------------------------------------

    fn ilm_due(&mut self, job_idx: usize) {
        let Some(job) = self.ilm_jobs.get(job_idx).cloned() else { return };
        let now = self.now();
        // Submit this period's run, window-constrained, as the job's user.
        let options = RunOptions { window: Some(job.window.clone()), ..Default::default() };
        let _ = self.submit_flow_with(&job.run_as, job.flow.clone(), options);
        let next = job.start_after(now);
        self.queue.schedule_at(next, Work::IlmDue { job: job_idx });
    }

    // ------------------------------------------------------------------
    // Journaling and crash recovery (see docs/RECOVERY.md)
    // ------------------------------------------------------------------

    /// Inject an infrastructure failure (or repair). Journaled as a
    /// command, so recovery replays the same outage timeline the live
    /// engine experienced.
    pub fn apply_failure_event(&mut self, event: FailureEvent) {
        let el = self.should_journal().then(|| recovery::failure_element(&event));
        self.with_command(el, |e| event.apply(e.grid.topology_mut()));
    }

    /// Should the current call journal itself as a command? Only
    /// top-level (depth-0) calls on a journaled engine that is not
    /// replaying: nested calls — trigger-spawned flows, the pump inside
    /// a synchronous `handle`, ILM submissions — are effects their
    /// parent command re-derives.
    fn should_journal(&self) -> bool {
        self.cmd_depth == 0 && self.journal.as_ref().map(|j| j.replay.is_none()).unwrap_or(false)
    }

    /// Run `f` as a command, journaling `el` *first* when present —
    /// write-ahead, so a crash mid-command replays the command to
    /// completion instead of losing it halfway.
    fn with_command<T>(&mut self, el: Option<Element>, f: impl FnOnce(&mut Self) -> T) -> T {
        if let Some(el) = el {
            self.journal_append_command(el);
        }
        self.cmd_depth += 1;
        let out = f(self);
        self.cmd_depth -= 1;
        if self.cmd_depth == 0 {
            self.maybe_auto_checkpoint();
        }
        out
    }

    /// Append a command record. A journal failure must not take the
    /// engine down mid-flow: it is counted on the `journal` metrics
    /// scope and execution proceeds (unjournaled until the disk heals).
    fn journal_append_command(&mut self, el: Element) {
        let Some(j) = self.journal.as_mut() else { return };
        let Some(journal) = j.journal.as_mut() else { return };
        self.obs.prof_enter(Phase::JournalAppend);
        let ok = journal.append(el).is_ok();
        let (sync_calls, sync_nanos) = journal.take_sync_profile();
        if ok {
            j.commands_since_checkpoint += 1;
        }
        self.obs.prof_record_leaf(Phase::JournalFsync, sync_calls, sync_nanos);
        self.obs.prof_exit(Phase::JournalAppend);
        if !ok {
            self.obs.inc("journal", "errors");
        }
    }

    /// Journal one derived effect — or, during replay, log it for the
    /// divergence check. Returns whether the transition's effect should
    /// apply: `false` only once a time-travel replay has derived past
    /// its ordinal limit (callers then suppress the provenance write).
    fn journal_transition(&mut self, body: Element) -> bool {
        if self.journal.is_none() {
            return true;
        }
        // A phase scope around the write *and* the fsyncs it triggered.
        self.obs.prof_enter(Phase::JournalAppend);
        let j = self.journal.as_mut().expect("checked above");
        let result = j.on_transition(body);
        let (sync_calls, sync_nanos) =
            j.journal.as_mut().map(Journal::take_sync_profile).unwrap_or((0, 0));
        self.obs.prof_record_leaf(Phase::JournalFsync, sync_calls, sync_nanos);
        self.obs.prof_exit(Phase::JournalAppend);
        match result {
            Ok(apply) => apply,
            Err(_) => {
                self.obs.inc("journal", "errors");
                true
            }
        }
    }

    /// Has a time-travel replay derived past its ordinal limit? Pump
    /// loops and the replay command script stop as soon as this turns
    /// true, freezing the engine at the requested ordinal.
    pub(crate) fn replay_halted(&self) -> bool {
        self.journal
            .as_ref()
            .and_then(|j| j.replay.as_ref())
            .map(|r| r.past_limit)
            .unwrap_or(false)
    }

    /// Write an automatic checkpoint when enough commands accumulated.
    fn maybe_auto_checkpoint(&mut self) {
        let due = self
            .journal
            .as_ref()
            .map(|j| {
                j.replay.is_none()
                    && j.config.checkpoint_every != 0
                    && j.commands_since_checkpoint >= j.config.checkpoint_every
            })
            .unwrap_or(false);
        if due && self.checkpoint().is_err() {
            self.obs.inc("journal", "errors");
        }
    }

    /// Write a checkpoint — the full provenance snapshot plus a
    /// flow-state summary — and compact the journal behind it when the
    /// config says so. Returns the checkpoint's sequence number, or
    /// `None` when no journal is attached (or replay is in progress).
    pub fn checkpoint(&mut self) -> Result<Option<u64>, DfmsError> {
        match self.journal.as_ref() {
            None => return Ok(None),
            Some(j) if j.replay.is_some() => return Ok(None),
            Some(_) => {}
        }
        let el = self.checkpoint_element();
        let j = self.journal.as_mut().expect("checked above");
        let Some(journal) = j.journal.as_mut() else { return Ok(None) };
        // No `?` between the phase enter and exit: a failed append or
        // compact must still close the scope.
        self.obs.prof_enter(Phase::JournalAppend);
        let appended = journal.append(el);
        let compacted = match &appended {
            Ok(seq) if j.config.compact_on_checkpoint => journal.compact(*seq).map(|_| ()),
            _ => Ok(()),
        };
        let (sync_calls, sync_nanos) = journal.take_sync_profile();
        self.obs.prof_record_leaf(Phase::JournalFsync, sync_calls, sync_nanos);
        self.obs.prof_exit(Phase::JournalAppend);
        let seq = appended?;
        compacted?;
        j.commands_since_checkpoint = 0;
        self.obs.inc("journal", "checkpoints");
        Ok(Some(seq))
    }

    /// The `<checkpoint>` body: engine clock, transaction counter, the
    /// provenance snapshot, and a per-flow summary.
    fn checkpoint_element(&self) -> Element {
        let mut flows = Element::new("flows");
        for run in &self.runs {
            let (done, total) = run.progress(run.root());
            flows.push_element(
                Element::new("flow")
                    .with_attr("transaction", &run.txn)
                    .with_attr("lineage", &run.lineage)
                    .with_attr("state", run.nodes[0].state.to_string())
                    .with_attr("stepsCompleted", done.to_string())
                    .with_attr("stepsTotal", total.to_string()),
            );
        }
        Element::new("checkpoint")
            .with_attr("time", self.now().0.to_string())
            .with_attr("nextTxn", self.next_txn.to_string())
            .with_child(self.provenance.snapshot_element())
            .with_child(flows)
    }

    /// Attach a fresh write-ahead journal at `path`.
    ///
    /// `label` pins the engine configuration: [`Dfms::recover`] refuses
    /// a journal whose genesis label differs from the one it is handed,
    /// because replay against a differently configured engine would
    /// silently diverge. Configure the grid, triggers, procedures, and
    /// ILM jobs *before* attaching — the factory passed to `recover`
    /// must rebuild exactly that state.
    ///
    /// Fails if a journal is already attached or `path` already holds
    /// records (recover from those instead).
    pub fn attach_journal(&mut self, path: &Path, label: &str, config: JournalConfig) -> Result<(), DfmsError> {
        if self.journal.is_some() {
            return Err(DfmsError::Recovery("a journal is already attached".into()));
        }
        let (journal, records, _) = Journal::open(path, config.sync)?;
        if !records.is_empty() {
            return Err(DfmsError::Recovery(format!(
                "{} already holds {} records; use Dfms::recover to replay them",
                path.display(),
                records.len()
            )));
        }
        self.journal = Some(EngineJournal::create(journal, label, config)?);
        Ok(())
    }

    /// Rebuild an engine from its journal after a crash.
    ///
    /// `factory` must build the same pre-journal configuration the dead
    /// engine had (same grid, scheduler, triggers, procedures, ILM
    /// jobs); `label` must match the journal's genesis label. Recovery
    /// opens the journal (truncating any torn tail), re-applies every
    /// journaled command in order — re-deriving all internal state,
    /// span ids included — verifies the re-derived transitions against
    /// the journaled ones, writes a fresh checkpoint, and returns the
    /// recovered engine with its [`dgf_dgl::RecoveryReport`].
    ///
    /// An empty or absent journal file degenerates to
    /// [`Dfms::attach_journal`]: the factory engine is returned as-is,
    /// journaled from now on.
    pub fn recover(
        path: &Path,
        label: &str,
        config: JournalConfig,
        factory: impl FnOnce() -> Dfms,
    ) -> Result<(Dfms, dgf_dgl::RecoveryReport), DfmsError> {
        let (journal, records, open) = Journal::open(path, config.sync)?;
        let mut engine = factory();
        if engine.journal.is_some() {
            return Err(DfmsError::Recovery("the recovery factory must build an unjournaled engine".into()));
        }
        if records.is_empty() {
            // Nothing journaled yet: recovery degenerates to attach.
            engine.journal = Some(EngineJournal::create(journal, label, config)?);
            let report = engine.recovery_query();
            return Ok((engine, report));
        }
        recovery::check_genesis(&records, label)?;
        // Partition the journal: commands are the replay script,
        // transitions the expectations, the last checkpoint (plus any
        // post-checkpoint provenance transitions) the completed-step
        // memo.
        let (commands, expected, memo) = recovery::partition(&records);
        debug_assert!(
            recovery::ordinals_aligned(&expected),
            "journal transition ordinals are not strictly increasing — compaction renumbered?"
        );
        engine.journal = Some(EngineJournal {
            journal: Some(journal),
            config,
            label: label.to_owned(),
            commands_since_checkpoint: 0,
            transitions_written: 0,
            replay: Some(ReplayState::new(memo, expected, None)),
        });
        engine.drive_replay(&commands);
        // Verify re-derived transitions against the journaled ones. The
        // ordinal `n` aligns them across compactions (compaction drops
        // old transitions, never renumbers the survivors).
        let replay = engine.take_replay().expect("installed above");
        let divergences = replay
            .expected
            .iter()
            .filter(|(n, xml)| {
                usize::try_from(*n).ok().and_then(|i| replay.derived.get(i)).map(String::as_str) != Some(xml)
            })
            .count() as u64;
        let stats = dgf_dgl::ReplayStats {
            truncated_bytes: open.truncated_bytes,
            commands_replayed: commands.len() as u64,
            records_matched: replay.expected.len() as u64 - divergences,
            divergences,
            steps_skipped_restart: replay.skips,
        };
        engine.last_replay = Some(stats);
        // Fold the replayed history into one fresh checkpoint (and
        // compact the tail behind it when configured).
        engine.checkpoint()?;
        let report = engine.recovery_query();
        Ok((engine, report))
    }

    /// Drive the replay script: re-apply journaled commands in order,
    /// stopping early if a time-travel ordinal limit halts the replay
    /// mid-script. Shared by [`Dfms::recover`] (no limit — the halt
    /// never fires) and [`Dfms::recover_to`]. Returns the number of
    /// commands applied before the halt.
    pub(crate) fn drive_replay(&mut self, commands: &[Element]) -> u64 {
        let mut applied = 0;
        for cmd in commands {
            if self.replay_halted() {
                break;
            }
            self.apply_command(cmd);
            applied += 1;
        }
        applied
    }

    /// Finish a replay: detach the [`ReplayState`] and reset the
    /// since-genesis transition counter to the *re-derived* count (not
    /// the record count the compacted file retains).
    pub(crate) fn take_replay(&mut self) -> Option<ReplayState> {
        let j = self.journal.as_mut()?;
        let replay = j.replay.take()?;
        j.transitions_written = replay.derived.len() as u64;
        Some(replay)
    }

    /// Re-apply one journaled command during replay. Unknown kinds are
    /// skipped (forward compatibility), and per-command errors are
    /// ignored: a command that failed live fails identically on replay.
    fn apply_command(&mut self, el: &Element) {
        match el.attr("kind") {
            Some("handle") => {
                if let Some(req) = el.child("dataGridRequest").and_then(|c| DataGridRequest::from_element(c).ok())
                {
                    let _ = self.handle(req);
                }
            }
            Some("submit") => {
                if let Some(req) = el.child("dataGridRequest").and_then(|c| DataGridRequest::from_element(c).ok())
                {
                    let _ = self.submit(req);
                }
            }
            Some("submitFlow") => {
                let user = el.attr("user").unwrap_or("").to_owned();
                let options = recovery::options_from_element(el.child("options"));
                if let Some(flow) = el.child("flow").and_then(|c| Flow::from_element(c).ok()) {
                    let _ = self.submit_flow_with(&user, flow, options);
                }
            }
            Some("procedure") => {
                let name = el.attr("name").unwrap_or("").to_owned();
                if let Some(flow) = el.child("flow").and_then(|c| Flow::from_element(c).ok()) {
                    let _ = self.register_procedure(name, flow);
                }
            }
            Some("call") => {
                let user = el.attr("user").unwrap_or("").to_owned();
                let proc = el.attr("proc").unwrap_or("").to_owned();
                let args: Vec<(String, String)> = el
                    .children_named("arg")
                    .filter_map(|a| Some((a.attr("name")?.to_owned(), a.attr("value")?.to_owned())))
                    .collect();
                let arg_refs: Vec<(&str, &str)> = args.iter().map(|(n, v)| (n.as_str(), v.as_str())).collect();
                let _ = self.call_procedure(&user, &proc, &arg_refs);
            }
            Some("pause") => {
                let _ = self.pause(el.attr("txn").unwrap_or(""));
            }
            Some("resume") => {
                let _ = self.resume(el.attr("txn").unwrap_or(""));
            }
            Some("stop") => {
                let _ = self.stop(el.attr("txn").unwrap_or(""));
            }
            Some("restart") => {
                let _ = self.restart(el.attr("txn").unwrap_or(""));
            }
            Some("pump") => {
                self.pump();
            }
            Some("pumpTxn") => {
                self.pump_until_terminal(el.attr("txn").unwrap_or(""));
            }
            Some("pumpUntil") => {
                if let Some(us) = el.attr("until").and_then(|v| v.parse().ok()) {
                    self.pump_until(SimTime(us));
                }
            }
            Some("classObjective") => {
                if let (Some(class), Some(us)) =
                    (el.attr("class"), el.attr("budgetUs").and_then(|v| v.parse().ok()))
                {
                    self.set_class_objective(class, Duration(us));
                }
            }
            Some("bindingMode") => {
                self.set_binding_mode(if el.attr("mode") == Some("early") {
                    BindingMode::Early
                } else {
                    BindingMode::Late
                });
            }
            Some("failure") => {
                if let Some(event) = recovery::failure_from_element(el) {
                    self.apply_failure_event(event);
                }
            }
            _ => {}
        }
    }

    /// Where the journal stands — and, when this engine was built by
    /// [`Dfms::recover`], how the replay went, per flow. This is the
    /// body behind the DGL `recoveryQuery` request.
    pub fn recovery_query(&self) -> dgf_dgl::RecoveryReport {
        let Some(journal) = self.journal.as_ref().and_then(|j| j.journal.as_ref()) else {
            return dgf_dgl::RecoveryReport::unjournaled(self.now().0);
        };
        dgf_dgl::RecoveryReport {
            time_us: self.now().0,
            journaled: true,
            journal_records: journal.records_in_file(),
            journal_bytes: journal.bytes(),
            last_checkpoint_seq: journal.last_checkpoint_seq(),
            replay: self.last_replay,
            flows: self.flow_summaries(),
        }
    }

    /// Per-flow state/progress summaries in submission order — the
    /// shape shared by the recovery and time-travel reports.
    pub fn flow_summaries(&self) -> Vec<dgf_dgl::FlowRecovery> {
        self.runs
            .iter()
            .map(|run| {
                let (done, total) = run.progress(run.root());
                let state = run.nodes[0].state;
                dgf_dgl::FlowRecovery {
                    transaction: run.txn.clone(),
                    lineage: run.lineage.clone(),
                    state,
                    steps_completed: done as u64,
                    steps_total: total as u64,
                    resumed: self.last_replay.is_some() && !state.is_terminal(),
                }
            })
            .collect()
    }

    /// The current value of flow variable `name` in `txn`'s root scope
    /// (`None` for unknown transactions or undeclared variables). This
    /// is the probe behind variable bisection — "when did `i` first
    /// become 3?" — in the time-travel console.
    pub fn flow_variable(&self, txn: &str, name: &str) -> Option<Value> {
        let id = self.txn_index.get(txn)?;
        self.runs[id.0 as usize].nodes[0].scope.get(name).cloned()
    }

    /// Replay statistics when this engine was built by [`Dfms::recover`]
    /// (`None` on engines started fresh).
    pub fn last_replay(&self) -> Option<dgf_dgl::ReplayStats> {
        self.last_replay
    }
}

enum AfterChild {
    Wait,
    Complete,
    AdvanceStatic,
    AdvanceWhile,
    AdvanceForEach,
}

fn initial_cursor(pattern: &ControlPattern) -> Cursor {
    match pattern {
        ControlPattern::Sequential => Cursor::Static { next_spec: 0, outstanding: 0, parallel: false },
        ControlPattern::Parallel => Cursor::Static { next_spec: 0, outstanding: 0, parallel: true },
        ControlPattern::While(_) => Cursor::While { iterations: 0 },
        ControlPattern::ForEach { parallel, .. } => {
            Cursor::ForEach { items: Vec::new(), next: 0, outstanding: 0, parallel: *parallel }
        }
        ControlPattern::Switch { .. } => Cursor::Switch,
    }
}

fn spec_children_len(spec: &Flow) -> usize {
    spec.children.len()
}

/// Collect (runtime path, step) pairs for execute steps whose runtime
/// node path is statically known: sequential/parallel flows materialize
/// children at their spec indices, so those paths are predictable.
fn collect_execute_specs(flow: &Flow, prefix: &str, out: &mut Vec<(String, Step)>) {
    if !matches!(flow.logic.pattern, ControlPattern::Sequential | ControlPattern::Parallel) {
        return; // loop/switch bodies get runtime-dependent paths
    }
    match &flow.children {
        Children::Flows(flows) => {
            for (i, f) in flows.iter().enumerate() {
                collect_execute_specs(f, &format!("{prefix}/{i}"), out);
            }
        }
        Children::Steps(steps) => {
            for (i, s) in steps.iter().enumerate() {
                if matches!(s.operation, DglOperation::Execute { .. }) {
                    out.push((format!("{prefix}/{i}"), s.clone()));
                }
            }
        }
    }
}

/// Resolve a spec step to an abstract task with an empty scope; steps
/// whose templates need runtime variables return `None` (bind later).
fn abstract_task_from_spec(step: &Step, vo: Option<String>) -> Option<AbstractTask> {
    let DglOperation::Execute { code, nominal_secs, resource_type, inputs, outputs } = &step.operation else {
        return None;
    };
    let scope = Scope::root();
    let code = interpolate(code, &scope).ok()?;
    let nominal = Value::from_text(&interpolate(nominal_secs, &scope).ok()?).as_f64().map(Duration::from_secs_f64)?;
    let requirement = match resource_type {
        None => ResourceReq::default(),
        Some(spec_text) => ResourceReq::parse(&interpolate(spec_text, &scope).ok()?)?,
    };
    let inputs = inputs
        .iter()
        .map(|i| interpolate(i, &scope).ok().and_then(|p| LogicalPath::parse(&p).ok()))
        .collect::<Option<Vec<_>>>()?;
    let outputs = outputs
        .iter()
        .map(|(p, s)| {
            let path = interpolate(p, &scope).ok().and_then(|x| LogicalPath::parse(&x).ok())?;
            let size = Value::from_text(&interpolate(s, &scope).ok()?).as_i64().filter(|v| *v >= 0)? as u64;
            Some((path, size))
        })
        .collect::<Option<Vec<_>>>()?;
    Some(AbstractTask { code, nominal, inputs, outputs, requirement, vo })
}

// ----------------------------------------------------------------------
// obs ↔ DGL attribution-type mapping (dgf-obs cannot see dgf-dgl, so
// the taxonomy enums exist in both crates; the engine is the bridge).
// ----------------------------------------------------------------------

fn wait_state_to_dgl(s: dgf_obs::WaitState) -> dgf_dgl::WaitState {
    match s {
        dgf_obs::WaitState::Executing => dgf_dgl::WaitState::Executing,
        dgf_obs::WaitState::QueuedForCluster => dgf_dgl::WaitState::QueuedForCluster,
        dgf_obs::WaitState::TransferOnLink => dgf_dgl::WaitState::TransferOnLink,
        dgf_obs::WaitState::WindowClosed => dgf_dgl::WaitState::WindowClosed,
        dgf_obs::WaitState::TriggerWait => dgf_dgl::WaitState::TriggerWait,
        dgf_obs::WaitState::LintAdmission => dgf_dgl::WaitState::LintAdmission,
    }
}

fn alert_state_to_dgl(s: dgf_obs::AlertState) -> dgf_dgl::AlertState {
    match s {
        dgf_obs::AlertState::Pending => dgf_dgl::AlertState::Pending,
        dgf_obs::AlertState::Firing => dgf_dgl::AlertState::Firing,
        dgf_obs::AlertState::Resolved => dgf_dgl::AlertState::Resolved,
    }
}

fn why_path_to_dgl(p: &dgf_obs::CriticalPath) -> dgf_dgl::WhyPath {
    dgf_dgl::WhyPath {
        txn: p.txn.clone(),
        flow: p.flow.clone(),
        start_us: p.start.0,
        end_us: p.end.0,
        caused_by: p.caused_by.clone(),
        segments: p
            .segments
            .iter()
            .map(|s| dgf_dgl::WhySegment {
                from_us: s.from.0,
                until_us: s.until.0,
                state: wait_state_to_dgl(s.state),
                resource: s.resource.clone(),
                node: s.node.clone(),
            })
            .collect(),
    }
}

/// Burn is computed against `now` for live alerts and frozen at
/// resolution for resolved ones (see [`dgf_obs::SlaAlert::burn_ppm`]).
fn why_alert_to_dgl(a: &dgf_obs::SlaAlert, now: SimTime) -> dgf_dgl::WhyAlert {
    dgf_dgl::WhyAlert {
        txn: a.txn.clone(),
        class: a.class.clone(),
        flow: a.flow.clone(),
        started_us: a.started.0,
        deadline_us: a.deadline.0,
        state: alert_state_to_dgl(a.state),
        burn_ppm: a.burn_ppm(now),
        fired_at_us: a.fired_at.map(|t| t.0),
        resolved_at_us: a.resolved_at.map(|t| t.0),
        breached: a.breached,
    }
}
