//! The provenance store.
//!
//! §3.1: the DfMS "must manage information about all workflows and their
//! tasks. This information would be queried and audited later" — for
//! persistent archives, "even (years) after the execution". The store is
//! an append-only record log with query, snapshot, and reload; restart
//! reads it to skip completed work.

use dgf_simgrid::SimTime;
use dgf_xml::Element;
use std::collections::HashSet;
use std::fmt;

/// Why a provenance snapshot could not be restored.
///
/// Archives live "for years" (§3.1): a restore that fails should say
/// exactly which record is damaged and how, not hand back a prose
/// string. Threads into [`crate::DfmsError::Provenance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProvenanceError {
    /// The document is not well-formed XML.
    Xml(String),
    /// The document is XML but its root is not `<provenance>`.
    WrongRoot {
        /// The root element actually found.
        found: String,
    },
    /// A `<record>` lacks a required attribute.
    MissingAttr {
        /// Zero-based index of the record in document order.
        record: usize,
        /// The absent attribute.
        attr: &'static str,
    },
    /// A `<record>` attribute is present but unparsable.
    BadAttr {
        /// Zero-based index of the record in document order.
        record: usize,
        /// The offending attribute.
        attr: &'static str,
        /// Its raw value.
        value: String,
    },
}

impl fmt::Display for ProvenanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProvenanceError::Xml(msg) => write!(f, "provenance snapshot is not XML: {msg}"),
            ProvenanceError::WrongRoot { found } => {
                write!(f, "expected <provenance>, found <{found}>")
            }
            ProvenanceError::MissingAttr { record, attr } => {
                write!(f, "provenance record #{record} missing {attr:?}")
            }
            ProvenanceError::BadAttr { record, attr, value } => {
                write!(f, "provenance record #{record} has bad {attr}: {value:?}")
            }
        }
    }
}

impl std::error::Error for ProvenanceError {}

/// How a step or flow node ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepOutcome {
    /// Ran to completion.
    Completed,
    /// Failed (after exhausting retries).
    Failed,
    /// Skipped: unselected switch arm, virtual-data hit, or restart memo.
    Skipped,
    /// Stopped by a lifecycle request.
    Stopped,
}

impl StepOutcome {
    /// Stable lower-case name ("completed", "failed", "skipped",
    /// "stopped") — the same token used in provenance XML and in
    /// flight-recorder events.
    pub fn as_str(self) -> &'static str {
        match self {
            StepOutcome::Completed => "completed",
            StepOutcome::Failed => "failed",
            StepOutcome::Skipped => "skipped",
            StepOutcome::Stopped => "stopped",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "completed" => StepOutcome::Completed,
            "failed" => StepOutcome::Failed,
            "skipped" => StepOutcome::Skipped,
            "stopped" => StepOutcome::Stopped,
            _ => return None,
        })
    }
}

/// One provenance record: a node of some run, with timing and outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceRecord {
    /// Lineage id: stable across restarts of the same logical process.
    pub lineage: String,
    /// The concrete transaction that executed this node.
    pub transaction: String,
    /// Hierarchical node path ("/0/3/1"; "/" is the root flow).
    pub node: String,
    /// DGL name of the flow/step.
    pub name: String,
    /// Operation verb ("replicate", "execute", "flow", ...).
    pub verb: String,
    /// Acting user.
    pub user: String,
    /// Start time.
    pub started: SimTime,
    /// End time.
    pub finished: SimTime,
    /// Outcome.
    pub outcome: StepOutcome,
    /// Free-form detail (failure message, chosen resource, digest, ...).
    pub detail: String,
    /// The trace this node's span belongs to, when the run was traced —
    /// the join key between the provenance log and the span timeline.
    pub trace_id: Option<u64>,
    /// The node's span id within that trace.
    pub span_id: Option<u64>,
}

impl ProvenanceRecord {
    /// Serialize as a `<record>` element — the row format of snapshots
    /// and of journal `provenance` transitions.
    pub fn to_element(&self) -> Element {
        let mut el = Element::new("record")
            .with_attr("lineage", &self.lineage)
            .with_attr("transaction", &self.transaction)
            .with_attr("node", &self.node)
            .with_attr("name", &self.name)
            .with_attr("verb", &self.verb)
            .with_attr("user", &self.user)
            .with_attr("started", self.started.0.to_string())
            .with_attr("finished", self.finished.0.to_string())
            .with_attr("outcome", self.outcome.as_str())
            .with_attr("detail", &self.detail);
        // Trace joins are omitted when unset so pre-tracing archives
        // round-trip byte-identically.
        if let Some(trace) = self.trace_id {
            el.set_attr("trace", trace.to_string());
        }
        if let Some(span) = self.span_id {
            el.set_attr("span", span.to_string());
        }
        el
    }

    /// Parse a `<record>` element; `index` positions the record in its
    /// containing document for error reporting.
    pub fn from_element(el: &Element, index: usize) -> Result<Self, ProvenanceError> {
        let attr = |name: &'static str| -> Result<String, ProvenanceError> {
            el.attr(name)
                .map(str::to_owned)
                .ok_or(ProvenanceError::MissingAttr { record: index, attr: name })
        };
        let bad = |name: &'static str, value: &str| ProvenanceError::BadAttr {
            record: index,
            attr: name,
            value: value.to_owned(),
        };
        let time = |name: &'static str| -> Result<SimTime, ProvenanceError> {
            let raw = attr(name)?;
            raw.parse::<u64>().map(SimTime).map_err(|_| bad(name, &raw))
        };
        let opt_id = |name: &'static str| -> Result<Option<u64>, ProvenanceError> {
            el.attr(name).map(|v| v.parse::<u64>().map_err(|_| bad(name, v))).transpose()
        };
        Ok(ProvenanceRecord {
            lineage: attr("lineage")?,
            transaction: attr("transaction")?,
            node: attr("node")?,
            name: attr("name")?,
            verb: attr("verb")?,
            user: attr("user")?,
            started: time("started")?,
            finished: time("finished")?,
            outcome: {
                let raw = attr("outcome")?;
                StepOutcome::parse(&raw).ok_or_else(|| bad("outcome", &raw))?
            },
            detail: attr("detail")?,
            trace_id: opt_id("trace")?,
            span_id: opt_id("span")?,
        })
    }
}

/// A filter over the store. Empty fields match everything.
#[derive(Debug, Clone, Default)]
pub struct ProvenanceQuery {
    /// Match this lineage.
    pub lineage: Option<String>,
    /// Match this transaction.
    pub transaction: Option<String>,
    /// Match nodes under this path prefix.
    pub node_prefix: Option<String>,
    /// Match this outcome.
    pub outcome: Option<StepOutcome>,
    /// Match records finishing at or after this time.
    pub since: Option<SimTime>,
}

impl ProvenanceQuery {
    /// Everything for one transaction.
    pub fn transaction(txn: &str) -> Self {
        ProvenanceQuery { transaction: Some(txn.to_owned()), ..Default::default() }
    }

    /// Everything for one lineage.
    pub fn lineage(lineage: &str) -> Self {
        ProvenanceQuery { lineage: Some(lineage.to_owned()), ..Default::default() }
    }

    fn matches(&self, r: &ProvenanceRecord) -> bool {
        self.lineage.as_deref().map(|l| r.lineage == l).unwrap_or(true)
            && self.transaction.as_deref().map(|t| r.transaction == t).unwrap_or(true)
            && self
                .node_prefix
                .as_deref()
                .map(|p| r.node == p || r.node.starts_with(&format!("{}/", p.trim_end_matches('/'))) || p == "/")
                .unwrap_or(true)
            && self.outcome.map(|o| r.outcome == o).unwrap_or(true)
            && self.since.map(|s| r.finished >= s).unwrap_or(true)
    }
}

/// The append-only provenance store.
#[derive(Debug, Default)]
pub struct ProvenanceStore {
    records: Vec<ProvenanceRecord>,
    completed_steps: HashSet<(String, String)>, // (lineage, node)
}

impl ProvenanceStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record.
    pub fn record(&mut self, record: ProvenanceRecord) {
        if record.outcome == StepOutcome::Completed && record.verb != "flow" {
            self.completed_steps.insert((record.lineage.clone(), record.node.clone()));
        }
        self.records.push(record);
    }

    /// Restart support: has a *step* at `node` already completed in this
    /// lineage (in any earlier transaction)?
    pub fn step_completed(&self, lineage: &str, node: &str) -> bool {
        self.completed_steps.contains(&(lineage.to_owned(), node.to_owned()))
    }

    /// Query, in record order.
    pub fn query(&self, q: &ProvenanceQuery) -> Vec<&ProvenanceRecord> {
        self.records.iter().filter(|r| q.matches(r)).collect()
    }

    /// All records.
    pub fn records(&self) -> &[ProvenanceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serialize to an XML document — the archival format persistent
    /// archives keep "for years".
    pub fn snapshot(&self) -> String {
        self.snapshot_element().to_xml_pretty()
    }

    /// The snapshot as an element tree, for embedding in larger
    /// documents (journal checkpoints embed one per checkpoint record).
    pub fn snapshot_element(&self) -> Element {
        let mut root = Element::new("provenance");
        for r in &self.records {
            root.push_element(r.to_element());
        }
        root
    }

    /// Reload a snapshot (e.g. in a fresh process, years later).
    pub fn restore(xml: &str) -> Result<Self, ProvenanceError> {
        let root = dgf_xml::parse(xml).map_err(|e| ProvenanceError::Xml(e.to_string()))?;
        Self::restore_element(&root)
    }

    /// Reload a snapshot from an already-parsed element tree (the form
    /// journal checkpoints carry).
    pub fn restore_element(root: &Element) -> Result<Self, ProvenanceError> {
        if root.name != "provenance" {
            return Err(ProvenanceError::WrongRoot { found: root.name.clone() });
        }
        let mut store = ProvenanceStore::new();
        for (i, el) in root.children_named("record").enumerate() {
            store.record(ProvenanceRecord::from_element(el, i)?);
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(txn: &str, node: &str, outcome: StepOutcome, finished_s: u64) -> ProvenanceRecord {
        ProvenanceRecord {
            lineage: "L1".into(),
            transaction: txn.into(),
            node: node.into(),
            name: format!("n{node}"),
            verb: "replicate".into(),
            user: "u".into(),
            started: SimTime::from_secs(finished_s.saturating_sub(1)),
            finished: SimTime::from_secs(finished_s),
            outcome,
            detail: String::new(),
            trace_id: None,
            span_id: None,
        }
    }

    #[test]
    fn queries_filter_precisely() {
        let mut s = ProvenanceStore::new();
        s.record(rec("t1", "/0", StepOutcome::Completed, 10));
        s.record(rec("t1", "/0/1", StepOutcome::Failed, 20));
        s.record(rec("t2", "/1", StepOutcome::Completed, 30));
        assert_eq!(s.query(&ProvenanceQuery::transaction("t1")).len(), 2);
        assert_eq!(s.query(&ProvenanceQuery::lineage("L1")).len(), 3);
        assert_eq!(
            s.query(&ProvenanceQuery { outcome: Some(StepOutcome::Failed), ..Default::default() }).len(),
            1
        );
        assert_eq!(
            s.query(&ProvenanceQuery { since: Some(SimTime::from_secs(25)), ..Default::default() }).len(),
            1
        );
        assert_eq!(
            s.query(&ProvenanceQuery { node_prefix: Some("/0".into()), ..Default::default() }).len(),
            2,
            "prefix matches the node and its descendants"
        );
        assert_eq!(
            s.query(&ProvenanceQuery { node_prefix: Some("/".into()), ..Default::default() }).len(),
            3
        );
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn completed_step_memo_powers_restart() {
        let mut s = ProvenanceStore::new();
        s.record(rec("t1", "/0", StepOutcome::Completed, 1));
        s.record(rec("t1", "/1", StepOutcome::Failed, 2));
        assert!(s.step_completed("L1", "/0"));
        assert!(!s.step_completed("L1", "/1"));
        assert!(!s.step_completed("L2", "/0"), "other lineages unaffected");
    }

    #[test]
    fn flow_records_do_not_memoize() {
        let mut s = ProvenanceStore::new();
        let mut r = rec("t1", "/", StepOutcome::Completed, 1);
        r.verb = "flow".into();
        s.record(r);
        assert!(!s.step_completed("L1", "/"), "flows re-execute; only steps skip");
    }

    #[test]
    fn snapshot_restores_bit_for_bit() {
        let mut s = ProvenanceStore::new();
        s.record(rec("t1", "/0", StepOutcome::Completed, 10));
        s.record(rec("t1", "/0/3", StepOutcome::Skipped, 11));
        let xml = s.snapshot();
        let restored = ProvenanceStore::restore(&xml).unwrap();
        assert_eq!(restored.records(), s.records());
        assert!(restored.step_completed("L1", "/0"), "memo rebuilt on restore");
    }

    #[test]
    fn restore_rejects_malformed_documents_with_typed_errors() {
        assert_eq!(
            ProvenanceStore::restore("<notProvenance/>").err(),
            Some(ProvenanceError::WrongRoot { found: "notProvenance".into() })
        );
        assert_eq!(
            ProvenanceStore::restore("<provenance><record/></provenance>").err(),
            Some(ProvenanceError::MissingAttr { record: 0, attr: "lineage" })
        );
        assert!(matches!(ProvenanceStore::restore("not xml"), Err(ProvenanceError::Xml(_))));
        let bad_time = r#"<provenance><record lineage="L" transaction="t" node="/" name="n" verb="v" user="u" started="soon" finished="2" outcome="completed" detail=""/></provenance>"#;
        assert_eq!(
            ProvenanceStore::restore(bad_time).err(),
            Some(ProvenanceError::BadAttr { record: 0, attr: "started", value: "soon".into() })
        );
        let bad_outcome = r#"<provenance><record lineage="L" transaction="t" node="/" name="n" verb="v" user="u" started="1" finished="2" outcome="shrugged" detail=""/></provenance>"#;
        assert_eq!(
            ProvenanceStore::restore(bad_outcome).err(),
            Some(ProvenanceError::BadAttr { record: 0, attr: "outcome", value: "shrugged".into() })
        );
        // Errors thread into the engine error type and keep their story.
        let e: crate::DfmsError = ProvenanceError::WrongRoot { found: "x".into() }.into();
        assert!(e.to_string().contains("expected <provenance>"));
    }
}
