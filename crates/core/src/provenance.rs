//! The provenance store.
//!
//! §3.1: the DfMS "must manage information about all workflows and their
//! tasks. This information would be queried and audited later" — for
//! persistent archives, "even (years) after the execution". The store is
//! an append-only record log with query, snapshot, and reload; restart
//! reads it to skip completed work.

use dgf_simgrid::SimTime;
use dgf_xml::Element;
use std::collections::HashSet;

/// How a step or flow node ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepOutcome {
    /// Ran to completion.
    Completed,
    /// Failed (after exhausting retries).
    Failed,
    /// Skipped: unselected switch arm, virtual-data hit, or restart memo.
    Skipped,
    /// Stopped by a lifecycle request.
    Stopped,
}

impl StepOutcome {
    /// Stable lower-case name ("completed", "failed", "skipped",
    /// "stopped") — the same token used in provenance XML and in
    /// flight-recorder events.
    pub fn as_str(self) -> &'static str {
        match self {
            StepOutcome::Completed => "completed",
            StepOutcome::Failed => "failed",
            StepOutcome::Skipped => "skipped",
            StepOutcome::Stopped => "stopped",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "completed" => StepOutcome::Completed,
            "failed" => StepOutcome::Failed,
            "skipped" => StepOutcome::Skipped,
            "stopped" => StepOutcome::Stopped,
            _ => return None,
        })
    }
}

/// One provenance record: a node of some run, with timing and outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceRecord {
    /// Lineage id: stable across restarts of the same logical process.
    pub lineage: String,
    /// The concrete transaction that executed this node.
    pub transaction: String,
    /// Hierarchical node path ("/0/3/1"; "/" is the root flow).
    pub node: String,
    /// DGL name of the flow/step.
    pub name: String,
    /// Operation verb ("replicate", "execute", "flow", ...).
    pub verb: String,
    /// Acting user.
    pub user: String,
    /// Start time.
    pub started: SimTime,
    /// End time.
    pub finished: SimTime,
    /// Outcome.
    pub outcome: StepOutcome,
    /// Free-form detail (failure message, chosen resource, digest, ...).
    pub detail: String,
    /// The trace this node's span belongs to, when the run was traced —
    /// the join key between the provenance log and the span timeline.
    pub trace_id: Option<u64>,
    /// The node's span id within that trace.
    pub span_id: Option<u64>,
}

/// A filter over the store. Empty fields match everything.
#[derive(Debug, Clone, Default)]
pub struct ProvenanceQuery {
    /// Match this lineage.
    pub lineage: Option<String>,
    /// Match this transaction.
    pub transaction: Option<String>,
    /// Match nodes under this path prefix.
    pub node_prefix: Option<String>,
    /// Match this outcome.
    pub outcome: Option<StepOutcome>,
    /// Match records finishing at or after this time.
    pub since: Option<SimTime>,
}

impl ProvenanceQuery {
    /// Everything for one transaction.
    pub fn transaction(txn: &str) -> Self {
        ProvenanceQuery { transaction: Some(txn.to_owned()), ..Default::default() }
    }

    /// Everything for one lineage.
    pub fn lineage(lineage: &str) -> Self {
        ProvenanceQuery { lineage: Some(lineage.to_owned()), ..Default::default() }
    }

    fn matches(&self, r: &ProvenanceRecord) -> bool {
        self.lineage.as_deref().map(|l| r.lineage == l).unwrap_or(true)
            && self.transaction.as_deref().map(|t| r.transaction == t).unwrap_or(true)
            && self
                .node_prefix
                .as_deref()
                .map(|p| r.node == p || r.node.starts_with(&format!("{}/", p.trim_end_matches('/'))) || p == "/")
                .unwrap_or(true)
            && self.outcome.map(|o| r.outcome == o).unwrap_or(true)
            && self.since.map(|s| r.finished >= s).unwrap_or(true)
    }
}

/// The append-only provenance store.
#[derive(Debug, Default)]
pub struct ProvenanceStore {
    records: Vec<ProvenanceRecord>,
    completed_steps: HashSet<(String, String)>, // (lineage, node)
}

impl ProvenanceStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record.
    pub fn record(&mut self, record: ProvenanceRecord) {
        if record.outcome == StepOutcome::Completed && record.verb != "flow" {
            self.completed_steps.insert((record.lineage.clone(), record.node.clone()));
        }
        self.records.push(record);
    }

    /// Restart support: has a *step* at `node` already completed in this
    /// lineage (in any earlier transaction)?
    pub fn step_completed(&self, lineage: &str, node: &str) -> bool {
        self.completed_steps.contains(&(lineage.to_owned(), node.to_owned()))
    }

    /// Query, in record order.
    pub fn query(&self, q: &ProvenanceQuery) -> Vec<&ProvenanceRecord> {
        self.records.iter().filter(|r| q.matches(r)).collect()
    }

    /// All records.
    pub fn records(&self) -> &[ProvenanceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serialize to an XML document — the archival format persistent
    /// archives keep "for years".
    pub fn snapshot(&self) -> String {
        let mut root = Element::new("provenance");
        for r in &self.records {
            let mut el = Element::new("record")
                .with_attr("lineage", &r.lineage)
                .with_attr("transaction", &r.transaction)
                .with_attr("node", &r.node)
                .with_attr("name", &r.name)
                .with_attr("verb", &r.verb)
                .with_attr("user", &r.user)
                .with_attr("started", r.started.0.to_string())
                .with_attr("finished", r.finished.0.to_string())
                .with_attr("outcome", r.outcome.as_str())
                .with_attr("detail", &r.detail);
            // Trace joins are omitted when unset so pre-tracing archives
            // round-trip byte-identically.
            if let Some(trace) = r.trace_id {
                el.set_attr("trace", trace.to_string());
            }
            if let Some(span) = r.span_id {
                el.set_attr("span", span.to_string());
            }
            root.push_element(el);
        }
        root.to_xml_pretty()
    }

    /// Reload a snapshot (e.g. in a fresh process, years later).
    pub fn restore(xml: &str) -> Result<Self, String> {
        let root = dgf_xml::parse(xml).map_err(|e| e.to_string())?;
        if root.name != "provenance" {
            return Err(format!("expected <provenance>, found <{}>", root.name));
        }
        let mut store = ProvenanceStore::new();
        for el in root.children_named("record") {
            let attr = |name: &str| -> Result<String, String> {
                el.attr(name).map(str::to_owned).ok_or_else(|| format!("record missing {name:?}"))
            };
            let time = |name: &str| -> Result<SimTime, String> {
                attr(name)?.parse::<u64>().map(SimTime).map_err(|e| format!("bad {name}: {e}"))
            };
            let opt_id = |name: &str| -> Result<Option<u64>, String> {
                el.attr(name)
                    .map(|v| v.parse::<u64>().map_err(|e| format!("bad {name}: {e}")))
                    .transpose()
            };
            store.record(ProvenanceRecord {
                lineage: attr("lineage")?,
                transaction: attr("transaction")?,
                node: attr("node")?,
                name: attr("name")?,
                verb: attr("verb")?,
                user: attr("user")?,
                started: time("started")?,
                finished: time("finished")?,
                outcome: StepOutcome::parse(&attr("outcome")?)
                    .ok_or_else(|| format!("bad outcome {:?}", el.attr("outcome")))?,
                detail: attr("detail")?,
                trace_id: opt_id("trace")?,
                span_id: opt_id("span")?,
            });
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(txn: &str, node: &str, outcome: StepOutcome, finished_s: u64) -> ProvenanceRecord {
        ProvenanceRecord {
            lineage: "L1".into(),
            transaction: txn.into(),
            node: node.into(),
            name: format!("n{node}"),
            verb: "replicate".into(),
            user: "u".into(),
            started: SimTime::from_secs(finished_s.saturating_sub(1)),
            finished: SimTime::from_secs(finished_s),
            outcome,
            detail: String::new(),
            trace_id: None,
            span_id: None,
        }
    }

    #[test]
    fn queries_filter_precisely() {
        let mut s = ProvenanceStore::new();
        s.record(rec("t1", "/0", StepOutcome::Completed, 10));
        s.record(rec("t1", "/0/1", StepOutcome::Failed, 20));
        s.record(rec("t2", "/1", StepOutcome::Completed, 30));
        assert_eq!(s.query(&ProvenanceQuery::transaction("t1")).len(), 2);
        assert_eq!(s.query(&ProvenanceQuery::lineage("L1")).len(), 3);
        assert_eq!(
            s.query(&ProvenanceQuery { outcome: Some(StepOutcome::Failed), ..Default::default() }).len(),
            1
        );
        assert_eq!(
            s.query(&ProvenanceQuery { since: Some(SimTime::from_secs(25)), ..Default::default() }).len(),
            1
        );
        assert_eq!(
            s.query(&ProvenanceQuery { node_prefix: Some("/0".into()), ..Default::default() }).len(),
            2,
            "prefix matches the node and its descendants"
        );
        assert_eq!(
            s.query(&ProvenanceQuery { node_prefix: Some("/".into()), ..Default::default() }).len(),
            3
        );
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn completed_step_memo_powers_restart() {
        let mut s = ProvenanceStore::new();
        s.record(rec("t1", "/0", StepOutcome::Completed, 1));
        s.record(rec("t1", "/1", StepOutcome::Failed, 2));
        assert!(s.step_completed("L1", "/0"));
        assert!(!s.step_completed("L1", "/1"));
        assert!(!s.step_completed("L2", "/0"), "other lineages unaffected");
    }

    #[test]
    fn flow_records_do_not_memoize() {
        let mut s = ProvenanceStore::new();
        let mut r = rec("t1", "/", StepOutcome::Completed, 1);
        r.verb = "flow".into();
        s.record(r);
        assert!(!s.step_completed("L1", "/"), "flows re-execute; only steps skip");
    }

    #[test]
    fn snapshot_restores_bit_for_bit() {
        let mut s = ProvenanceStore::new();
        s.record(rec("t1", "/0", StepOutcome::Completed, 10));
        s.record(rec("t1", "/0/3", StepOutcome::Skipped, 11));
        let xml = s.snapshot();
        let restored = ProvenanceStore::restore(&xml).unwrap();
        assert_eq!(restored.records(), s.records());
        assert!(restored.step_completed("L1", "/0"), "memo rebuilt on restore");
    }

    #[test]
    fn restore_rejects_malformed_documents() {
        assert!(ProvenanceStore::restore("<notProvenance/>").is_err());
        assert!(ProvenanceStore::restore("<provenance><record/></provenance>").is_err());
        assert!(ProvenanceStore::restore("not xml").is_err());
    }
}
