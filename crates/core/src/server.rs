//! The threaded server front-end.
//!
//! Appendix A's protocol is request/response over a connection; this
//! module provides that boundary: a [`DfmsServer`] owns the engine
//! behind a lock and a worker thread, and [`ServerHandle`]s (cloneable,
//! thread-safe) submit DGL XML documents and receive DGL XML responses.
//!
//! The *engine* stays deterministic — the worker serializes all requests
//! — but the client side exercises the real concurrency surface:
//! multiple client threads, asynchronous submissions, status polling.

use crate::engine::Dfms;
use crate::recovery::JournalConfig;
use crate::DfmsError;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

enum ClientMessage {
    Request { xml: String, reply: Sender<String>, enqueued_at: Instant },
    Shutdown,
}

/// One wall-clock histogram of the request path: count/sum/min/max in
/// nanoseconds. Deliberately coarse — the DGL `profileReport` carries
/// these four numbers per dimension, not bucket arrays.
#[derive(Debug, Default, Clone, Copy)]
struct WallHist {
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl WallHist {
    fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.sum_ns += ns;
    }

    fn to_report(self, name: &str) -> dgf_dgl::LockHistogram {
        dgf_dgl::LockHistogram {
            name: name.to_owned(),
            count: self.count,
            sum_ns: self.sum_ns,
            min_ns: self.min_ns,
            max_ns: self.max_ns,
        }
    }
}

/// Contention telemetry for the `Arc<Mutex<Dfms>>` request path:
/// queue depth, enqueue→dequeue wait, lock-acquire wait, and lock-hold
/// histograms. Shared between the client handles (enqueue side), the
/// worker (dequeue side), and the engine (which folds a snapshot into
/// DGL `profileReport`s).
///
/// Everything here is wall-clock and report-only: these numbers vary
/// between runs and never feed deterministic engine state or the
/// metrics registry the scrape-determinism gates cover.
#[derive(Debug, Default)]
pub(crate) struct ServerStats {
    enqueued: AtomicU64,
    served: AtomicU64,
    depth: AtomicU64,
    depth_max: AtomicU64,
    queue_wait: Mutex<WallHist>,
    lock_acquire: Mutex<WallHist>,
    lock_hold: Mutex<WallHist>,
}

impl ServerStats {
    /// Client side: a request just entered the channel.
    fn record_enqueue(&self) {
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.depth_max.fetch_max(depth, Ordering::Relaxed);
    }

    /// Worker side, after acquiring the engine lock: how long the
    /// request sat in the channel and how long the lock acquire took.
    fn record_waits(&self, queue_wait_ns: u64, lock_acquire_ns: u64) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
        self.queue_wait.lock().record(queue_wait_ns);
        self.lock_acquire.lock().record(lock_acquire_ns);
    }

    /// Worker side, after answering: how long the lock was held.
    fn record_hold(&self, lock_hold_ns: u64) {
        self.served.fetch_add(1, Ordering::Relaxed);
        self.lock_hold.lock().record(lock_hold_ns);
    }

    /// Requests served so far (survives a worker panic).
    pub(crate) fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Snapshot for a DGL `profileReport`.
    pub(crate) fn snapshot(&self) -> dgf_dgl::ServerContention {
        dgf_dgl::ServerContention {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            queue_depth_max: self.depth_max.load(Ordering::Relaxed),
            hists: vec![
                self.queue_wait.lock().to_report("queue-wait"),
                self.lock_acquire.lock().to_report("lock-acquire"),
                self.lock_hold.lock().to_report("lock-hold"),
            ],
        }
    }

    /// Zero every counter and histogram (interval profiling; the
    /// current queue depth is preserved — requests in flight still
    /// drain through `record_waits`).
    pub(crate) fn reset(&self) {
        self.enqueued.store(0, Ordering::Relaxed);
        self.served.store(0, Ordering::Relaxed);
        self.depth_max.store(self.depth.load(Ordering::Relaxed), Ordering::Relaxed);
        *self.queue_wait.lock() = WallHist::default();
        *self.lock_acquire.lock() = WallHist::default();
        *self.lock_hold.lock() = WallHist::default();
    }
}

/// Render a worker panic payload for the shutdown log: panics carry
/// `&str` or `String` in practice; anything else is named, not lost.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_owned())
}

/// A running DfMS server: an engine plus a worker thread draining a
/// request channel.
#[derive(Debug)]
pub struct DfmsServer {
    engine: Arc<Mutex<Dfms>>,
    sender: Sender<ClientMessage>,
    worker: Option<JoinHandle<u64>>,
    stats: Arc<ServerStats>,
}

/// A cloneable client handle to a [`DfmsServer`].
#[derive(Debug, Clone)]
pub struct ServerHandle {
    sender: Sender<ClientMessage>,
    stats: Arc<ServerStats>,
}

impl DfmsServer {
    /// Start a server around an engine.
    pub fn start(mut engine: Dfms) -> Self {
        let stats = Arc::new(ServerStats::default());
        engine.attach_server_stats(Arc::clone(&stats));
        let engine = Arc::new(Mutex::new(engine));
        let (sender, receiver): (Sender<ClientMessage>, Receiver<ClientMessage>) = unbounded();
        let worker_engine = Arc::clone(&engine);
        let worker_stats = Arc::clone(&stats);
        let worker = std::thread::Builder::new()
            .name("dfms-server".into())
            .spawn(move || {
                let mut served = 0u64;
                while let Ok(message) = receiver.recv() {
                    match message {
                        ClientMessage::Request { xml, reply, enqueued_at } => {
                            let dequeued = Instant::now();
                            let response = {
                                let mut engine = worker_engine.lock();
                                let locked = Instant::now();
                                // Record the waits before handling so a
                                // profileQuery carried by this request
                                // sees its own queue time.
                                worker_stats.record_waits(
                                    dequeued.duration_since(enqueued_at).as_nanos() as u64,
                                    locked.duration_since(dequeued).as_nanos() as u64,
                                );
                                engine.obs().inc("server", "requests.served");
                                let response = engine.handle_xml(&xml);
                                worker_stats.record_hold(locked.elapsed().as_nanos() as u64);
                                response
                            };
                            served += 1;
                            // A dropped client is not a server error.
                            let _ = reply.send(response);
                        }
                        ClientMessage::Shutdown => break,
                    }
                }
                served
            })
            .expect("spawning the DfMS worker thread");
        DfmsServer { engine, sender, worker: Some(worker), stats }
    }

    /// Start a server around an engine with a fresh write-ahead journal
    /// at `path` (see [`Dfms::attach_journal`] for the `label`
    /// contract). Every DGL command the server executes from here on is
    /// journaled before execution.
    pub fn start_journaled(
        mut engine: Dfms,
        path: &Path,
        label: &str,
        config: JournalConfig,
    ) -> Result<Self, DfmsError> {
        engine.attach_journal(path, label, config)?;
        Ok(Self::start(engine))
    }

    /// Boot a server by crash recovery: replay the journal at `path`
    /// against a factory-fresh engine (see [`Dfms::recover`]) and start
    /// serving on the recovered state. Returns the server and the
    /// recovery report describing what the replay did.
    pub fn recover(
        path: &Path,
        label: &str,
        config: JournalConfig,
        factory: impl FnOnce() -> Dfms,
    ) -> Result<(Self, dgf_dgl::RecoveryReport), DfmsError> {
        let (engine, report) = Dfms::recover(path, label, config, factory)?;
        Ok((Self::start(engine), report))
    }

    /// A client handle (cheap to clone, safe to share across threads).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { sender: self.sender.clone(), stats: Arc::clone(&self.stats) }
    }

    /// Direct, locked access to the engine (tests, administration).
    pub fn engine(&self) -> Arc<Mutex<Dfms>> {
        Arc::clone(&self.engine)
    }

    /// Stop the worker and return (requests served, the engine).
    ///
    /// If the worker thread panicked, the panic is logged (payload
    /// included) rather than swallowed, and the served count falls back
    /// to the shared `ServerStats` counter — which is exact up to the
    /// request that killed the worker.
    pub fn shutdown(mut self) -> (u64, Arc<Mutex<Dfms>>) {
        let _ = self.sender.send(ClientMessage::Shutdown);
        let served = match self.worker.take().expect("worker present until shutdown").join() {
            Ok(served) => served,
            Err(payload) => {
                eprintln!("dfms-server worker panicked: {}", panic_message(payload.as_ref()));
                self.stats.served()
            }
        };
        (served, Arc::clone(&self.engine))
    }
}

impl Drop for DfmsServer {
    fn drop(&mut self) {
        let _ = self.sender.send(ClientMessage::Shutdown);
        if let Some(worker) = self.worker.take() {
            if let Err(payload) = worker.join() {
                eprintln!("dfms-server worker panicked: {}", panic_message(payload.as_ref()));
            }
        }
    }
}

impl ServerHandle {
    /// Send a DGL XML request and wait for the DGL XML response.
    ///
    /// Returns `None` *only* if the server has shut down. Malformed or
    /// unrecognized documents still get a structured DGL error response
    /// (an invalid [`dgf_dgl::RequestAck`] with a diagnostic message).
    pub fn request(&self, xml: &str) -> Option<String> {
        let (reply_tx, reply_rx) = bounded(1);
        self.stats.record_enqueue();
        self.sender
            .send(ClientMessage::Request {
                xml: xml.to_owned(),
                reply: reply_tx,
                enqueued_at: Instant::now(),
            })
            .ok()?;
        reply_rx.recv().ok()
    }

    /// Fetch the grid-global Prometheus-style text scrape over the wire.
    ///
    /// Returns `None` if the server has shut down or answered with
    /// something other than a telemetry report.
    pub fn scrape(&self) -> Option<String> {
        let xml = dgf_dgl::DataGridRequest::telemetry("scrape", "operator", dgf_dgl::TelemetryQuery::scrape()).to_xml();
        let response = self.request(&xml)?;
        match dgf_dgl::parse_response(&response).ok()?.body {
            dgf_dgl::ResponseBody::Telemetry(report) => report.scrape,
            _ => None,
        }
    }

    /// Tail the flight recorder from `cursor` over the wire.
    ///
    /// The returned report carries the events (oldest first), the cursor
    /// to resume from, and an explicit count of events evicted before
    /// the reader caught up. Returns `None` if the server has shut down
    /// or answered with something other than a telemetry report.
    pub fn tail(&self, cursor: u64, limit: Option<usize>) -> Option<dgf_dgl::TelemetryReport> {
        let mut query = dgf_dgl::TelemetryQuery::tail(cursor);
        if let Some(limit) = limit {
            query = query.with_limit(limit);
        }
        let xml = dgf_dgl::DataGridRequest::telemetry("tail", "operator", query).to_xml();
        let response = self.request(&xml)?;
        match dgf_dgl::parse_response(&response).ok()?.body {
            dgf_dgl::ResponseBody::Telemetry(report) => Some(report),
            _ => None,
        }
    }

    /// Ask the server where its journal stands (the DGL `recoveryQuery`
    /// wire pair). Returns `None` if the server has shut down or
    /// answered with something other than a recovery report.
    pub fn recovery(&self) -> Option<dgf_dgl::RecoveryReport> {
        let xml =
            dgf_dgl::DataGridRequest::recovery("recovery", "operator", dgf_dgl::RecoveryQuery::report()).to_xml();
        let response = self.request(&xml)?;
        match dgf_dgl::parse_response(&response).ok()?.body {
            dgf_dgl::ResponseBody::Recovery(report) => Some(report),
            _ => None,
        }
    }

    /// Run one time-travel query over the wire (the DGL
    /// `timeTravelQuery` pair): inspect an ordinal, diff two, or bisect
    /// history. The server must have called
    /// [`Dfms::enable_time_travel`]; otherwise the report comes back
    /// with `enabled: false`. Returns `None` if the server has shut
    /// down or answered with something other than a time-travel report.
    pub fn time_travel(&self, query: dgf_dgl::TimeTravelQuery) -> Option<dgf_dgl::TimeTravelReport> {
        let xml = dgf_dgl::DataGridRequest::time_travel("time-travel", "operator", query).to_xml();
        let response = self.request(&xml)?;
        match dgf_dgl::parse_response(&response).ok()?.body {
            dgf_dgl::ResponseBody::TimeTravel(report) => Some(report),
            _ => None,
        }
    }

    /// Run one profile query over the wire (the DGL `profileQuery`
    /// pair): the engine's phase-attribution tree, optionally the
    /// folded-stack text, plus this server's contention counters.
    /// Returns `None` if the server has shut down or answered with
    /// something other than a profile report.
    pub fn profile(&self, query: dgf_dgl::ProfileQuery) -> Option<dgf_dgl::ProfileReport> {
        let xml = dgf_dgl::DataGridRequest::profile("profile", "operator", query).to_xml();
        let response = self.request(&xml)?;
        match dgf_dgl::parse_response(&response).ok()?.body {
            dgf_dgl::ResponseBody::Profile(report) => Some(report),
            _ => None,
        }
    }

    /// Run one attribution query over the wire (the DGL `whyQuery`
    /// pair): completed-flow critical paths, the wait-state bottleneck
    /// table, and SLA alert lifecycles with burn rates. Returns `None`
    /// if the server has shut down or answered with something other
    /// than a why report.
    pub fn why(&self, query: dgf_dgl::WhyQuery) -> Option<dgf_dgl::WhyReport> {
        let xml = dgf_dgl::DataGridRequest::why("why", "operator", query).to_xml();
        let response = self.request(&xml)?;
        match dgf_dgl::parse_response(&response).ok()?.body {
            dgf_dgl::ResponseBody::Why(report) => Some(report),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_dgl::{DataGridRequest, DglOperation, FlowBuilder, ResponseBody, RunState};
    use dgf_dgms::{DataGrid, LogicalPath, Principal, UserRegistry};
    use dgf_scheduler::{PlannerKind, Scheduler};
    use dgf_simgrid::{GridBuilder, GridPreset};

    fn engine() -> Dfms {
        let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 1 });
        let mut users = UserRegistry::new();
        users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
        users.make_admin("u").unwrap();
        Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 1))
    }

    fn ingest_request(id: &str, path: &str) -> String {
        let flow = FlowBuilder::sequential("f")
            .step("i", DglOperation::Ingest { path: path.into(), size: "100".into(), resource: "site0-disk".into() })
            .build()
            .unwrap();
        DataGridRequest::flow(id, "u", flow).to_xml()
    }

    #[test]
    fn synchronous_xml_round_trip_over_the_server() {
        let server = DfmsServer::start(engine());
        let handle = server.handle();
        let response_xml = handle.request(&ingest_request("r1", "/a.dat")).unwrap();
        let response = dgf_dgl::parse_response(&response_xml).unwrap();
        match response.body {
            ResponseBody::Status(s) => assert_eq!(s.state, RunState::Completed),
            other => panic!("expected final status, got {other:?}"),
        }
        let (served, engine) = server.shutdown();
        assert_eq!(served, 1);
        assert!(engine.lock().grid().exists(&LogicalPath::parse("/a.dat").unwrap()));
    }

    #[test]
    fn concurrent_clients_are_serialized_safely() {
        let server = DfmsServer::start(engine());
        let mut joins = Vec::new();
        for i in 0..8 {
            let handle = server.handle();
            joins.push(std::thread::spawn(move || {
                let xml = ingest_request(&format!("r{i}"), &format!("/f{i}.dat"));
                let response = handle.request(&xml).unwrap();
                dgf_dgl::parse_response(&response).unwrap()
            }));
        }
        for join in joins {
            let response = join.join().unwrap();
            match response.body {
                ResponseBody::Status(s) => assert_eq!(s.state, RunState::Completed),
                other => panic!("{other:?}"),
            }
        }
        let (served, engine) = server.shutdown();
        assert_eq!(served, 8);
        assert_eq!(engine.lock().grid().stats().objects, 8);
    }

    #[test]
    fn async_submission_then_status_poll() {
        let server = DfmsServer::start(engine());
        let handle = server.handle();
        let flow = FlowBuilder::sequential("f")
            .step("i", DglOperation::Ingest { path: "/x".into(), size: "1".into(), resource: "site0-disk".into() })
            .build()
            .unwrap();
        let async_req = DataGridRequest::flow("r1", "u", flow).asynchronous().to_xml();
        let ack_xml = handle.request(&async_req).unwrap();
        let ack = dgf_dgl::parse_response(&ack_xml).unwrap();
        let txn = ack.transaction().to_owned();
        match ack.body {
            ResponseBody::Ack(a) => assert!(a.valid),
            other => panic!("{other:?}"),
        }
        // The engine has not been pumped; pump it via the admin handle.
        server.engine().lock().pump();
        let status_req = DataGridRequest::status("r2", "u", dgf_dgl::FlowStatusQuery::whole(&txn)).to_xml();
        let status = dgf_dgl::parse_response(&handle.request(&status_req).unwrap()).unwrap();
        match status.body {
            ResponseBody::Status(s) => assert_eq!(s.state, RunState::Completed),
            other => panic!("{other:?}"),
        }
        drop(handle);
        let _ = server.shutdown();
    }

    #[test]
    fn malformed_requests_get_invalid_acks() {
        let server = DfmsServer::start(engine());
        let handle = server.handle();
        let response = dgf_dgl::parse_response(&handle.request("<garbage").unwrap()).unwrap();
        match response.body {
            ResponseBody::Ack(a) => {
                assert!(!a.valid);
                assert!(a.message.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    // Pin: None from `request` means "server shut down", nothing else.
    // Malformed XML and well-formed-but-unrecognized XML both yield a
    // structured DGL error response, never a silent drop.
    #[test]
    fn every_bad_document_yields_a_structured_error_never_none() {
        let server = DfmsServer::start(engine());
        let handle = server.handle();
        for bad in [
            "",                                  // empty document
            "<unclosed",                         // malformed XML
            "not xml at all",                    // plain text
            "<wrongRoot/>",                      // well-formed, wrong root
            "<dataGridRequest id=\"r\"/>",       // recognized root, no body
            "<dataGridRequest id=\"r\"><mystery/></dataGridRequest>", // unknown body
        ] {
            let xml = handle
                .request(bad)
                .unwrap_or_else(|| panic!("request({bad:?}) returned None with the server alive"));
            let response = dgf_dgl::parse_response(&xml)
                .unwrap_or_else(|e| panic!("unparseable error response for {bad:?}: {e}"));
            match response.body {
                ResponseBody::Ack(a) => {
                    assert!(!a.valid, "{bad:?} must be rejected");
                    assert!(a.message.is_some(), "{bad:?} must carry a diagnostic");
                }
                other => panic!("expected invalid ack for {bad:?}, got {other:?}"),
            }
        }
        drop(handle);
        let _ = server.shutdown();
    }

    #[test]
    fn none_is_reserved_for_shutdown() {
        let server = DfmsServer::start(engine());
        let handle = server.handle();
        let _ = server.shutdown();
        assert!(handle.request("<garbage").is_none());
    }

    #[test]
    fn journaled_server_survives_a_restart_via_recover() {
        let dir = std::env::temp_dir().join(format!("dgf-server-journal-{:x}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("server.dgj");
        let _ = std::fs::remove_file(&path);
        let config = JournalConfig::default();

        let server = DfmsServer::start_journaled(engine(), &path, "test-grid", config).unwrap();
        let handle = server.handle();
        let _ = handle.request(&ingest_request("r1", "/k.dat")).unwrap();
        // An un-recovered journaled server answers the recovery query
        // with its journal position and no replay block.
        let live = handle.recovery().unwrap();
        assert!(live.journaled);
        assert!(live.replay.is_none());
        drop(handle);
        let _ = server.shutdown(); // hard stop: journal stays on disk

        let (revived, report) = DfmsServer::recover(&path, "test-grid", config, engine).unwrap();
        assert!(report.journaled);
        let replay = report.replay.expect("recovered server reports replay stats");
        assert_eq!(replay.commands_replayed, 1);
        assert_eq!(replay.divergences, 0);
        assert_eq!(report.flows.len(), 1);
        assert_eq!(report.flows[0].state, RunState::Completed);
        // The re-derived grid state holds the ingested object.
        assert!(revived
            .engine()
            .lock()
            .grid()
            .exists(&LogicalPath::parse("/k.dat").unwrap()));
        // And the wire query agrees with the boot report.
        let wire = revived.handle().recovery().unwrap();
        assert_eq!(wire.replay, report.replay);
        let _ = revived.shutdown();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recover_refuses_a_mismatched_genesis_label() {
        let dir = std::env::temp_dir().join(format!("dgf-server-label-{:x}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("label.dgj");
        let _ = std::fs::remove_file(&path);
        let config = JournalConfig::default();
        let server = DfmsServer::start_journaled(engine(), &path, "grid-a", config).unwrap();
        let _ = server.handle().request(&ingest_request("r1", "/m.dat")).unwrap();
        let _ = server.shutdown();
        let err = DfmsServer::recover(&path, "grid-b", config, engine).err().unwrap();
        assert!(err.to_string().contains("genesis label mismatch"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn profile_over_the_wire_reports_phases_and_contention() {
        let server = DfmsServer::start(engine());
        let handle = server.handle();
        let _ = handle.request(&ingest_request("r1", "/p.dat")).unwrap();
        let report = handle.profile(dgf_dgl::ProfileQuery::new().with_folded(true)).unwrap();
        let names: Vec<&str> = report.phases.iter().map(|p| p.phase.as_str()).collect();
        assert!(names.contains(&"dgl-parse"), "{names:?}");
        assert!(names.contains(&"step-execute"), "{names:?}");
        assert!(names.contains(&"provenance-append"), "{names:?}");
        // Every phase so far ran under a request, so call counts are
        // deterministic and sim time only accrues inside step-execute.
        let parse = report.phases.iter().find(|p| p.phase == "dgl-parse").unwrap();
        assert_eq!(parse.depth, 0);
        assert_eq!(parse.calls, 2); // the ingest + this profile query
        let folded = report.folded.expect("folded stacks requested");
        assert!(folded.lines().any(|l| l.starts_with("step-execute;provenance-append ")), "{folded}");
        let contention = report.contention.expect("a served engine carries contention stats");
        assert!(contention.enqueued >= 2, "{contention:?}");
        assert_eq!(contention.hists.len(), 3);
        let hold = contention.hists.iter().find(|h| h.name == "lock-hold").unwrap();
        assert!(hold.count >= 1, "{hold:?}");
        assert!(hold.sum_ns >= hold.min_ns, "{hold:?}");
        drop(handle);
        let _ = server.shutdown();
    }

    #[test]
    fn profile_reset_starts_a_fresh_interval() {
        let server = DfmsServer::start(engine());
        let handle = server.handle();
        let _ = handle.request(&ingest_request("r1", "/q.dat")).unwrap();
        let first = handle.profile(dgf_dgl::ProfileQuery::new().with_reset(true)).unwrap();
        assert!(first.total_calls() > 0);
        // After the reset, only the follow-up query's own parse can have
        // landed in the tree: the flow's phases are gone.
        let second = handle.profile(dgf_dgl::ProfileQuery::new()).unwrap();
        assert!(
            !second.phases.iter().any(|p| p.phase == "step-execute"),
            "{:?}",
            second.phases
        );
        drop(handle);
        let _ = server.shutdown();
    }

    #[test]
    fn panic_messages_survive_common_payload_types() {
        let p1 = std::panic::catch_unwind(|| panic!("boom")).unwrap_err();
        assert_eq!(panic_message(p1.as_ref()), "boom");
        let p2 = std::panic::catch_unwind(|| panic!("{}", String::from("formatted boom"))).unwrap_err();
        assert_eq!(panic_message(p2.as_ref()), "formatted boom");
        let p3 = std::panic::catch_unwind(|| std::panic::panic_any(42_i32)).unwrap_err();
        assert_eq!(panic_message(p3.as_ref()), "non-string panic payload");
    }

    #[test]
    fn scrape_and_tail_work_over_the_wire() {
        let server = DfmsServer::start(engine());
        let handle = server.handle();
        let _ = handle.request(&ingest_request("r1", "/t.dat")).unwrap();
        let scrape = handle.scrape().unwrap();
        assert!(scrape.starts_with("# dgf telemetry scrape at "));
        assert!(scrape.contains("dgf_metric{scope=\"server\",name=\"requests.served\""));
        let page = handle.tail(0, Some(4)).unwrap();
        assert_eq!(page.events.len(), 4);
        assert_eq!(page.dropped, Some(0));
        let next = handle.tail(page.next_cursor.unwrap(), None).unwrap();
        // Resuming from the returned cursor never re-delivers an event.
        assert!(next.events.iter().all(|e| e.seq >= page.next_cursor.unwrap()));
        drop(handle);
        let _ = server.shutdown();
    }
}
