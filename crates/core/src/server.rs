//! The threaded server front-end.
//!
//! Appendix A's protocol is request/response over a connection; this
//! module provides that boundary: a [`DfmsServer`] owns the engine
//! behind a lock and a worker thread, and [`ServerHandle`]s (cloneable,
//! thread-safe) submit DGL XML documents and receive DGL XML responses.
//!
//! The *engine* stays deterministic — the worker serializes all requests
//! — but the client side exercises the real concurrency surface:
//! multiple client threads, asynchronous submissions, status polling.

use crate::engine::Dfms;
use crate::recovery::JournalConfig;
use crate::DfmsError;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::path::Path;
use std::sync::Arc;
use std::thread::JoinHandle;

enum ClientMessage {
    Request { xml: String, reply: Sender<String> },
    Shutdown,
}

/// A running DfMS server: an engine plus a worker thread draining a
/// request channel.
#[derive(Debug)]
pub struct DfmsServer {
    engine: Arc<Mutex<Dfms>>,
    sender: Sender<ClientMessage>,
    worker: Option<JoinHandle<u64>>,
}

/// A cloneable client handle to a [`DfmsServer`].
#[derive(Debug, Clone)]
pub struct ServerHandle {
    sender: Sender<ClientMessage>,
}

impl DfmsServer {
    /// Start a server around an engine.
    pub fn start(engine: Dfms) -> Self {
        let engine = Arc::new(Mutex::new(engine));
        let (sender, receiver): (Sender<ClientMessage>, Receiver<ClientMessage>) = unbounded();
        let worker_engine = Arc::clone(&engine);
        let worker = std::thread::Builder::new()
            .name("dfms-server".into())
            .spawn(move || {
                let mut served = 0u64;
                while let Ok(message) = receiver.recv() {
                    match message {
                        ClientMessage::Request { xml, reply } => {
                            let response = {
                                let mut engine = worker_engine.lock();
                                engine.obs().inc("server", "requests.served");
                                engine.handle_xml(&xml)
                            };
                            served += 1;
                            // A dropped client is not a server error.
                            let _ = reply.send(response);
                        }
                        ClientMessage::Shutdown => break,
                    }
                }
                served
            })
            .expect("spawning the DfMS worker thread");
        DfmsServer { engine, sender, worker: Some(worker) }
    }

    /// Start a server around an engine with a fresh write-ahead journal
    /// at `path` (see [`Dfms::attach_journal`] for the `label`
    /// contract). Every DGL command the server executes from here on is
    /// journaled before execution.
    pub fn start_journaled(
        mut engine: Dfms,
        path: &Path,
        label: &str,
        config: JournalConfig,
    ) -> Result<Self, DfmsError> {
        engine.attach_journal(path, label, config)?;
        Ok(Self::start(engine))
    }

    /// Boot a server by crash recovery: replay the journal at `path`
    /// against a factory-fresh engine (see [`Dfms::recover`]) and start
    /// serving on the recovered state. Returns the server and the
    /// recovery report describing what the replay did.
    pub fn recover(
        path: &Path,
        label: &str,
        config: JournalConfig,
        factory: impl FnOnce() -> Dfms,
    ) -> Result<(Self, dgf_dgl::RecoveryReport), DfmsError> {
        let (engine, report) = Dfms::recover(path, label, config, factory)?;
        Ok((Self::start(engine), report))
    }

    /// A client handle (cheap to clone, safe to share across threads).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { sender: self.sender.clone() }
    }

    /// Direct, locked access to the engine (tests, administration).
    pub fn engine(&self) -> Arc<Mutex<Dfms>> {
        Arc::clone(&self.engine)
    }

    /// Stop the worker and return (requests served, the engine).
    pub fn shutdown(mut self) -> (u64, Arc<Mutex<Dfms>>) {
        let _ = self.sender.send(ClientMessage::Shutdown);
        let served = self.worker.take().expect("worker present until shutdown").join().unwrap_or(0);
        (served, Arc::clone(&self.engine))
    }
}

impl Drop for DfmsServer {
    fn drop(&mut self) {
        let _ = self.sender.send(ClientMessage::Shutdown);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl ServerHandle {
    /// Send a DGL XML request and wait for the DGL XML response.
    ///
    /// Returns `None` *only* if the server has shut down. Malformed or
    /// unrecognized documents still get a structured DGL error response
    /// (an invalid [`dgf_dgl::RequestAck`] with a diagnostic message).
    pub fn request(&self, xml: &str) -> Option<String> {
        let (reply_tx, reply_rx) = bounded(1);
        self.sender
            .send(ClientMessage::Request { xml: xml.to_owned(), reply: reply_tx })
            .ok()?;
        reply_rx.recv().ok()
    }

    /// Fetch the grid-global Prometheus-style text scrape over the wire.
    ///
    /// Returns `None` if the server has shut down or answered with
    /// something other than a telemetry report.
    pub fn scrape(&self) -> Option<String> {
        let xml = dgf_dgl::DataGridRequest::telemetry("scrape", "operator", dgf_dgl::TelemetryQuery::scrape()).to_xml();
        let response = self.request(&xml)?;
        match dgf_dgl::parse_response(&response).ok()?.body {
            dgf_dgl::ResponseBody::Telemetry(report) => report.scrape,
            _ => None,
        }
    }

    /// Tail the flight recorder from `cursor` over the wire.
    ///
    /// The returned report carries the events (oldest first), the cursor
    /// to resume from, and an explicit count of events evicted before
    /// the reader caught up. Returns `None` if the server has shut down
    /// or answered with something other than a telemetry report.
    pub fn tail(&self, cursor: u64, limit: Option<usize>) -> Option<dgf_dgl::TelemetryReport> {
        let mut query = dgf_dgl::TelemetryQuery::tail(cursor);
        if let Some(limit) = limit {
            query = query.with_limit(limit);
        }
        let xml = dgf_dgl::DataGridRequest::telemetry("tail", "operator", query).to_xml();
        let response = self.request(&xml)?;
        match dgf_dgl::parse_response(&response).ok()?.body {
            dgf_dgl::ResponseBody::Telemetry(report) => Some(report),
            _ => None,
        }
    }

    /// Ask the server where its journal stands (the DGL `recoveryQuery`
    /// wire pair). Returns `None` if the server has shut down or
    /// answered with something other than a recovery report.
    pub fn recovery(&self) -> Option<dgf_dgl::RecoveryReport> {
        let xml =
            dgf_dgl::DataGridRequest::recovery("recovery", "operator", dgf_dgl::RecoveryQuery::report()).to_xml();
        let response = self.request(&xml)?;
        match dgf_dgl::parse_response(&response).ok()?.body {
            dgf_dgl::ResponseBody::Recovery(report) => Some(report),
            _ => None,
        }
    }

    /// Run one time-travel query over the wire (the DGL
    /// `timeTravelQuery` pair): inspect an ordinal, diff two, or bisect
    /// history. The server must have called
    /// [`Dfms::enable_time_travel`]; otherwise the report comes back
    /// with `enabled: false`. Returns `None` if the server has shut
    /// down or answered with something other than a time-travel report.
    pub fn time_travel(&self, query: dgf_dgl::TimeTravelQuery) -> Option<dgf_dgl::TimeTravelReport> {
        let xml = dgf_dgl::DataGridRequest::time_travel("time-travel", "operator", query).to_xml();
        let response = self.request(&xml)?;
        match dgf_dgl::parse_response(&response).ok()?.body {
            dgf_dgl::ResponseBody::TimeTravel(report) => Some(report),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_dgl::{DataGridRequest, DglOperation, FlowBuilder, ResponseBody, RunState};
    use dgf_dgms::{DataGrid, LogicalPath, Principal, UserRegistry};
    use dgf_scheduler::{PlannerKind, Scheduler};
    use dgf_simgrid::{GridBuilder, GridPreset};

    fn engine() -> Dfms {
        let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 1 });
        let mut users = UserRegistry::new();
        users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
        users.make_admin("u").unwrap();
        Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 1))
    }

    fn ingest_request(id: &str, path: &str) -> String {
        let flow = FlowBuilder::sequential("f")
            .step("i", DglOperation::Ingest { path: path.into(), size: "100".into(), resource: "site0-disk".into() })
            .build()
            .unwrap();
        DataGridRequest::flow(id, "u", flow).to_xml()
    }

    #[test]
    fn synchronous_xml_round_trip_over_the_server() {
        let server = DfmsServer::start(engine());
        let handle = server.handle();
        let response_xml = handle.request(&ingest_request("r1", "/a.dat")).unwrap();
        let response = dgf_dgl::parse_response(&response_xml).unwrap();
        match response.body {
            ResponseBody::Status(s) => assert_eq!(s.state, RunState::Completed),
            other => panic!("expected final status, got {other:?}"),
        }
        let (served, engine) = server.shutdown();
        assert_eq!(served, 1);
        assert!(engine.lock().grid().exists(&LogicalPath::parse("/a.dat").unwrap()));
    }

    #[test]
    fn concurrent_clients_are_serialized_safely() {
        let server = DfmsServer::start(engine());
        let mut joins = Vec::new();
        for i in 0..8 {
            let handle = server.handle();
            joins.push(std::thread::spawn(move || {
                let xml = ingest_request(&format!("r{i}"), &format!("/f{i}.dat"));
                let response = handle.request(&xml).unwrap();
                dgf_dgl::parse_response(&response).unwrap()
            }));
        }
        for join in joins {
            let response = join.join().unwrap();
            match response.body {
                ResponseBody::Status(s) => assert_eq!(s.state, RunState::Completed),
                other => panic!("{other:?}"),
            }
        }
        let (served, engine) = server.shutdown();
        assert_eq!(served, 8);
        assert_eq!(engine.lock().grid().stats().objects, 8);
    }

    #[test]
    fn async_submission_then_status_poll() {
        let server = DfmsServer::start(engine());
        let handle = server.handle();
        let flow = FlowBuilder::sequential("f")
            .step("i", DglOperation::Ingest { path: "/x".into(), size: "1".into(), resource: "site0-disk".into() })
            .build()
            .unwrap();
        let async_req = DataGridRequest::flow("r1", "u", flow).asynchronous().to_xml();
        let ack_xml = handle.request(&async_req).unwrap();
        let ack = dgf_dgl::parse_response(&ack_xml).unwrap();
        let txn = ack.transaction().to_owned();
        match ack.body {
            ResponseBody::Ack(a) => assert!(a.valid),
            other => panic!("{other:?}"),
        }
        // The engine has not been pumped; pump it via the admin handle.
        server.engine().lock().pump();
        let status_req = DataGridRequest::status("r2", "u", dgf_dgl::FlowStatusQuery::whole(&txn)).to_xml();
        let status = dgf_dgl::parse_response(&handle.request(&status_req).unwrap()).unwrap();
        match status.body {
            ResponseBody::Status(s) => assert_eq!(s.state, RunState::Completed),
            other => panic!("{other:?}"),
        }
        drop(handle);
        let _ = server.shutdown();
    }

    #[test]
    fn malformed_requests_get_invalid_acks() {
        let server = DfmsServer::start(engine());
        let handle = server.handle();
        let response = dgf_dgl::parse_response(&handle.request("<garbage").unwrap()).unwrap();
        match response.body {
            ResponseBody::Ack(a) => {
                assert!(!a.valid);
                assert!(a.message.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    // Pin: None from `request` means "server shut down", nothing else.
    // Malformed XML and well-formed-but-unrecognized XML both yield a
    // structured DGL error response, never a silent drop.
    #[test]
    fn every_bad_document_yields_a_structured_error_never_none() {
        let server = DfmsServer::start(engine());
        let handle = server.handle();
        for bad in [
            "",                                  // empty document
            "<unclosed",                         // malformed XML
            "not xml at all",                    // plain text
            "<wrongRoot/>",                      // well-formed, wrong root
            "<dataGridRequest id=\"r\"/>",       // recognized root, no body
            "<dataGridRequest id=\"r\"><mystery/></dataGridRequest>", // unknown body
        ] {
            let xml = handle
                .request(bad)
                .unwrap_or_else(|| panic!("request({bad:?}) returned None with the server alive"));
            let response = dgf_dgl::parse_response(&xml)
                .unwrap_or_else(|e| panic!("unparseable error response for {bad:?}: {e}"));
            match response.body {
                ResponseBody::Ack(a) => {
                    assert!(!a.valid, "{bad:?} must be rejected");
                    assert!(a.message.is_some(), "{bad:?} must carry a diagnostic");
                }
                other => panic!("expected invalid ack for {bad:?}, got {other:?}"),
            }
        }
        drop(handle);
        let _ = server.shutdown();
    }

    #[test]
    fn none_is_reserved_for_shutdown() {
        let server = DfmsServer::start(engine());
        let handle = server.handle();
        let _ = server.shutdown();
        assert!(handle.request("<garbage").is_none());
    }

    #[test]
    fn journaled_server_survives_a_restart_via_recover() {
        let dir = std::env::temp_dir().join(format!("dgf-server-journal-{:x}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("server.dgj");
        let _ = std::fs::remove_file(&path);
        let config = JournalConfig::default();

        let server = DfmsServer::start_journaled(engine(), &path, "test-grid", config).unwrap();
        let handle = server.handle();
        let _ = handle.request(&ingest_request("r1", "/k.dat")).unwrap();
        // An un-recovered journaled server answers the recovery query
        // with its journal position and no replay block.
        let live = handle.recovery().unwrap();
        assert!(live.journaled);
        assert!(live.replay.is_none());
        drop(handle);
        let _ = server.shutdown(); // hard stop: journal stays on disk

        let (revived, report) = DfmsServer::recover(&path, "test-grid", config, engine).unwrap();
        assert!(report.journaled);
        let replay = report.replay.expect("recovered server reports replay stats");
        assert_eq!(replay.commands_replayed, 1);
        assert_eq!(replay.divergences, 0);
        assert_eq!(report.flows.len(), 1);
        assert_eq!(report.flows[0].state, RunState::Completed);
        // The re-derived grid state holds the ingested object.
        assert!(revived
            .engine()
            .lock()
            .grid()
            .exists(&LogicalPath::parse("/k.dat").unwrap()));
        // And the wire query agrees with the boot report.
        let wire = revived.handle().recovery().unwrap();
        assert_eq!(wire.replay, report.replay);
        let _ = revived.shutdown();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recover_refuses_a_mismatched_genesis_label() {
        let dir = std::env::temp_dir().join(format!("dgf-server-label-{:x}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("label.dgj");
        let _ = std::fs::remove_file(&path);
        let config = JournalConfig::default();
        let server = DfmsServer::start_journaled(engine(), &path, "grid-a", config).unwrap();
        let _ = server.handle().request(&ingest_request("r1", "/m.dat")).unwrap();
        let _ = server.shutdown();
        let err = DfmsServer::recover(&path, "grid-b", config, engine).err().unwrap();
        assert!(err.to_string().contains("genesis label mismatch"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scrape_and_tail_work_over_the_wire() {
        let server = DfmsServer::start(engine());
        let handle = server.handle();
        let _ = handle.request(&ingest_request("r1", "/t.dat")).unwrap();
        let scrape = handle.scrape().unwrap();
        assert!(scrape.starts_with("# dgf telemetry scrape at "));
        assert!(scrape.contains("dgf_metric{scope=\"server\",name=\"requests.served\""));
        let page = handle.tail(0, Some(4)).unwrap();
        assert_eq!(page.events.len(), 4);
        assert_eq!(page.dropped, Some(0));
        let next = handle.tail(page.next_cursor.unwrap(), None).unwrap();
        // Resuming from the returned cursor never re-delivers an event.
        assert!(next.events.iter().all(|e| e.seq >= page.next_cursor.unwrap()));
        drop(handle);
        let _ = server.shutdown();
    }
}
