//! A peer-to-peer datagridflow network (paper §3.2): "multiple DfMS
//! servers can form a peer-to-peer datagridflow network with one or more
//! lookup servers."
//!
//! Each server owns one zone of the federated namespace (a set of path
//! prefixes registered with the lookup service). Requests are routed by
//! the first logical path their flow touches; status queries by the
//! server that issued the transaction.

use crate::engine::Dfms;
use crate::error::DfmsError;
use dgf_dgl::{Children, DataGridRequest, DataGridResponse, DglOperation, Flow, RequestBody};
use dgf_dgms::LogicalPath;
use std::collections::HashMap;

/// The lookup service: maps namespace prefixes to server names.
#[derive(Debug, Default)]
pub struct LookupService {
    routes: Vec<(LogicalPath, String)>,
}

impl LookupService {
    /// An empty lookup table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a prefix → server route.
    pub fn register(&mut self, prefix: LogicalPath, server: impl Into<String>) {
        self.routes.push((prefix, server.into()));
    }

    /// The server owning a path (deepest matching prefix wins).
    pub fn lookup(&self, path: &LogicalPath) -> Option<&str> {
        self.routes
            .iter()
            .filter(|(prefix, _)| path.is_under(prefix))
            .max_by_key(|(prefix, _)| prefix.depth())
            .map(|(_, server)| server.as_str())
    }

    /// Number of registered routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when no routes are registered.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

/// A network of named DfMS servers with a shared lookup service.
#[derive(Debug, Default)]
pub struct DfmsNetwork {
    servers: HashMap<String, Dfms>,
    order: Vec<String>,
    lookup: LookupService,
    txn_home: HashMap<String, String>,
}

impl DfmsNetwork {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a server under a name.
    pub fn add_server(&mut self, name: impl Into<String>, server: Dfms) {
        let name = name.into();
        if !self.servers.contains_key(&name) {
            self.order.push(name.clone());
        }
        self.servers.insert(name, server);
    }

    /// The lookup service (register namespace routes here).
    pub fn lookup_mut(&mut self) -> &mut LookupService {
        &mut self.lookup
    }

    /// Access a server by name.
    pub fn server(&self, name: &str) -> Option<&Dfms> {
        self.servers.get(name)
    }

    /// Mutable access to a server by name.
    pub fn server_mut(&mut self, name: &str) -> Option<&mut Dfms> {
        self.servers.get_mut(name)
    }

    /// Server names, in registration order.
    pub fn server_names(&self) -> &[String] {
        &self.order
    }

    /// Route a request to the owning server and handle it there.
    ///
    /// Flow requests route by the first logical path mentioned in the
    /// flow; status queries route to the server that issued the
    /// transaction (tracked when the flow was submitted through this
    /// network).
    pub fn route(&mut self, request: DataGridRequest) -> Result<(String, DataGridResponse), DfmsError> {
        let server_name = match &request.body {
            RequestBody::Flow(flow) => {
                let path = first_path(flow)
                    .ok_or_else(|| DfmsError::NoRoute("flow touches no logical path".into()))?;
                let parsed = LogicalPath::parse(&path)
                    .map_err(|_| DfmsError::NoRoute(format!("unroutable path template {path:?}")))?;
                self.lookup
                    .lookup(&parsed)
                    .ok_or_else(|| DfmsError::NoRoute(parsed.to_string()))?
                    .to_owned()
            }
            RequestBody::StatusQuery(q) => self
                .txn_home
                .get(&q.transaction)
                .cloned()
                .ok_or_else(|| DfmsError::UnknownTransaction(q.transaction.clone()))?,
            // Telemetry, validation, recovery, time travel, profile,
            // and why are server-global: serve them from the first
            // registered server (each server sees its own grid view,
            // journal, profile, and attribution store).
            RequestBody::Telemetry(_)
            | RequestBody::Validation(_)
            | RequestBody::Recovery(_)
            | RequestBody::TimeTravel(_)
            | RequestBody::Profile(_)
            | RequestBody::Why(_) => self
                .order
                .first()
                .cloned()
                .ok_or_else(|| DfmsError::NoRoute("network has no servers".into()))?,
        };
        let server = self
            .servers
            .get_mut(&server_name)
            .ok_or_else(|| DfmsError::NoRoute(server_name.clone()))?;
        server.obs().inc("network", "requests.routed");
        let request_id = request.id.clone();
        let span = server.obs().span_start(dgf_obs::SpanKind::Request, &request_id, None);
        server.obs().span_attr(span, "server", &server_name);
        let response = server.handle(request);
        server.obs().span_end(span);
        if !response.transaction().is_empty() {
            self.txn_home.insert(response.transaction().to_owned(), server_name.clone());
        }
        Ok((server_name, response))
    }

    /// Pump every server until all queues are idle.
    pub fn pump_all(&mut self) -> usize {
        let mut total = 0;
        for name in &self.order {
            total += self.servers.get_mut(name).expect("ordered names exist").pump();
        }
        total
    }
}

/// The first concrete logical path a flow mentions (templates with
/// variables are skipped — routing needs a static prefix).
fn first_path(flow: &Flow) -> Option<String> {
    fn from_op(op: &DglOperation) -> Option<String> {
        let candidate = match op {
            DglOperation::CreateCollection { path }
            | DglOperation::Ingest { path, .. }
            | DglOperation::Replicate { path, .. }
            | DglOperation::Migrate { path, .. }
            | DglOperation::Trim { path, .. }
            | DglOperation::Delete { path }
            | DglOperation::Rename { path, .. }
            | DglOperation::Checksum { path, .. }
            | DglOperation::SetMetadata { path, .. }
            | DglOperation::SetPermission { path, .. } => path,
            DglOperation::Query { collection, .. } => collection,
            DglOperation::Execute { inputs, .. } => inputs.first()?,
            DglOperation::Assign { .. } | DglOperation::Notify { .. } => return None,
        };
        if candidate.contains("${") {
            None
        } else {
            Some(candidate.clone())
        }
    }
    // The iteration source may carry the routable collection even when
    // step paths are templates.
    if let dgf_dgl::ControlPattern::ForEach { source, .. } = &flow.logic.pattern {
        match source {
            dgf_dgl::IterSource::Collection(c) if !c.contains("${") => return Some(c.clone()),
            dgf_dgl::IterSource::Query { collection, .. } if !collection.contains("${") => {
                return Some(collection.clone())
            }
            _ => {}
        }
    }
    match &flow.children {
        Children::Steps(steps) => steps.iter().find_map(|s| from_op(&s.operation)),
        Children::Flows(flows) => flows.iter().find_map(first_path),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_dgl::FlowBuilder;
    use dgf_dgms::{DataGrid, Principal, UserRegistry};
    use dgf_scheduler::{PlannerKind, Scheduler};
    use dgf_simgrid::{GridBuilder, GridPreset};

    fn path(s: &str) -> LogicalPath {
        LogicalPath::parse(s).unwrap()
    }

    fn server() -> Dfms {
        let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 1 });
        let mut users = UserRegistry::new();
        users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
        users.make_admin("u").unwrap();
        Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 1))
    }

    fn flow_touching(p: &str) -> Flow {
        // Create the full hierarchy so the flow succeeds end-to-end.
        let mut b = FlowBuilder::sequential("f");
        let segments: Vec<&str> = p.trim_start_matches('/').split('/').collect();
        let mut at = String::new();
        for (i, seg) in segments.iter().enumerate() {
            at.push('/');
            at.push_str(seg);
            b = b.step(format!("mk{i}"), DglOperation::CreateCollection { path: at.clone() });
        }
        b.build().unwrap()
    }

    #[test]
    fn lookup_prefers_deepest_prefix() {
        let mut l = LookupService::new();
        l.register(path("/"), "root-server");
        l.register(path("/home/scec"), "scec-server");
        assert_eq!(l.lookup(&path("/home/scec/run1")), Some("scec-server"));
        assert_eq!(l.lookup(&path("/home/other")), Some("root-server"));
        assert_eq!(l.len(), 2);
        assert!(!l.is_empty());
        let empty = LookupService::new();
        assert_eq!(empty.lookup(&path("/x")), None);
    }

    #[test]
    fn requests_route_by_namespace_and_status_follows_home() {
        let mut net = DfmsNetwork::new();
        net.add_server("alpha", server());
        net.add_server("beta", server());
        net.lookup_mut().register(path("/alpha"), "alpha");
        net.lookup_mut().register(path("/beta"), "beta");

        let req = DataGridRequest::flow("r1", "u", flow_touching("/beta/x")).asynchronous();
        let (routed_to, response) = net.route(req).unwrap();
        assert_eq!(routed_to, "beta");
        let txn = response.transaction().to_owned();
        net.pump_all();

        // Status query for the transaction routes home without a path.
        let status_req = DataGridRequest::status("r2", "u", dgf_dgl::FlowStatusQuery::whole(&txn));
        let (home, status) = net.route(status_req).unwrap();
        assert_eq!(home, "beta");
        match status.body {
            dgf_dgl::ResponseBody::Status(s) => assert_eq!(s.state, dgf_dgl::RunState::Completed),
            other => panic!("expected status, got {other:?}"),
        }
        // The flow really ran on beta, not alpha.
        assert!(net.server("beta").unwrap().grid().exists(&path("/beta/x")));
        assert!(!net.server("alpha").unwrap().grid().exists(&path("/beta/x")));
    }

    #[test]
    fn unroutable_requests_error() {
        let mut net = DfmsNetwork::new();
        net.add_server("alpha", server());
        net.lookup_mut().register(path("/alpha"), "alpha");
        let req = DataGridRequest::flow("r", "u", flow_touching("/nowhere/x"));
        assert!(matches!(net.route(req), Err(DfmsError::NoRoute(_))));
        let unknown_status = DataGridRequest::status("r", "u", dgf_dgl::FlowStatusQuery::whole("t99"));
        assert!(matches!(net.route(unknown_status), Err(DfmsError::UnknownTransaction(_))));
        // A flow with no concrete path at all cannot route.
        let opaque = FlowBuilder::sequential("f")
            .step("n", DglOperation::Notify { message: "x".into() })
            .build()
            .unwrap();
        assert!(matches!(
            net.route(DataGridRequest::flow("r", "u", opaque)),
            Err(DfmsError::NoRoute(_))
        ));
    }

    #[test]
    fn foreach_flows_route_by_their_collection() {
        let flow = FlowBuilder::for_each_in_collection("sweep", "f", "/alpha/data")
            .step("c", DglOperation::Checksum { path: "${f}".into(), resource: None, register: false })
            .build()
            .unwrap();
        assert_eq!(first_path(&flow), Some("/alpha/data".to_owned()));
    }
}
