//! # dgf-dfms — the Datagridflow Management System
//!
//! The paper's §3.2 "DfMS Server": it "can service DGL requests both
//! synchronously and asynchronously", "manages state information about
//! all the tasks, which can be queried at any time", and "works on top
//! of the datagrid server (DGMS)". This crate is the execution half of
//! the system (the language half is [`dgf_dgl`]):
//!
//! * [`Dfms`] — the deterministic flow engine: interprets DGL flows
//!   against the [`dgf_dgms::DataGrid`] on the simulation clock;
//!   sequential / parallel / while / for-each / switch control patterns,
//!   lexically scoped variables, `beforeEntry` / `afterExit` rules,
//!   per-step fault policies, business-logic execution via the
//!   [`dgf_scheduler`] (late or early binding) with a virtual-data
//!   catalog short-circuit;
//! * full **lifecycle control** (§3.1): start, stop, pause, restart —
//!   restart resumes from provenance, skipping already-completed steps;
//! * **status queries at any granularity**: every node of a running flow
//!   tree is addressable (`/0/3/1`) via DGL `FlowStatusQuery`;
//! * a durable [`ProvenanceStore`] with snapshot/reload, queryable
//!   "even (years) after the execution";
//! * **datagrid triggers** wired into the operation path (BEFORE) and
//!   the event feed (AFTER), with cascade-depth control;
//! * recurring window-constrained **ILM jobs** ([`dgf_ilm::IlmJob`]);
//! * a threaded **server front-end** ([`DfmsServer`]) speaking DGL XML
//!   over channels — the request/response protocol of Appendix A;
//! * a **peer-to-peer DfMS network** ([`DfmsNetwork`]) with a lookup
//!   service, as sketched in §3.2;
//! * a shared **observability layer** ([`dgf_obs`]): every engine owns a
//!   flight recorder and metrics registry ([`Dfms::obs`]), and status
//!   queries can return recent events and metric snapshots
//!   (see `docs/OBSERVABILITY.md`);
//! * **durable journaling and crash recovery** ([`dgf_journal`]): an
//!   engine with an attached write-ahead journal survives a hard kill at
//!   any record boundary — [`Dfms::recover`] re-drives the journaled
//!   command script from genesis (the checkpoint supplies the
//!   completed-step memo), resumes in-flight flows, and reports what it
//!   did (see `docs/RECOVERY.md`);
//! * **time travel** over that journal ([`TimeTravel`]):
//!   [`Dfms::recover_to`] materializes the engine at any since-genesis
//!   transition ordinal, [`TimeTravel::diff`] produces a structured
//!   provenance/flow-state delta between two ordinals, and
//!   [`TimeTravel::bisect`] binary-searches history for the first
//!   ordinal where a predicate turned true (see `docs/TIME_TRAVEL.md`).

mod engine;
mod error;
mod network;
mod provenance;
mod recovery;
mod run;
mod server;
mod time_travel;

pub use dgf_obs::{EventKind as ObsEventKind, MetricsSnapshot, Obs, ObsEvent};
pub use engine::{Dfms, EngineMetrics, Notification};
pub use error::DfmsError;
pub use network::{DfmsNetwork, LookupService};
pub use provenance::{ProvenanceError, ProvenanceQuery, ProvenanceRecord, ProvenanceStore, StepOutcome};
pub use dgf_journal::SyncPolicy;
pub use recovery::JournalConfig;
pub use run::{NodeId, RunId, RunOptions};
pub use server::{DfmsServer, ServerHandle};
pub use time_travel::{BisectOutcome, BisectPredicate, Materialized, StateDiff, TimeTravel};
