//! User-defined metadata: SRB-style attribute/value/unit triples and
//! queries over them.

use std::fmt;

/// One attribute–value–unit triple attached to a namespace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaTriple {
    /// Attribute name, e.g. "document-type".
    pub attribute: String,
    /// Value, e.g. "seismogram".
    pub value: String,
    /// Optional unit, e.g. "Hz".
    pub unit: Option<String>,
}

impl MetaTriple {
    /// A unit-less triple.
    pub fn new(attribute: impl Into<String>, value: impl Into<String>) -> Self {
        MetaTriple { attribute: attribute.into(), value: value.into(), unit: None }
    }

    /// A triple with a unit.
    pub fn with_unit(attribute: impl Into<String>, value: impl Into<String>, unit: impl Into<String>) -> Self {
        MetaTriple { attribute: attribute.into(), value: value.into(), unit: Some(unit.into()) }
    }
}

impl fmt::Display for MetaTriple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.unit {
            Some(u) => write!(f, "{}={} [{}]", self.attribute, self.value, u),
            None => write!(f, "{}={}", self.attribute, self.value),
        }
    }
}

/// A query over metadata triples.
///
/// This is the predicate language datagrid triggers (§2.2) and
/// collection-iterating flows (§2.3 "processed according to a datagrid
/// query") evaluate; composite queries nest `And`/`Or`.
#[derive(Debug, Clone, PartialEq)]
pub enum MetaQuery {
    /// Attribute present with exactly this value.
    Eq(String, String),
    /// Attribute present with a different (or any) value ≠ given.
    Ne(String, String),
    /// Attribute present (any value).
    Has(String),
    /// Attribute's value, parsed as f64, compares greater than the bound.
    Gt(String, f64),
    /// Attribute's value, parsed as f64, compares less than the bound.
    Lt(String, f64),
    /// Value contains the given substring.
    Contains(String, String),
    /// Both sub-queries match.
    And(Box<MetaQuery>, Box<MetaQuery>),
    /// Either sub-query matches.
    Or(Box<MetaQuery>, Box<MetaQuery>),
    /// Sub-query does not match.
    Not(Box<MetaQuery>),
    /// Matches everything.
    Any,
}

impl MetaQuery {
    /// Conjunction helper.
    pub fn and(self, other: MetaQuery) -> MetaQuery {
        MetaQuery::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: MetaQuery) -> MetaQuery {
        MetaQuery::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> MetaQuery {
        MetaQuery::Not(Box::new(self))
    }

    /// Evaluate against a set of triples.
    pub fn matches(&self, triples: &[MetaTriple]) -> bool {
        match self {
            MetaQuery::Eq(a, v) => triples.iter().any(|t| &t.attribute == a && &t.value == v),
            MetaQuery::Ne(a, v) => triples.iter().any(|t| &t.attribute == a && &t.value != v),
            MetaQuery::Has(a) => triples.iter().any(|t| &t.attribute == a),
            MetaQuery::Gt(a, bound) => triples
                .iter()
                .any(|t| &t.attribute == a && t.value.parse::<f64>().map(|x| x > *bound).unwrap_or(false)),
            MetaQuery::Lt(a, bound) => triples
                .iter()
                .any(|t| &t.attribute == a && t.value.parse::<f64>().map(|x| x < *bound).unwrap_or(false)),
            MetaQuery::Contains(a, needle) => {
                triples.iter().any(|t| &t.attribute == a && t.value.contains(needle.as_str()))
            }
            MetaQuery::And(l, r) => l.matches(triples) && r.matches(triples),
            MetaQuery::Or(l, r) => l.matches(triples) || r.matches(triples),
            MetaQuery::Not(q) => !q.matches(triples),
            MetaQuery::Any => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triples() -> Vec<MetaTriple> {
        vec![
            MetaTriple::new("document-type", "seismogram"),
            MetaTriple::with_unit("sample-rate", "100", "Hz"),
            MetaTriple::new("project", "scec"),
        ]
    }

    #[test]
    fn eq_and_has() {
        let t = triples();
        assert!(MetaQuery::Eq("project".into(), "scec".into()).matches(&t));
        assert!(!MetaQuery::Eq("project".into(), "cms".into()).matches(&t));
        assert!(MetaQuery::Has("sample-rate".into()).matches(&t));
        assert!(!MetaQuery::Has("nope".into()).matches(&t));
    }

    #[test]
    fn numeric_comparisons_parse_values() {
        let t = triples();
        assert!(MetaQuery::Gt("sample-rate".into(), 50.0).matches(&t));
        assert!(!MetaQuery::Gt("sample-rate".into(), 100.0).matches(&t));
        assert!(MetaQuery::Lt("sample-rate".into(), 200.0).matches(&t));
        // Non-numeric values never satisfy numeric comparisons.
        assert!(!MetaQuery::Gt("project".into(), 0.0).matches(&t));
    }

    #[test]
    fn composition() {
        let t = triples();
        let q = MetaQuery::Eq("project".into(), "scec".into())
            .and(MetaQuery::Gt("sample-rate".into(), 50.0));
        assert!(q.matches(&t));
        let q2 = MetaQuery::Eq("project".into(), "cms".into())
            .or(MetaQuery::Has("document-type".into()));
        assert!(q2.matches(&t));
        assert!(MetaQuery::Has("nope".into()).not().matches(&t));
        assert!(MetaQuery::Any.matches(&[]));
    }

    #[test]
    fn ne_requires_presence() {
        let t = triples();
        assert!(MetaQuery::Ne("project".into(), "cms".into()).matches(&t));
        assert!(!MetaQuery::Ne("missing".into(), "x".into()).matches(&t), "absent attribute is not 'not equal'");
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(MetaTriple::new("a", "b").to_string(), "a=b");
        assert_eq!(MetaTriple::with_unit("r", "100", "Hz").to_string(), "r=100 [Hz]");
    }
}
