//! Namespace entries (collections, objects, replicas) and the event feed.

use crate::acl::Acl;
use crate::meta::MetaTriple;
use crate::path::LogicalPath;
use dgf_simgrid::{SimTime, StorageId};
use std::fmt;

/// One physical copy of a digital entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replica {
    /// The storage resource holding this copy.
    pub storage: StorageId,
    /// Content seed of this copy. Starts equal to the object's seed;
    /// diverges if the replica is corrupted.
    pub seed: u64,
    /// Valid replicas are usable; a failed integrity check invalidates.
    pub valid: bool,
    /// When the replica was created.
    pub created: SimTime,
}

/// A digital entity (file) in the logical namespace.
#[derive(Debug, Clone)]
pub struct ObjectInfo {
    /// Logical path.
    pub path: LogicalPath,
    /// Size in bytes.
    pub size: u64,
    /// Canonical content seed (what the data *should* be).
    pub seed: u64,
    /// Owning user.
    pub owner: String,
    /// Ingest time.
    pub created: SimTime,
    /// Registered checksum, once one has been computed and stored.
    pub checksum: Option<String>,
    /// Physical copies.
    pub replicas: Vec<Replica>,
    /// User-defined metadata triples.
    pub metadata: Vec<MetaTriple>,
    /// Access control list.
    pub(crate) acl: Acl,
}

impl ObjectInfo {
    /// Valid replicas on online storage, per the supplied predicate.
    pub fn usable_replicas<'a>(
        &'a self,
        online: impl Fn(StorageId) -> bool + 'a,
    ) -> impl Iterator<Item = &'a Replica> + 'a {
        self.replicas.iter().filter(move |r| r.valid && online(r.storage))
    }

    /// The replica on a given resource, if any.
    pub fn replica_on(&self, storage: StorageId) -> Option<&Replica> {
        self.replicas.iter().find(|r| r.storage == storage)
    }
}

/// A collection (directory) in the logical namespace.
#[derive(Debug, Clone)]
pub struct CollectionInfo {
    /// Logical path.
    pub path: LogicalPath,
    /// Owning user.
    pub owner: String,
    /// Creation time.
    pub created: SimTime,
    /// User-defined metadata triples.
    pub metadata: Vec<MetaTriple>,
    /// Access control list.
    pub(crate) acl: Acl,
}

/// What happened to the namespace — the event stream datagrid triggers
/// subscribe to (§2.2: "any change in the datagrid namespace including
/// updates, inserts, and deletes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A collection was created.
    CollectionCreated,
    /// A collection was removed.
    CollectionRemoved,
    /// A new object entered the grid.
    ObjectIngested,
    /// An additional replica was created.
    ObjectReplicated,
    /// An object moved between resources (replica added + source trimmed).
    ObjectMigrated,
    /// One replica was removed.
    ReplicaTrimmed,
    /// The object left the grid entirely.
    ObjectDeleted,
    /// The object's *logical* name changed (physical replicas untouched).
    ObjectRenamed,
    /// A metadata triple was attached.
    MetadataSet,
    /// An ACL entry changed.
    PermissionSet,
    /// A checksum was computed and matched the registered/expected value.
    ChecksumVerified,
    /// A checksum was computed and **disagreed** — integrity violation.
    ChecksumMismatch,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EventKind::CollectionCreated => "collection-created",
            EventKind::CollectionRemoved => "collection-removed",
            EventKind::ObjectIngested => "object-ingested",
            EventKind::ObjectReplicated => "object-replicated",
            EventKind::ObjectMigrated => "object-migrated",
            EventKind::ReplicaTrimmed => "replica-trimmed",
            EventKind::ObjectDeleted => "object-deleted",
            EventKind::ObjectRenamed => "object-renamed",
            EventKind::MetadataSet => "metadata-set",
            EventKind::PermissionSet => "permission-set",
            EventKind::ChecksumVerified => "checksum-verified",
            EventKind::ChecksumMismatch => "checksum-mismatch",
        };
        f.write_str(s)
    }
}

/// One namespace event. The full event history doubles as the DGMS-level
/// audit trail the paper's provenance requirement asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamespaceEvent {
    /// Monotonic sequence number, unique within one grid.
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// The affected path.
    pub path: LogicalPath,
    /// The acting user.
    pub principal: String,
    /// When it happened (simulation time).
    pub time: SimTime,
    /// Free-form detail ("dst=sdsc-archive", checksum values, ...).
    pub detail: String,
}

impl fmt::Display for NamespaceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} {} {} {} by {}", self.seq, self.time, self.kind, self.path, self.principal)?;
        if !self.detail.is_empty() {
            write!(f, " ({})", self.detail)?;
        }
        Ok(())
    }
}

/// Internal: a namespace entry.
#[derive(Debug, Clone)]
pub(crate) enum Entry {
    Collection(CollectionInfo),
    Object(ObjectInfo),
}

impl Entry {
    pub(crate) fn acl(&self) -> &Acl {
        match self {
            Entry::Collection(c) => &c.acl,
            Entry::Object(o) => &o.acl,
        }
    }

    pub(crate) fn acl_mut(&mut self) -> &mut Acl {
        match self {
            Entry::Collection(c) => &mut c.acl,
            Entry::Object(o) => &mut o.acl,
        }
    }

    pub(crate) fn metadata_mut(&mut self) -> &mut Vec<MetaTriple> {
        match self {
            Entry::Collection(c) => &mut c.metadata,
            Entry::Object(o) => &mut o.metadata,
        }
    }

    pub(crate) fn metadata(&self) -> &[MetaTriple] {
        match self {
            Entry::Collection(c) => &c.metadata,
            Entry::Object(o) => &o.metadata,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usable_replicas_filter_validity_and_online_state() {
        let obj = ObjectInfo {
            path: LogicalPath::parse("/x").unwrap(),
            size: 10,
            seed: 1,
            owner: "u".into(),
            created: SimTime::ZERO,
            checksum: None,
            replicas: vec![
                Replica { storage: StorageId(0), seed: 1, valid: true, created: SimTime::ZERO },
                Replica { storage: StorageId(1), seed: 1, valid: false, created: SimTime::ZERO },
                Replica { storage: StorageId(2), seed: 1, valid: true, created: SimTime::ZERO },
            ],
            metadata: Vec::new(),
            acl: Acl::owned_by("u"),
        };
        let usable: Vec<_> = obj.usable_replicas(|s| s != StorageId(2)).map(|r| r.storage).collect();
        assert_eq!(usable, vec![StorageId(0)], "invalid and offline replicas excluded");
        assert!(obj.replica_on(StorageId(1)).is_some());
        assert!(obj.replica_on(StorageId(9)).is_none());
    }

    #[test]
    fn event_display_reads_like_a_log_line() {
        let e = NamespaceEvent {
            seq: 7,
            kind: EventKind::ObjectIngested,
            path: LogicalPath::parse("/home/scec/a.dat").unwrap(),
            principal: "marcio".into(),
            time: SimTime::from_secs(42),
            detail: "resource=scec-disk".into(),
        };
        let line = e.to_string();
        assert!(line.contains("object-ingested") && line.contains("/home/scec/a.dat") && line.contains("marcio"), "{line}");
    }
}
