//! # dgf-dgms — an SRB-style Data Grid Management System
//!
//! The paper's DfMS runs "on top of the datagrid server (DGMS)" — in the
//! SRB Matrix project, the SDSC Storage Resource Broker. This crate is
//! that substrate, re-implemented against the simulated infrastructure of
//! [`dgf_simgrid`]:
//!
//! * a **logical data namespace**: collections aggregating digital
//!   entities whose replicas live on physical storage in many domains
//!   ([`DataGrid`], [`LogicalPath`]),
//! * a **logical resource namespace**: physical stores appear as named
//!   logical resources; applications never see physical organization
//!   (data virtualization, §1 of the paper),
//! * **replica management**: ingest, replicate, migrate, trim — with the
//!   two-phase begin/complete protocol the simulation clock needs,
//! * **user-defined metadata** and metadata queries (§2.2),
//! * **users, domains and ACLs** across autonomous administrative
//!   domains,
//! * a **namespace event feed** for datagrid triggers (§2.2) and a
//!   persistent **audit trail** for provenance (§2.1),
//! * real **MD5** checksums (from scratch) over deterministic synthetic
//!   content — the UCSD Libraries data-integrity scenario of §4.
//!
//! Operations are *non-transactional*, faithfully to §2.2: a multi-object
//! operation that fails midway leaves earlier effects in place.

mod acl;
mod content;
mod error;
mod grid;
pub mod md5;
mod meta;
mod namespace;
mod ops;
mod path;

pub use acl::{Acl, Permission, Principal, UserRegistry};
pub use content::ContentStore;
pub use error::DgmsError;
pub use grid::{DataGrid, GridStats};
pub use meta::{MetaQuery, MetaTriple};
pub use namespace::{CollectionInfo, EventKind, NamespaceEvent, ObjectInfo, Replica};
pub use ops::{Operation, PendingOp};
pub use path::LogicalPath;
