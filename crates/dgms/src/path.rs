//! Logical namespace paths (`/home/sdsc/scec/run42/ground.dat`).

use crate::error::DgmsError;
use std::fmt;

/// An absolute, normalized path in the datagrid's logical namespace.
///
/// Invariants (enforced at construction):
/// * always absolute (`/...`), `/` being the namespace root,
/// * no empty segments, no `.` or `..` segments,
/// * segments never contain `/` or control characters.
///
/// Ordering is segment-wise (not plain string order), which makes every
/// subtree a contiguous range in ordered maps: `/a`'s descendants sort
/// between `/a` and any sibling, even siblings like `/a!b` whose first
/// byte is below `/`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LogicalPath {
    // Stored normalized, without a trailing slash (root is "").
    inner: String,
}

impl Ord for LogicalPath {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.segments().cmp(other.segments())
    }
}

impl PartialOrd for LogicalPath {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl LogicalPath {
    /// The namespace root (`/`).
    pub fn root() -> Self {
        LogicalPath { inner: String::new() }
    }

    /// Parse and validate a path string.
    pub fn parse(s: &str) -> Result<Self, DgmsError> {
        if !s.starts_with('/') {
            return Err(DgmsError::InvalidPath { path: s.to_owned(), reason: "must be absolute" });
        }
        let mut inner = String::with_capacity(s.len());
        for segment in s.split('/').filter(|seg| !seg.is_empty()) {
            Self::validate_segment(segment).map_err(|reason| DgmsError::InvalidPath { path: s.to_owned(), reason })?;
            inner.push('/');
            inner.push_str(segment);
        }
        Ok(LogicalPath { inner })
    }

    fn validate_segment(segment: &str) -> Result<(), &'static str> {
        if segment == "." || segment == ".." {
            return Err("relative segments are not allowed");
        }
        if segment.chars().any(|c| c.is_control()) {
            return Err("control characters are not allowed");
        }
        Ok(())
    }

    /// Append one segment.
    pub fn join(&self, segment: &str) -> Result<Self, DgmsError> {
        if segment.is_empty() || segment.contains('/') {
            return Err(DgmsError::InvalidPath { path: segment.to_owned(), reason: "join takes a single non-empty segment" });
        }
        Self::validate_segment(segment).map_err(|reason| DgmsError::InvalidPath { path: segment.to_owned(), reason })?;
        let mut inner = self.inner.clone();
        inner.push('/');
        inner.push_str(segment);
        Ok(LogicalPath { inner })
    }

    /// The parent collection; `None` for the root.
    pub fn parent(&self) -> Option<Self> {
        if self.inner.is_empty() {
            return None;
        }
        let cut = self.inner.rfind('/').expect("non-root paths contain '/'");
        Some(LogicalPath { inner: self.inner[..cut].to_owned() })
    }

    /// The final segment; `None` for the root.
    pub fn name(&self) -> Option<&str> {
        if self.inner.is_empty() {
            return None;
        }
        self.inner.rsplit('/').next()
    }

    /// True if `self` is the root.
    pub fn is_root(&self) -> bool {
        self.inner.is_empty()
    }

    /// Number of segments (root = 0).
    pub fn depth(&self) -> usize {
        if self.inner.is_empty() {
            0
        } else {
            self.inner.matches('/').count()
        }
    }

    /// True if `self == other` or `other` is an ancestor of `self`.
    pub fn is_under(&self, other: &LogicalPath) -> bool {
        if other.is_root() {
            return true;
        }
        self.inner == other.inner
            || (self.inner.starts_with(&other.inner)
                && self.inner.as_bytes().get(other.inner.len()) == Some(&b'/'))
    }

    /// Iterate over segments.
    pub fn segments(&self) -> impl Iterator<Item = &str> {
        self.inner.split('/').filter(|s| !s.is_empty())
    }
}

impl fmt::Display for LogicalPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.inner.is_empty() {
            f.write_str("/")
        } else {
            f.write_str(&self.inner)
        }
    }
}

impl std::str::FromStr for LogicalPath {
    type Err = DgmsError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_normalizes() {
        let p = LogicalPath::parse("/home//sdsc/scec/").unwrap();
        assert_eq!(p.to_string(), "/home/sdsc/scec");
        assert_eq!(p.depth(), 3);
        assert_eq!(p.name(), Some("scec"));
    }

    #[test]
    fn root_special_cases() {
        let r = LogicalPath::parse("/").unwrap();
        assert!(r.is_root());
        assert_eq!(r, LogicalPath::root());
        assert_eq!(r.to_string(), "/");
        assert_eq!(r.depth(), 0);
        assert!(r.parent().is_none());
        assert!(r.name().is_none());
    }

    #[test]
    fn rejects_bad_paths() {
        assert!(LogicalPath::parse("relative/x").is_err());
        assert!(LogicalPath::parse("/a/../b").is_err());
        assert!(LogicalPath::parse("/a/./b").is_err());
        assert!(LogicalPath::parse("/a/b\u{0}c").is_err());
    }

    #[test]
    fn join_and_parent_are_inverse() {
        let base = LogicalPath::parse("/home/sdsc").unwrap();
        let child = base.join("file.dat").unwrap();
        assert_eq!(child.to_string(), "/home/sdsc/file.dat");
        assert_eq!(child.parent().unwrap(), base);
        assert!(base.join("a/b").is_err());
        assert!(base.join("").is_err());
        assert!(base.join("..").is_err());
    }

    #[test]
    fn is_under_checks_prefixes_on_segment_boundaries() {
        let a = LogicalPath::parse("/home/sdsc").unwrap();
        let b = LogicalPath::parse("/home/sdsc/scec/x").unwrap();
        let c = LogicalPath::parse("/home/sdsc2").unwrap();
        assert!(b.is_under(&a));
        assert!(a.is_under(&a));
        assert!(!c.is_under(&a), "sibling with common string prefix is not under");
        assert!(!a.is_under(&b));
        assert!(a.is_under(&LogicalPath::root()));
    }

    #[test]
    fn segments_iterate_in_order() {
        let p = LogicalPath::parse("/a/b/c").unwrap();
        assert_eq!(p.segments().collect::<Vec<_>>(), ["a", "b", "c"]);
    }

    #[test]
    fn ordering_keeps_subtrees_contiguous() {
        // "!" (0x21) sorts below "/" (0x2f) as a byte, which is exactly
        // the case plain string ordering gets wrong.
        let parent = LogicalPath::parse("/a").unwrap();
        let child = LogicalPath::parse("/a/b").unwrap();
        let tricky_sibling = LogicalPath::parse("/a!x").unwrap();
        assert!(parent < child);
        assert!(child < tricky_sibling, "descendants sort before segment-wise-larger siblings");
        assert!(LogicalPath::root() < parent);
    }
}
