//! [`DataGrid`]: the logical namespace façade — data virtualization over
//! the simulated physical grid.

use crate::acl::{Acl, Permission, Principal, UserRegistry};
use crate::content::ContentStore;
use crate::error::DgmsError;
use crate::meta::MetaQuery;
use crate::namespace::{
    CollectionInfo, Entry, EventKind, NamespaceEvent, ObjectInfo, Replica,
};
use crate::ops::{Operation, PendingOp, PlannedEffect};
use crate::path::LogicalPath;
use dgf_simgrid::{Duration, SimTime, StorageId, Topology, TransferModel};
use std::collections::BTreeMap;

/// Latency of a pure catalog (MCAT) operation: create collection, set
/// metadata, trim, etc.
const METADATA_LATENCY: Duration = Duration(2_000); // 2 ms

/// Aggregate statistics over the namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GridStats {
    /// Number of collections (excluding the implicit root).
    pub collections: usize,
    /// Number of digital entities.
    pub objects: usize,
    /// Total replicas across all objects.
    pub replicas: usize,
    /// Total logical bytes (each object counted once).
    pub logical_bytes: u64,
    /// Total physical bytes (each replica counted).
    pub physical_bytes: u64,
}

/// The Data Grid Management System: one federated logical namespace over
/// every storage resource in the [`Topology`].
///
/// All mutating operations follow the two-phase protocol:
/// [`begin`](DataGrid::begin) validates, costs, and reserves;
/// [`complete`](DataGrid::complete) commits and emits events;
/// [`abort`](DataGrid::abort) releases reservations. The single-phase
/// [`execute`](DataGrid::execute) does begin+complete back-to-back.
#[derive(Debug)]
pub struct DataGrid {
    topology: Topology,
    transfer: TransferModel,
    users: UserRegistry,
    entries: BTreeMap<LogicalPath, Entry>,
    events: Vec<NamespaceEvent>,
    next_seed: u64,
}

impl DataGrid {
    /// A grid over the given physical topology with the given users.
    ///
    /// The namespace root exists implicitly and is world-writable (real
    /// deployments immediately create per-domain home collections under
    /// it with tighter ACLs).
    pub fn new(topology: Topology, users: UserRegistry) -> Self {
        DataGrid {
            topology,
            transfer: TransferModel::new(),
            users,
            entries: BTreeMap::new(),
            events: Vec::new(),
            next_seed: 0x9d67_4000,
        }
    }

    // ------------------------------------------------------------------
    // Infrastructure access
    // ------------------------------------------------------------------

    /// The underlying physical topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable topology access (failure injection, capacity changes).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// The user registry.
    pub fn users(&self) -> &UserRegistry {
        &self.users
    }

    /// Mutable user registry access.
    pub fn users_mut(&mut self) -> &mut UserRegistry {
        &mut self.users
    }

    /// The shared transfer model (for cost estimation by schedulers).
    pub fn transfer_model(&self) -> &TransferModel {
        &self.transfer
    }

    /// Resolve a logical resource name to its storage id.
    pub fn resolve_resource(&self, name: &str) -> Result<StorageId, DgmsError> {
        self.topology.storage_by_name(name).ok_or_else(|| DgmsError::UnknownResource(name.to_owned()))
    }

    // ------------------------------------------------------------------
    // Two-phase operation protocol
    // ------------------------------------------------------------------

    /// Validate, cost, and reserve an operation. No namespace change is
    /// visible until [`complete`](DataGrid::complete).
    pub fn begin(&mut self, principal: &str, op: Operation, _now: SimTime) -> Result<PendingOp, DgmsError> {
        let user = self.users.get(principal)?.clone();
        let admin = self.users.is_admin(principal);
        match &op {
            Operation::CreateCollection { path } => {
                self.check_absent(path)?;
                self.check_parent_writable(path, &user, admin)?;
                Ok(self.metadata_op(op, principal, PlannedEffect::CreateCollection))
            }
            Operation::RemoveCollection { path } => {
                let _ = self.collection(path)?;
                self.check_perm(path, &user, admin, Permission::Own, "own")?;
                if self.entries.range(path.clone()..).skip(1).take(1).any(|(p, _)| p.is_under(path)) {
                    return Err(DgmsError::NotEmpty(path.clone()));
                }
                Ok(self.metadata_op(op, principal, PlannedEffect::RemoveCollection))
            }
            Operation::Ingest { path, size, resource } => {
                self.check_absent(path)?;
                self.check_parent_writable(path, &user, admin)?;
                let storage = self.resolve_resource(resource)?;
                self.check_storage_online(storage)?;
                self.reserve_space(storage, *size)?;
                let duration = self.topology.storage(storage).access_time(*size);
                let seed = self.next_seed;
                self.next_seed += 1;
                Ok(PendingOp {
                    principal: principal.to_owned(),
                    duration,
                    bytes_moved: *size,
                    effect: PlannedEffect::Ingest { storage, seed },
                    ctx: None,
                    transfer: None,
                    reserved: Some((storage, *size)),
                    op,
                })
            }
            Operation::Replicate { path, src, dst } => {
                let (src_id, dst_id, size) = self.plan_copy(path, src.as_deref(), dst, &user, admin)?;
                self.reserve_space(dst_id, size)?;
                let route = self
                    .topology
                    .route(self.topology.storage_domain(src_id), self.topology.storage_domain(dst_id))
                    .ok_or_else(|| DgmsError::ResourceUnavailable(dst.clone()))?;
                let (duration, handle) = self.transfer.begin(&self.topology, src_id, dst_id, &route, size);
                Ok(PendingOp {
                    principal: principal.to_owned(),
                    duration,
                    bytes_moved: size,
                    effect: PlannedEffect::AddReplica { src: src_id, dst: dst_id, migrate_from: None },
                    ctx: None,
                    transfer: Some(handle),
                    reserved: Some((dst_id, size)),
                    op,
                })
            }
            Operation::Migrate { path, from, to } => {
                let (src_id, dst_id, size) = self.plan_copy(path, Some(from.as_str()), to, &user, admin)?;
                self.reserve_space(dst_id, size)?;
                let route = self
                    .topology
                    .route(self.topology.storage_domain(src_id), self.topology.storage_domain(dst_id))
                    .ok_or_else(|| DgmsError::ResourceUnavailable(to.clone()))?;
                let (duration, handle) = self.transfer.begin(&self.topology, src_id, dst_id, &route, size);
                Ok(PendingOp {
                    principal: principal.to_owned(),
                    duration: duration + METADATA_LATENCY,
                    bytes_moved: size,
                    effect: PlannedEffect::AddReplica { src: src_id, dst: dst_id, migrate_from: Some(src_id) },
                    ctx: None,
                    transfer: Some(handle),
                    reserved: Some((dst_id, size)),
                    op,
                })
            }
            Operation::Trim { path, resource } => {
                let obj = self.object(path)?;
                self.check_perm(path, &user, admin, Permission::Write, "write")?;
                let storage = self.resolve_resource(resource)?;
                if obj.replica_on(storage).is_none() {
                    return Err(DgmsError::NoUsableReplica(path.clone()));
                }
                // SRB semantics: an object must keep at least one replica;
                // removing the final copy is a delete, and must say so.
                if obj.replicas.len() <= 1 {
                    return Err(DgmsError::LastReplica(path.clone()));
                }
                Ok(self.metadata_op(op, principal, PlannedEffect::Trim { storage }))
            }
            Operation::Delete { path } => {
                let obj = self.object(path)?;
                self.check_perm(path, &user, admin, Permission::Own, "own")?;
                let freed = obj.replicas.iter().map(|r| (r.storage, obj.size)).collect();
                Ok(self.metadata_op(op, principal, PlannedEffect::Delete { freed }))
            }
            Operation::Rename { path, to } => {
                let _ = self.entry(path)?; // object or collection
                self.check_perm(path, &user, admin, Permission::Own, "own")?;
                self.check_absent(to)?;
                self.check_parent_writable(to, &user, admin)?;
                if to.is_under(path) {
                    return Err(DgmsError::InvalidPath {
                        path: to.to_string(),
                        reason: "cannot rename a collection into itself",
                    });
                }
                Ok(self.metadata_op(op, principal, PlannedEffect::Rename))
            }
            Operation::Checksum { path, resource, register } => {
                let obj = self.object(path)?;
                self.check_perm(path, &user, admin, Permission::Read, "read")?;
                let storage = match resource {
                    Some(name) => {
                        let id = self.resolve_resource(name)?;
                        self.check_storage_online(id)?;
                        if obj.replica_on(id).is_none() {
                            return Err(DgmsError::NoUsableReplica(path.clone()));
                        }
                        id
                    }
                    None => self.best_replica(path)?,
                };
                let obj = self.object(path)?;
                let replica = obj.replica_on(storage).expect("validated above");
                let digest = ContentStore::digest(replica.seed, obj.size);
                let duration = self.topology.storage(storage).access_time(obj.size);
                Ok(PendingOp {
                    principal: principal.to_owned(),
                    duration,
                    bytes_moved: obj.size,
                    effect: PlannedEffect::Checksum { storage, digest, register: *register },
                    ctx: None,
                    transfer: None,
                    reserved: None,
                    op,
                })
            }
            Operation::SetMetadata { path, .. } => {
                self.entry(path)?;
                self.check_perm(path, &user, admin, Permission::Write, "write")?;
                Ok(self.metadata_op(op, principal, PlannedEffect::SetMetadata))
            }
            Operation::SetPermission { path, grantee, .. } => {
                self.entry(path)?;
                self.check_perm(path, &user, admin, Permission::Own, "own")?;
                let _ = self.users.get(grantee)?;
                Ok(self.metadata_op(op, principal, PlannedEffect::SetPermission))
            }
        }
    }

    /// Commit a pending operation at time `now`, emitting namespace events.
    ///
    /// Faithfully non-transactional: if the world changed since `begin`
    /// (e.g. the object was deleted), the commit fails, reservations are
    /// released, and any partial effects of *other* operations remain.
    pub fn complete(&mut self, pending: PendingOp, now: SimTime) -> Result<Vec<NamespaceEvent>, DgmsError> {
        let PendingOp { op, principal, effect, transfer, reserved, .. } = pending;
        if let Some(handle) = transfer {
            self.transfer.finish(handle);
        }
        let result = self.commit(&op, &principal, effect, now);
        if result.is_err() {
            if let Some((storage, bytes)) = reserved {
                self.topology.storage_mut(storage).release(bytes);
            }
        }
        result
    }

    /// Abandon a pending operation, releasing its reservations.
    pub fn abort(&mut self, pending: PendingOp) {
        if let Some(handle) = pending.transfer {
            self.transfer.finish(handle);
        }
        if let Some((storage, bytes)) = pending.reserved {
            self.topology.storage_mut(storage).release(bytes);
        }
    }

    /// Begin and immediately complete an operation (the simulation clock
    /// conceptually jumps over its duration). Returns the duration and
    /// the events emitted.
    pub fn execute(
        &mut self,
        principal: &str,
        op: Operation,
        now: SimTime,
    ) -> Result<(Duration, Vec<NamespaceEvent>), DgmsError> {
        let pending = self.begin(principal, op, now)?;
        let duration = pending.duration;
        let events = self.complete(pending, now + duration)?;
        Ok((duration, events))
    }

    fn commit(
        &mut self,
        op: &Operation,
        principal: &str,
        effect: PlannedEffect,
        now: SimTime,
    ) -> Result<Vec<NamespaceEvent>, DgmsError> {
        let path = op.path().clone();
        match effect {
            PlannedEffect::CreateCollection => {
                // Re-validate: another flow may have created it meanwhile.
                self.check_absent(&path)?;
                if let Some(parent) = path.parent() {
                    if !parent.is_root() {
                        self.collection(&parent)?;
                    }
                }
                self.entries.insert(
                    path.clone(),
                    Entry::Collection(CollectionInfo {
                        path: path.clone(),
                        owner: principal.to_owned(),
                        created: now,
                        metadata: Vec::new(),
                        acl: Acl::owned_by(principal),
                    }),
                );
                Ok(vec![self.emit(EventKind::CollectionCreated, path, principal, now, String::new())])
            }
            PlannedEffect::RemoveCollection => {
                self.collection(&path)?;
                if self.children_of(&path).next().is_some() {
                    return Err(DgmsError::NotEmpty(path));
                }
                self.entries.remove(&path);
                Ok(vec![self.emit(EventKind::CollectionRemoved, path, principal, now, String::new())])
            }
            PlannedEffect::Ingest { storage, seed } => {
                self.check_absent(&path)?;
                let size = match op {
                    Operation::Ingest { size, .. } => *size,
                    _ => unreachable!("effect/op pairing"),
                };
                self.entries.insert(
                    path.clone(),
                    Entry::Object(ObjectInfo {
                        path: path.clone(),
                        size,
                        seed,
                        owner: principal.to_owned(),
                        created: now,
                        checksum: None,
                        replicas: vec![Replica { storage, seed, valid: true, created: now }],
                        metadata: Vec::new(),
                        acl: Acl::owned_by(principal),
                    }),
                );
                let detail = format!("resource={} size={size}", self.topology.storage(storage).name);
                Ok(vec![self.emit(EventKind::ObjectIngested, path, principal, now, detail)])
            }
            PlannedEffect::AddReplica { src, dst, migrate_from } => {
                let dst_name = self.topology.storage(dst).name.clone();
                let src_name = self.topology.storage(src).name.clone();
                let from_name = migrate_from.map(|f| self.topology.storage(f).name.clone());
                let obj = self.object_mut(&path)?;
                if obj.replica_on(dst).is_some() {
                    return Err(DgmsError::ReplicaExists { path, resource: dst_name });
                }
                // The new replica copies the *source replica's* bytes: a
                // corrupted source silently propagates, exactly the hazard
                // the UCSD integrity flow exists to catch.
                let src_seed = obj.replica_on(src).map(|r| r.seed).unwrap_or(obj.seed);
                obj.replicas.push(Replica { storage: dst, seed: src_seed, valid: true, created: now });
                let mut events = Vec::new();
                let size = obj.size;
                if let Some(from) = migrate_from {
                    let obj = self.object_mut(&path)?;
                    obj.replicas.retain(|r| r.storage != from);
                    self.topology.storage_mut(from).release(size);
                    let detail = format!(
                        "from={} to={dst_name}",
                        from_name.expect("set when migrate_from is set")
                    );
                    events.push(self.emit(EventKind::ObjectMigrated, path, principal, now, detail));
                } else {
                    let detail = format!("src={src_name} dst={dst_name}");
                    events.push(self.emit(EventKind::ObjectReplicated, path, principal, now, detail));
                }
                Ok(events)
            }
            PlannedEffect::Trim { storage } => {
                let obj = self.object_mut(&path)?;
                if obj.replicas.len() <= 1 {
                    // Re-check at commit: a concurrent trim may have raced.
                    return Err(DgmsError::LastReplica(path));
                }
                let before = obj.replicas.len();
                obj.replicas.retain(|r| r.storage != storage);
                if obj.replicas.len() == before {
                    return Err(DgmsError::NoUsableReplica(path));
                }
                let size = obj.size;
                self.topology.storage_mut(storage).release(size);
                let detail = format!("resource={}", self.topology.storage(storage).name);
                Ok(vec![self.emit(EventKind::ReplicaTrimmed, path, principal, now, detail)])
            }
            PlannedEffect::Delete { freed } => {
                self.object(&path)?;
                self.entries.remove(&path);
                for (storage, bytes) in freed {
                    self.topology.storage_mut(storage).release(bytes);
                }
                Ok(vec![self.emit(EventKind::ObjectDeleted, path, principal, now, String::new())])
            }
            PlannedEffect::Rename => {
                let to = match op {
                    Operation::Rename { to, .. } => to.clone(),
                    _ => unreachable!("effect/op pairing"),
                };
                // Re-validate at commit: the world may have changed.
                self.entry(&path)?;
                self.check_absent(&to)?;
                // Re-key the entry and (for collections) its whole
                // subtree. Segment-ordered BTreeMap keys make the subtree
                // a contiguous range.
                let affected: Vec<LogicalPath> = self
                    .entries
                    .range(path.clone()..)
                    .take_while(|(p, _)| p.is_under(&path))
                    .map(|(p, _)| p.clone())
                    .collect();
                for old in affected {
                    let mut entry = self.entries.remove(&old).expect("listed above");
                    let new_path = rebase(&old, &path, &to);
                    match &mut entry {
                        Entry::Object(o) => o.path = new_path.clone(),
                        Entry::Collection(c) => c.path = new_path.clone(),
                    }
                    self.entries.insert(new_path, entry);
                }
                let detail = format!("to={to}");
                Ok(vec![self.emit(EventKind::ObjectRenamed, path, principal, now, detail)])
            }
            PlannedEffect::Checksum { storage, digest, register } => {
                let expected = {
                    let obj = self.object(&path)?;
                    obj.checksum.clone().unwrap_or_else(|| ContentStore::digest(obj.seed, obj.size))
                };
                let obj = self.object_mut(&path)?;
                if register {
                    obj.checksum = Some(digest.clone());
                    let detail = format!("digest={digest} registered");
                    return Ok(vec![self.emit(EventKind::ChecksumVerified, path, principal, now, detail)]);
                }
                if digest == expected {
                    let detail = format!("digest={digest}");
                    Ok(vec![self.emit(EventKind::ChecksumVerified, path, principal, now, detail)])
                } else {
                    // Mark the offending replica invalid; the event is the
                    // signal triggers / flows react to.
                    if let Some(r) = obj.replicas.iter_mut().find(|r| r.storage == storage) {
                        r.valid = false;
                    }
                    let detail = format!(
                        "expected={expected} actual={digest} resource={}",
                        self.topology.storage(storage).name
                    );
                    Ok(vec![self.emit(EventKind::ChecksumMismatch, path, principal, now, detail)])
                }
            }
            PlannedEffect::SetMetadata => {
                let triple = match op {
                    Operation::SetMetadata { triple, .. } => triple.clone(),
                    _ => unreachable!("effect/op pairing"),
                };
                let entry = self.entry_mut(&path)?;
                entry.metadata_mut().push(triple.clone());
                Ok(vec![self.emit(EventKind::MetadataSet, path, principal, now, triple.to_string())])
            }
            PlannedEffect::SetPermission => {
                let (grantee, permission) = match op {
                    Operation::SetPermission { grantee, permission, .. } => (grantee.clone(), *permission),
                    _ => unreachable!("effect/op pairing"),
                };
                let entry = self.entry_mut(&path)?;
                entry.acl_mut().grant_user(&grantee, permission);
                let detail = format!("grantee={grantee} level={permission:?}");
                Ok(vec![self.emit(EventKind::PermissionSet, path, principal, now, detail)])
            }
        }
    }

    // ------------------------------------------------------------------
    // Queries (catalog reads; free of simulated cost)
    // ------------------------------------------------------------------

    /// Immediate children of a collection.
    pub fn list(&self, path: &LogicalPath) -> Result<Vec<LogicalPath>, DgmsError> {
        if !path.is_root() {
            self.collection(path)?;
        }
        Ok(self.children_of(path).collect())
    }

    /// Object info (error if missing or a collection).
    pub fn stat_object(&self, path: &LogicalPath) -> Result<&ObjectInfo, DgmsError> {
        self.object(path)
    }

    /// Collection info (error if missing or an object).
    pub fn stat_collection(&self, path: &LogicalPath) -> Result<&CollectionInfo, DgmsError> {
        self.collection(path)
    }

    /// Does the path exist (as either kind)?
    pub fn exists(&self, path: &LogicalPath) -> bool {
        path.is_root() || self.entries.contains_key(path)
    }

    /// All object paths under `scope` whose metadata matches `query`,
    /// in path order — the "datagrid query" that drives for-each flows.
    pub fn query(&self, scope: &LogicalPath, query: &MetaQuery) -> Vec<LogicalPath> {
        self.entries
            .range(scope.clone()..)
            .take_while(|(p, _)| p.is_under(scope))
            .filter(|(_, e)| matches!(e, Entry::Object(_)))
            .filter(|(_, e)| query.matches(e.metadata()))
            .map(|(p, _)| p.clone())
            .collect()
    }

    /// All object paths with a replica on the given resource.
    pub fn objects_on(&self, storage: StorageId) -> Vec<LogicalPath> {
        self.entries
            .values()
            .filter_map(|e| match e {
                Entry::Object(o) if o.replica_on(storage).is_some() => Some(o.path.clone()),
                _ => None,
            })
            .collect()
    }

    /// The replica whose local read is cheapest (online + valid only).
    pub fn best_replica(&self, path: &LogicalPath) -> Result<StorageId, DgmsError> {
        let obj = self.object(path)?;
        obj.usable_replicas(|s| self.topology.storage(s).online)
            .min_by_key(|r| self.topology.storage(r.storage).access_time(obj.size))
            .map(|r| r.storage)
            .ok_or_else(|| DgmsError::NoUsableReplica(path.clone()))
    }

    /// Aggregate namespace statistics.
    pub fn stats(&self) -> GridStats {
        let mut s = GridStats::default();
        for entry in self.entries.values() {
            match entry {
                Entry::Collection(_) => s.collections += 1,
                Entry::Object(o) => {
                    s.objects += 1;
                    s.replicas += o.replicas.len();
                    s.logical_bytes += o.size;
                    s.physical_bytes += o.size * o.replicas.len() as u64;
                }
            }
        }
        s
    }

    /// The full event history (doubles as the DGMS audit trail).
    pub fn events(&self) -> &[NamespaceEvent] {
        &self.events
    }

    /// Events with sequence number `>= from_seq` (trigger polling).
    pub fn events_since(&self, from_seq: u64) -> &[NamespaceEvent] {
        let start = self.events.partition_point(|e| e.seq < from_seq);
        &self.events[start..]
    }

    /// Sequence number the *next* event will get.
    pub fn next_event_seq(&self) -> u64 {
        self.events.len() as u64
    }

    // ------------------------------------------------------------------
    // Fault injection (tests and experiments)
    // ------------------------------------------------------------------

    /// Corrupt the replica of `path` on `resource`: its bytes silently
    /// change, so its MD5 no longer matches. Returns the new digest.
    pub fn corrupt_replica(&mut self, path: &LogicalPath, resource: &str) -> Result<String, DgmsError> {
        let storage = self.resolve_resource(resource)?;
        let obj = self.object_mut(path)?;
        let size = obj.size;
        let replica = obj
            .replicas
            .iter_mut()
            .find(|r| r.storage == storage)
            .ok_or_else(|| DgmsError::NoUsableReplica(path.clone()))?;
        replica.seed ^= 0xdead_beef;
        Ok(ContentStore::digest(replica.seed, size))
    }

    // ------------------------------------------------------------------
    // Internal helpers
    // ------------------------------------------------------------------

    fn metadata_op(&self, op: Operation, principal: &str, effect: PlannedEffect) -> PendingOp {
        PendingOp {
            op,
            principal: principal.to_owned(),
            duration: METADATA_LATENCY,
            bytes_moved: 0,
            effect,
            ctx: None,
            transfer: None,
            reserved: None,
        }
    }

    /// Plan a replicate/migrate: resolve + authorize endpoints, pick the
    /// source replica, return (src, dst, size).
    fn plan_copy(
        &self,
        path: &LogicalPath,
        src: Option<&str>,
        dst: &str,
        user: &Principal,
        admin: bool,
    ) -> Result<(StorageId, StorageId, u64), DgmsError> {
        let obj = self.object(path)?;
        self.check_perm(path, user, admin, Permission::Write, "write")?;
        let dst_id = self.resolve_resource(dst)?;
        self.check_storage_online(dst_id)?;
        if obj.replica_on(dst_id).is_some() {
            return Err(DgmsError::ReplicaExists { path: path.clone(), resource: dst.to_owned() });
        }
        let src_id = match src {
            Some(name) => {
                let id = self.resolve_resource(name)?;
                self.check_storage_online(id)?;
                let r = obj.replica_on(id).ok_or_else(|| DgmsError::NoUsableReplica(path.clone()))?;
                if !r.valid {
                    return Err(DgmsError::NoUsableReplica(path.clone()));
                }
                id
            }
            None => {
                // Replica selection: cheapest estimated transfer to dst.
                let dst_domain = self.topology.storage_domain(dst_id);
                obj.usable_replicas(|s| self.topology.storage(s).online)
                    .filter_map(|r| {
                        let route = self
                            .topology
                            .route(self.topology.storage_domain(r.storage), dst_domain)?;
                        let est = self.transfer.estimate(&self.topology, r.storage, dst_id, &route, obj.size);
                        Some((r.storage, est))
                    })
                    .min_by_key(|(_, est)| *est)
                    .map(|(s, _)| s)
                    .ok_or_else(|| DgmsError::NoUsableReplica(path.clone()))?
            }
        };
        Ok((src_id, dst_id, obj.size))
    }

    fn reserve_space(&mut self, storage: StorageId, bytes: u64) -> Result<(), DgmsError> {
        let r = self.topology.storage_mut(storage);
        if !r.allocate(bytes) {
            return Err(DgmsError::InsufficientSpace { resource: r.name.clone(), needed: bytes, free: r.free() });
        }
        Ok(())
    }

    fn check_storage_online(&self, storage: StorageId) -> Result<(), DgmsError> {
        let r = self.topology.storage(storage);
        if !r.online {
            return Err(DgmsError::ResourceUnavailable(r.name.clone()));
        }
        Ok(())
    }

    fn check_absent(&self, path: &LogicalPath) -> Result<(), DgmsError> {
        if path.is_root() || self.entries.contains_key(path) {
            return Err(DgmsError::AlreadyExists(path.clone()));
        }
        Ok(())
    }

    fn check_parent_writable(&self, path: &LogicalPath, user: &Principal, admin: bool) -> Result<(), DgmsError> {
        let parent = path.parent().ok_or_else(|| DgmsError::NoParent(path.clone()))?;
        if parent.is_root() {
            return Ok(()); // root is world-writable by convention
        }
        match self.entries.get(&parent) {
            Some(Entry::Collection(_)) => self.check_perm(&parent, user, admin, Permission::Write, "write"),
            Some(Entry::Object(_)) => Err(DgmsError::WrongKind { path: parent, expected: "collection" }),
            None => Err(DgmsError::NoParent(path.clone())),
        }
    }

    fn check_perm(
        &self,
        path: &LogicalPath,
        user: &Principal,
        admin: bool,
        needed: Permission,
        label: &'static str,
    ) -> Result<(), DgmsError> {
        if admin {
            return Ok(());
        }
        let entry = self.entry(path)?;
        if entry.acl().allows(user, needed) {
            return Ok(());
        }
        Err(DgmsError::AccessDenied { path: path.clone(), user: user.user.clone(), needed: label })
    }

    fn entry(&self, path: &LogicalPath) -> Result<&Entry, DgmsError> {
        self.entries.get(path).ok_or_else(|| DgmsError::NotFound(path.clone()))
    }

    fn entry_mut(&mut self, path: &LogicalPath) -> Result<&mut Entry, DgmsError> {
        self.entries.get_mut(path).ok_or_else(|| DgmsError::NotFound(path.clone()))
    }

    fn object(&self, path: &LogicalPath) -> Result<&ObjectInfo, DgmsError> {
        match self.entry(path)? {
            Entry::Object(o) => Ok(o),
            Entry::Collection(_) => Err(DgmsError::WrongKind { path: path.clone(), expected: "object" }),
        }
    }

    fn object_mut(&mut self, path: &LogicalPath) -> Result<&mut ObjectInfo, DgmsError> {
        match self.entry_mut(path)? {
            Entry::Object(o) => Ok(o),
            Entry::Collection(_) => Err(DgmsError::WrongKind { path: path.clone(), expected: "object" }),
        }
    }

    fn collection(&self, path: &LogicalPath) -> Result<&CollectionInfo, DgmsError> {
        match self.entry(path)? {
            Entry::Collection(c) => Ok(c),
            Entry::Object(_) => Err(DgmsError::WrongKind { path: path.clone(), expected: "collection" }),
        }
    }

    // (see also the free function `rebase` below)

    /// Immediate children of `parent`, exploiting BTreeMap ordering.
    fn children_of<'a>(&'a self, parent: &'a LogicalPath) -> impl Iterator<Item = LogicalPath> + 'a {
        let target_depth = parent.depth() + 1;
        self.entries
            .range(parent.clone()..)
            .skip_while(move |(p, _)| *p == parent)
            .take_while(move |(p, _)| p.is_under(parent))
            .filter(move |(p, _)| p.depth() == target_depth)
            .map(|(p, _)| p.clone())
    }

    fn emit(
        &mut self,
        kind: EventKind,
        path: LogicalPath,
        principal: &str,
        time: SimTime,
        detail: String,
    ) -> NamespaceEvent {
        let event = NamespaceEvent {
            seq: self.events.len() as u64,
            kind,
            path,
            principal: principal.to_owned(),
            time,
            detail,
        };
        self.events.push(event.clone());
        event
    }
}

/// Replace the `from` prefix of `path` with `to` (`path` must be under
/// `from`).
fn rebase(path: &LogicalPath, from: &LogicalPath, to: &LogicalPath) -> LogicalPath {
    let mut out = to.clone();
    let skip = from.depth();
    for segment in path.segments().skip(skip) {
        out = out.join(segment).expect("existing segments are valid");
    }
    out
}
