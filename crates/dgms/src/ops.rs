//! Datagrid operations and the two-phase (begin/complete) protocol.

use crate::acl::Permission;
use crate::meta::MetaTriple;
use crate::path::LogicalPath;
use dgf_simgrid::{Duration, StorageId, TransferHandle};
use std::fmt;

/// Every data-management operation the DGMS supports — the operation
/// vocabulary DGL `Step`s compile to.
#[derive(Debug, Clone, PartialEq)]
pub enum Operation {
    /// Create a collection (parent must exist).
    CreateCollection { path: LogicalPath },
    /// Remove an empty collection.
    RemoveCollection { path: LogicalPath },
    /// Bring a new object into the grid onto a named logical resource.
    Ingest { path: LogicalPath, size: u64, resource: String },
    /// Create an additional replica on `dst`, reading from `src` (or the
    /// best available replica when `src` is `None`).
    Replicate { path: LogicalPath, src: Option<String>, dst: String },
    /// Move the object's copy from `from` to `to` (replicate + trim).
    Migrate { path: LogicalPath, from: String, to: String },
    /// Remove one replica (the object survives on its other replicas).
    Trim { path: LogicalPath, resource: String },
    /// Remove the object and all replicas.
    Delete { path: LogicalPath },
    /// Rename the object's logical path. A pure catalog operation: every
    /// replica stays exactly where it is — the point of data
    /// virtualization (§1: "data and resource names are logical and can
    /// be physically changed or migrated without affecting the
    /// applications" — and vice versa).
    Rename { path: LogicalPath, to: LogicalPath },
    /// Read a replica (from `resource`, or the best one) and compute its
    /// MD5. With `register`, store the digest as the object's canonical
    /// checksum; otherwise compare against the registered one.
    Checksum { path: LogicalPath, resource: Option<String>, register: bool },
    /// Attach a metadata triple.
    SetMetadata { path: LogicalPath, triple: MetaTriple },
    /// Grant a user a permission level.
    SetPermission { path: LogicalPath, grantee: String, permission: Permission },
}

impl Operation {
    /// The path the operation targets.
    pub fn path(&self) -> &LogicalPath {
        match self {
            Operation::CreateCollection { path }
            | Operation::RemoveCollection { path }
            | Operation::Ingest { path, .. }
            | Operation::Replicate { path, .. }
            | Operation::Migrate { path, .. }
            | Operation::Trim { path, .. }
            | Operation::Delete { path }
            | Operation::Rename { path, .. }
            | Operation::Checksum { path, .. }
            | Operation::SetMetadata { path, .. }
            | Operation::SetPermission { path, .. } => path,
        }
    }

    /// Short verb for logs and provenance records.
    pub fn verb(&self) -> &'static str {
        match self {
            Operation::CreateCollection { .. } => "create-collection",
            Operation::RemoveCollection { .. } => "remove-collection",
            Operation::Ingest { .. } => "ingest",
            Operation::Replicate { .. } => "replicate",
            Operation::Migrate { .. } => "migrate",
            Operation::Trim { .. } => "trim",
            Operation::Delete { .. } => "delete",
            Operation::Rename { .. } => "rename",
            Operation::Checksum { .. } => "checksum",
            Operation::SetMetadata { .. } => "set-metadata",
            Operation::SetPermission { .. } => "set-permission",
        }
    }

    /// Whether the operation moves bytes (vs. a metadata-only action).
    pub fn is_data_movement(&self) -> bool {
        matches!(
            self,
            Operation::Ingest { .. } | Operation::Replicate { .. } | Operation::Migrate { .. } | Operation::Checksum { .. }
        )
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.verb(), self.path())
    }
}

/// The committed effect of an operation, as planned at `begin` time.
#[derive(Debug)]
pub(crate) enum PlannedEffect {
    CreateCollection,
    RemoveCollection,
    Ingest { storage: StorageId, seed: u64 },
    AddReplica { src: StorageId, dst: StorageId, migrate_from: Option<StorageId> },
    Trim { storage: StorageId },
    Delete { freed: Vec<(StorageId, u64)> },
    Rename,
    Checksum { storage: StorageId, digest: String, register: bool },
    SetMetadata,
    SetPermission,
}

/// An operation that has been validated, costed, and had its resources
/// reserved, but whose namespace effect has not yet been committed.
///
/// The DfMS engine schedules a simulation event `duration` in the future
/// and calls [`crate::DataGrid::complete`] there; tests and baselines use
/// [`crate::DataGrid::execute`] to do both at once.
#[derive(Debug)]
#[must_use = "a PendingOp must be completed or aborted"]
pub struct PendingOp {
    /// The operation being performed.
    pub op: Operation,
    /// Acting user.
    pub principal: String,
    /// How long the operation takes in simulated time.
    pub duration: Duration,
    /// Bytes moved across storage/network by this operation.
    pub bytes_moved: u64,
    /// The tracing span covering this operation, when the caller opened
    /// one; carried through so completion can close it at commit time.
    pub ctx: Option<dgf_obs::SpanContext>,
    pub(crate) effect: PlannedEffect,
    pub(crate) transfer: Option<TransferHandle>,
    /// Space reserved at begin time, to release on abort.
    pub(crate) reserved: Option<(StorageId, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_and_paths_cover_all_variants() {
        let p = LogicalPath::parse("/x").unwrap();
        let ops = vec![
            Operation::CreateCollection { path: p.clone() },
            Operation::RemoveCollection { path: p.clone() },
            Operation::Ingest { path: p.clone(), size: 1, resource: "r".into() },
            Operation::Replicate { path: p.clone(), src: None, dst: "r".into() },
            Operation::Migrate { path: p.clone(), from: "a".into(), to: "b".into() },
            Operation::Trim { path: p.clone(), resource: "r".into() },
            Operation::Delete { path: p.clone() },
            Operation::Rename { path: p.clone(), to: LogicalPath::parse("/y").unwrap() },
            Operation::Checksum { path: p.clone(), resource: None, register: true },
            Operation::SetMetadata { path: p.clone(), triple: MetaTriple::new("a", "b") },
            Operation::SetPermission { path: p.clone(), grantee: "u".into(), permission: Permission::Read },
        ];
        for op in &ops {
            assert_eq!(op.path(), &p);
            assert!(!op.verb().is_empty());
            assert!(op.to_string().contains("/x"));
        }
        assert!(ops.iter().filter(|o| o.is_data_movement()).count() == 4);
    }
}
