//! The DGMS error type.

use crate::path::LogicalPath;
use std::fmt;

/// Errors surfaced by datagrid operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DgmsError {
    /// A malformed logical path.
    InvalidPath { path: String, reason: &'static str },
    /// Path does not exist in the namespace.
    NotFound(LogicalPath),
    /// Path already exists.
    AlreadyExists(LogicalPath),
    /// Expected a collection, found a data object (or vice versa).
    WrongKind { path: LogicalPath, expected: &'static str },
    /// Parent collection is missing.
    NoParent(LogicalPath),
    /// The principal lacks the required permission.
    AccessDenied { path: LogicalPath, user: String, needed: &'static str },
    /// Unknown user.
    UnknownUser(String),
    /// Unknown logical resource name.
    UnknownResource(String),
    /// The target storage resource is full.
    InsufficientSpace { resource: String, needed: u64, free: u64 },
    /// The target storage resource (or route to it) is offline.
    ResourceUnavailable(String),
    /// No online replica of the object is reachable.
    NoUsableReplica(LogicalPath),
    /// A replica already exists on the target resource.
    ReplicaExists { path: LogicalPath, resource: String },
    /// The collection still has children.
    NotEmpty(LogicalPath),
    /// Trimming this replica would leave the object with none.
    LastReplica(LogicalPath),
    /// Checksums disagree — data integrity violation (UCSD scenario).
    IntegrityViolation { path: LogicalPath, expected: String, actual: String },
}

impl fmt::Display for DgmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DgmsError::InvalidPath { path, reason } => write!(f, "invalid path {path:?}: {reason}"),
            DgmsError::NotFound(p) => write!(f, "{p}: not found"),
            DgmsError::AlreadyExists(p) => write!(f, "{p}: already exists"),
            DgmsError::WrongKind { path, expected } => write!(f, "{path}: not a {expected}"),
            DgmsError::NoParent(p) => write!(f, "{p}: parent collection does not exist"),
            DgmsError::AccessDenied { path, user, needed } => {
                write!(f, "{path}: user {user:?} lacks {needed} permission")
            }
            DgmsError::UnknownUser(u) => write!(f, "unknown user {u:?}"),
            DgmsError::UnknownResource(r) => write!(f, "unknown logical resource {r:?}"),
            DgmsError::InsufficientSpace { resource, needed, free } => {
                write!(f, "resource {resource:?} full: need {needed} bytes, {free} free")
            }
            DgmsError::ResourceUnavailable(r) => write!(f, "resource {r:?} is offline or unreachable"),
            DgmsError::NoUsableReplica(p) => write!(f, "{p}: no online replica reachable"),
            DgmsError::ReplicaExists { path, resource } => {
                write!(f, "{path}: replica already on {resource:?}")
            }
            DgmsError::NotEmpty(p) => write!(f, "{p}: collection not empty"),
            DgmsError::LastReplica(p) => {
                write!(f, "{p}: refusing to trim the last replica (delete the object instead)")
            }
            DgmsError::IntegrityViolation { path, expected, actual } => {
                write!(f, "{path}: checksum mismatch (expected {expected}, got {actual})")
            }
        }
    }
}

impl std::error::Error for DgmsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_path_and_cause() {
        let p = LogicalPath::parse("/home/x").unwrap();
        let e = DgmsError::AccessDenied { path: p, user: "reena".into(), needed: "write" };
        let msg = e.to_string();
        assert!(msg.contains("/home/x") && msg.contains("reena") && msg.contains("write"), "{msg}");
    }
}
