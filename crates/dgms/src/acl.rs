//! Users, virtual organizations, and access control across autonomous
//! administrative domains.

use crate::error::DgmsError;
use dgf_simgrid::DomainId;
use std::collections::HashMap;

/// Access levels on a namespace entry, ordered weakest to strongest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Permission {
    /// No access.
    None,
    /// Read object content / list collection.
    Read,
    /// Modify content, ingest into a collection, set metadata.
    Write,
    /// Everything, including permission changes and deletion.
    Own,
}

/// An authenticated grid user: `user@home_domain`, optionally acting
/// within a virtual organization.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Principal {
    /// Account name, unique grid-wide.
    pub user: String,
    /// The user's home administrative domain.
    pub home: DomainId,
    /// Virtual organization, e.g. "cms" or "scec".
    pub vo: Option<String>,
}

impl Principal {
    /// A user with no VO affiliation.
    pub fn new(user: impl Into<String>, home: DomainId) -> Self {
        Principal { user: user.into(), home, vo: None }
    }

    /// Builder-style VO affiliation.
    #[must_use]
    pub fn with_vo(mut self, vo: impl Into<String>) -> Self {
        self.vo = Some(vo.into());
        self
    }
}

/// The grid-wide user registry.
///
/// SRB authenticated users per zone; here registration is explicit and
/// operations that name unknown users fail with [`DgmsError::UnknownUser`].
#[derive(Debug, Default, Clone)]
pub struct UserRegistry {
    users: HashMap<String, Principal>,
    admins: Vec<String>,
}

impl UserRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a user; replaces any previous registration of the same name.
    pub fn register(&mut self, principal: Principal) {
        self.users.insert(principal.user.clone(), principal);
    }

    /// Mark a registered user as a grid administrator (bypasses ACLs,
    /// like an SRB zone admin).
    pub fn make_admin(&mut self, user: &str) -> Result<(), DgmsError> {
        if !self.users.contains_key(user) {
            return Err(DgmsError::UnknownUser(user.to_owned()));
        }
        if !self.admins.iter().any(|a| a == user) {
            self.admins.push(user.to_owned());
        }
        Ok(())
    }

    /// Look up a registered principal.
    pub fn get(&self, user: &str) -> Result<&Principal, DgmsError> {
        self.users.get(user).ok_or_else(|| DgmsError::UnknownUser(user.to_owned()))
    }

    /// Whether the user is a grid administrator.
    pub fn is_admin(&self, user: &str) -> bool {
        self.admins.iter().any(|a| a == user)
    }

    /// Number of registered users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when nobody is registered.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }
}

/// An access-control list: per-user grants plus an optional VO-wide grant.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Acl {
    user_grants: Vec<(String, Permission)>,
    vo_grants: Vec<(String, Permission)>,
}

impl Acl {
    /// ACL granting `owner` ownership.
    pub fn owned_by(owner: &str) -> Self {
        Acl { user_grants: vec![(owner.to_owned(), Permission::Own)], vo_grants: Vec::new() }
    }

    /// Grant (or change) a user's permission.
    pub fn grant_user(&mut self, user: &str, permission: Permission) {
        if let Some(slot) = self.user_grants.iter_mut().find(|(u, _)| u == user) {
            slot.1 = permission;
        } else {
            self.user_grants.push((user.to_owned(), permission));
        }
    }

    /// Grant (or change) a VO-wide permission.
    pub fn grant_vo(&mut self, vo: &str, permission: Permission) {
        if let Some(slot) = self.vo_grants.iter_mut().find(|(v, _)| v == vo) {
            slot.1 = permission;
        } else {
            self.vo_grants.push((vo.to_owned(), permission));
        }
    }

    /// The effective permission for a principal: the strongest of the
    /// user grant and any VO grant.
    pub fn effective(&self, principal: &Principal) -> Permission {
        let user_level = self
            .user_grants
            .iter()
            .find(|(u, _)| *u == principal.user)
            .map(|(_, p)| *p)
            .unwrap_or(Permission::None);
        let vo_level = principal
            .vo
            .as_deref()
            .and_then(|vo| self.vo_grants.iter().find(|(v, _)| v == vo))
            .map(|(_, p)| *p)
            .unwrap_or(Permission::None);
        user_level.max(vo_level)
    }

    /// Does the principal meet or exceed `needed`?
    pub fn allows(&self, principal: &Principal, needed: Permission) -> bool {
        self.effective(principal) >= needed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user(name: &str) -> Principal {
        Principal::new(name, DomainId(0))
    }

    #[test]
    fn permissions_are_ordered() {
        assert!(Permission::Own > Permission::Write);
        assert!(Permission::Write > Permission::Read);
        assert!(Permission::Read > Permission::None);
    }

    #[test]
    fn owner_has_everything_others_nothing() {
        let acl = Acl::owned_by("arun");
        assert!(acl.allows(&user("arun"), Permission::Own));
        assert!(!acl.allows(&user("jon"), Permission::Read));
    }

    #[test]
    fn vo_grants_apply_to_members_only() {
        let mut acl = Acl::owned_by("arun");
        acl.grant_vo("scec", Permission::Read);
        let member = user("marcio").with_vo("scec");
        let outsider = user("jon").with_vo("cms");
        let no_vo = user("jeff");
        assert!(acl.allows(&member, Permission::Read));
        assert!(!acl.allows(&member, Permission::Write));
        assert!(!acl.allows(&outsider, Permission::Read));
        assert!(!acl.allows(&no_vo, Permission::Read));
    }

    #[test]
    fn strongest_grant_wins() {
        let mut acl = Acl::owned_by("arun");
        acl.grant_vo("scec", Permission::Write);
        acl.grant_user("marcio", Permission::Read);
        let marcio = user("marcio").with_vo("scec");
        assert_eq!(acl.effective(&marcio), Permission::Write, "VO write beats user read");
        acl.grant_user("marcio", Permission::Own);
        assert_eq!(acl.effective(&marcio), Permission::Own);
    }

    #[test]
    fn grants_replace_not_stack() {
        let mut acl = Acl::default();
        acl.grant_user("x", Permission::Write);
        acl.grant_user("x", Permission::Read);
        assert_eq!(acl.effective(&user("x")), Permission::Read, "downgrade is possible");
    }

    #[test]
    fn registry_tracks_admins() {
        let mut reg = UserRegistry::new();
        assert!(reg.is_empty());
        reg.register(Principal::new("moore", DomainId(0)));
        reg.make_admin("moore").unwrap();
        assert!(reg.is_admin("moore"));
        assert!(!reg.is_admin("nobody"));
        assert!(matches!(reg.make_admin("nobody"), Err(DgmsError::UnknownUser(_))));
        assert_eq!(reg.get("moore").unwrap().user, "moore");
        assert_eq!(reg.len(), 1);
    }
}
