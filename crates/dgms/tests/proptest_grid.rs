//! Property tests over the DGMS: random operation sequences preserve the
//! catalog/storage invariants.

use dgf_dgms::{DataGrid, LogicalPath, Operation, Principal, UserRegistry};
use dgf_simgrid::{GridBuilder, GridPreset, SimTime};
use proptest::prelude::*;

/// The operations the fuzzer draws from, in template form.
#[derive(Debug, Clone)]
enum OpTemplate {
    Ingest { obj: u8, resource: u8, size: u64 },
    Replicate { obj: u8, resource: u8 },
    Migrate { obj: u8, from: u8, to: u8 },
    Trim { obj: u8, resource: u8 },
    Delete { obj: u8 },
    Checksum { obj: u8, register: bool },
    Corrupt { obj: u8, resource: u8 },
}

fn op_strategy() -> impl Strategy<Value = OpTemplate> {
    prop_oneof![
        (0u8..6, 0u8..6, 1u64..1_000_000).prop_map(|(obj, resource, size)| OpTemplate::Ingest { obj, resource, size }),
        (0u8..6, 0u8..6).prop_map(|(obj, resource)| OpTemplate::Replicate { obj, resource }),
        (0u8..6, 0u8..6, 0u8..6).prop_map(|(obj, from, to)| OpTemplate::Migrate { obj, from, to }),
        (0u8..6, 0u8..6).prop_map(|(obj, resource)| OpTemplate::Trim { obj, resource }),
        (0u8..6).prop_map(|obj| OpTemplate::Delete { obj }),
        (0u8..6, any::<bool>()).prop_map(|(obj, register)| OpTemplate::Checksum { obj, register }),
        (0u8..6, 0u8..6).prop_map(|(obj, resource)| OpTemplate::Corrupt { obj, resource }),
    ]
}

fn grid() -> (DataGrid, Vec<String>) {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
    let resources: Vec<String> = topology.storage_ids().map(|s| topology.storage(s).name.clone()).collect();
    let mut users = UserRegistry::new();
    users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
    users.make_admin("u").unwrap();
    (DataGrid::new(topology, users), resources)
}

fn obj_path(i: u8) -> LogicalPath {
    LogicalPath::parse(&format!("/obj{i}")).unwrap()
}

/// Sum of live replica bytes per storage resource, from the catalog.
fn catalog_usage(grid: &DataGrid) -> Vec<u64> {
    grid.topology()
        .storage_ids()
        .map(|sid| {
            grid.objects_on(sid)
                .iter()
                .map(|p| grid.stat_object(p).map(|o| o.size).unwrap_or(0))
                .sum()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// After any sequence of (possibly failing) operations:
    /// * storage accounting equals the catalog's replica bytes,
    /// * every live object keeps ≥1 replica,
    /// * event sequence numbers are strictly increasing,
    /// * stats() agrees with a full recount.
    #[test]
    fn random_op_sequences_preserve_invariants(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let (mut g, resources) = grid();
        let now = SimTime::ZERO;
        for op in &ops {
            // Each op may legitimately fail (missing object, replica
            // exists, no space, invalid replica...). Failures must leave
            // the grid consistent; that is the property under test.
            let result = match op {
                OpTemplate::Ingest { obj, resource, size } => g.execute(
                    "u",
                    Operation::Ingest { path: obj_path(*obj), size: *size, resource: resources[*resource as usize % resources.len()].clone() },
                    now,
                ),
                OpTemplate::Replicate { obj, resource } => g.execute(
                    "u",
                    Operation::Replicate { path: obj_path(*obj), src: None, dst: resources[*resource as usize % resources.len()].clone() },
                    now,
                ),
                OpTemplate::Migrate { obj, from, to } => g.execute(
                    "u",
                    Operation::Migrate {
                        path: obj_path(*obj),
                        from: resources[*from as usize % resources.len()].clone(),
                        to: resources[*to as usize % resources.len()].clone(),
                    },
                    now,
                ),
                OpTemplate::Trim { obj, resource } => g.execute(
                    "u",
                    Operation::Trim { path: obj_path(*obj), resource: resources[*resource as usize % resources.len()].clone() },
                    now,
                ),
                OpTemplate::Delete { obj } => g.execute("u", Operation::Delete { path: obj_path(*obj) }, now),
                OpTemplate::Checksum { obj, register } => g.execute(
                    "u",
                    Operation::Checksum { path: obj_path(*obj), resource: None, register: *register },
                    now,
                ),
                OpTemplate::Corrupt { obj, resource } => {
                    let _ = g.corrupt_replica(&obj_path(*obj), &resources[*resource as usize % resources.len()]);
                    continue;
                }
            };
            let _ = result; // failures are fine; consistency is not optional
        }

        // Storage accounting == catalog bytes, resource by resource.
        let by_catalog = catalog_usage(&g);
        for (sid, expected) in g.topology().storage_ids().zip(by_catalog) {
            prop_assert_eq!(g.topology().storage(sid).used, expected, "resource {}", g.topology().storage(sid).name);
        }

        // Objects always keep at least one replica.
        for i in 0..6u8 {
            if let Ok(obj) = g.stat_object(&obj_path(i)) {
                prop_assert!(!obj.replicas.is_empty(), "{} has no replicas", obj.path);
            }
        }

        // Event stream is strictly ordered and stats are consistent.
        let events = g.events();
        prop_assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        let stats = g.stats();
        let recount: usize = (0..6u8).filter(|i| g.stat_object(&obj_path(*i)).is_ok()).count();
        prop_assert_eq!(stats.objects, recount);
        let replica_recount: usize =
            (0..6u8).filter_map(|i| g.stat_object(&obj_path(i)).ok()).map(|o| o.replicas.len()).sum();
        prop_assert_eq!(stats.replicas, replica_recount);
    }

    /// Checksums: an uncorrupted object always verifies; a corrupted
    /// replica never does (until repaired).
    #[test]
    fn checksum_detects_exactly_corruption(size in 1u64..10_000_000, corrupt in any::<bool>()) {
        let (mut g, _) = grid();
        let now = SimTime::ZERO;
        g.execute("u", Operation::Ingest { path: obj_path(0), size, resource: "site0-disk".into() }, now).unwrap();
        g.execute("u", Operation::Checksum { path: obj_path(0), resource: None, register: true }, now).unwrap();
        if corrupt {
            g.corrupt_replica(&obj_path(0), "site0-disk").unwrap();
        }
        let (_, events) = g
            .execute("u", Operation::Checksum { path: obj_path(0), resource: Some("site0-disk".into()), register: false }, now)
            .unwrap();
        let mismatch = events.iter().any(|e| e.kind == dgf_dgms::EventKind::ChecksumMismatch);
        prop_assert_eq!(mismatch, corrupt);
    }

    /// Logical paths parse/display round-trip.
    #[test]
    fn paths_round_trip(segments in proptest::collection::vec("[a-zA-Z0-9_.-]{1,8}", 1..6)) {
        prop_assume!(segments.iter().all(|s| s != "." && s != ".."));
        let text = format!("/{}", segments.join("/"));
        let parsed = LogicalPath::parse(&text).unwrap();
        prop_assert_eq!(parsed.to_string(), text.clone());
        let reparsed = LogicalPath::parse(&parsed.to_string()).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }
}
