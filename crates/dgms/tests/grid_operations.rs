//! Integration tests for the DataGrid: the full operation vocabulary,
//! ACL enforcement, replicas, events, and the non-transactional semantics
//! the paper calls out in §2.2.

use dgf_dgms::{
    DataGrid, DgmsError, EventKind, LogicalPath, MetaQuery, MetaTriple, Operation, Permission,
    Principal, UserRegistry,
};
use dgf_simgrid::{GridBuilder, GridPreset, SimTime};

fn path(s: &str) -> LogicalPath {
    LogicalPath::parse(s).unwrap()
}

/// A 3-site mesh grid with users `arun` (admin), `jon`, and `reena`.
fn grid() -> DataGrid {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 3 });
    let mut users = UserRegistry::new();
    let d0 = topology.domain_ids().next().unwrap();
    users.register(Principal::new("arun", d0));
    users.register(Principal::new("jon", d0));
    users.register(Principal::new("reena", d0).with_vo("scec"));
    users.make_admin("arun").unwrap();
    let mut g = DataGrid::new(topology, users);
    g.execute("arun", Operation::CreateCollection { path: path("/home") }, SimTime::ZERO).unwrap();
    for user in ["jon", "reena"] {
        g.execute(
            "arun",
            Operation::SetPermission { path: path("/home"), grantee: user.into(), permission: Permission::Write },
            SimTime::ZERO,
        )
        .unwrap();
    }
    g
}

fn ingest(g: &mut DataGrid, who: &str, p: &str, size: u64, resource: &str) {
    g.execute(who, Operation::Ingest { path: path(p), size, resource: resource.into() }, SimTime::ZERO)
        .unwrap();
}

#[test]
fn ingest_creates_an_object_with_one_replica() {
    let mut g = grid();
    g.execute("arun", Operation::CreateCollection { path: path("/home/scec") }, SimTime::ZERO).unwrap();
    let (d, events) = g
        .execute(
            "arun",
            Operation::Ingest { path: path("/home/scec/a.dat"), size: 80_000_000, resource: "site0-disk".into() },
            SimTime::ZERO,
        )
        .unwrap();
    // 80 MB onto an 80 MB/s disk ≈ 1 s.
    assert_eq!(d.as_secs(), 1);
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].kind, EventKind::ObjectIngested);
    let obj = g.stat_object(&path("/home/scec/a.dat")).unwrap();
    assert_eq!(obj.size, 80_000_000);
    assert_eq!(obj.replicas.len(), 1);
    assert_eq!(obj.owner, "arun");
    // Space was consumed on the physical resource.
    let sid = g.resolve_resource("site0-disk").unwrap();
    assert_eq!(g.topology().storage(sid).used, 80_000_000);
}

#[test]
fn replicate_copies_across_the_wan_and_migrate_moves() {
    let mut g = grid();
    ingest(&mut g, "arun", "/home/a.dat", 1_000_000_000, "site0-disk");
    let (d, events) = g
        .execute(
            "arun",
            Operation::Replicate { path: path("/home/a.dat"), src: None, dst: "site1-disk".into() },
            SimTime::ZERO,
        )
        .unwrap();
    assert_eq!(events[0].kind, EventKind::ObjectReplicated);
    // 1 GB over an 80 MB/s-disk-bound WAN path: ≥ 10 s.
    assert!(d.as_secs() >= 10, "{d}");
    assert_eq!(g.stat_object(&path("/home/a.dat")).unwrap().replicas.len(), 2);

    let (_, events) = g
        .execute(
            "arun",
            Operation::Migrate { path: path("/home/a.dat"), from: "site1-disk".into(), to: "site1-archive".into() },
            SimTime::ZERO,
        )
        .unwrap();
    assert_eq!(events[0].kind, EventKind::ObjectMigrated);
    let obj = g.stat_object(&path("/home/a.dat")).unwrap();
    assert_eq!(obj.replicas.len(), 2, "migrate keeps the replica count");
    let archive = g.resolve_resource("site1-archive").unwrap();
    let old = g.resolve_resource("site1-disk").unwrap();
    assert!(obj.replica_on(archive).is_some());
    assert!(obj.replica_on(old).is_none());
    assert_eq!(g.topology().storage(old).used, 0, "space released on migration");
}

#[test]
fn duplicate_replicas_and_missing_sources_are_rejected() {
    let mut g = grid();
    ingest(&mut g, "arun", "/home/a.dat", 1_000, "site0-disk");
    let dup = g.execute(
        "arun",
        Operation::Replicate { path: path("/home/a.dat"), src: None, dst: "site0-disk".into() },
        SimTime::ZERO,
    );
    assert!(matches!(dup, Err(DgmsError::ReplicaExists { .. })));
    let missing_src = g.execute(
        "arun",
        Operation::Replicate { path: path("/home/a.dat"), src: Some("site2-disk".into()), dst: "site1-disk".into() },
        SimTime::ZERO,
    );
    assert!(matches!(missing_src, Err(DgmsError::NoUsableReplica(_))));
}

#[test]
fn trim_and_delete_release_space() {
    let mut g = grid();
    ingest(&mut g, "arun", "/home/a.dat", 5_000, "site0-disk");
    g.execute("arun", Operation::Replicate { path: path("/home/a.dat"), src: None, dst: "site1-disk".into() }, SimTime::ZERO)
        .unwrap();
    let (_, events) = g
        .execute("arun", Operation::Trim { path: path("/home/a.dat"), resource: "site0-disk".into() }, SimTime::ZERO)
        .unwrap();
    assert_eq!(events[0].kind, EventKind::ReplicaTrimmed);
    assert_eq!(g.stat_object(&path("/home/a.dat")).unwrap().replicas.len(), 1);
    let (_, events) = g.execute("arun", Operation::Delete { path: path("/home/a.dat") }, SimTime::ZERO).unwrap();
    assert_eq!(events[0].kind, EventKind::ObjectDeleted);
    assert!(!g.exists(&path("/home/a.dat")));
    for name in ["site0-disk", "site1-disk"] {
        let sid = g.resolve_resource(name).unwrap();
        assert_eq!(g.topology().storage(sid).used, 0, "{name}");
    }
}

#[test]
fn checksum_register_verify_and_corruption_detection() {
    let mut g = grid();
    ingest(&mut g, "arun", "/home/lib.pdf", 1 << 20, "site0-disk");
    // Register the canonical digest.
    let (_, ev) = g
        .execute("arun", Operation::Checksum { path: path("/home/lib.pdf"), resource: None, register: true }, SimTime::ZERO)
        .unwrap();
    assert_eq!(ev[0].kind, EventKind::ChecksumVerified);
    assert!(g.stat_object(&path("/home/lib.pdf")).unwrap().checksum.is_some());

    // Replicate, then verify the replica: matches.
    g.execute("arun", Operation::Replicate { path: path("/home/lib.pdf"), src: None, dst: "site1-disk".into() }, SimTime::ZERO)
        .unwrap();
    let (_, ev) = g
        .execute(
            "arun",
            Operation::Checksum { path: path("/home/lib.pdf"), resource: Some("site1-disk".into()), register: false },
            SimTime::ZERO,
        )
        .unwrap();
    assert_eq!(ev[0].kind, EventKind::ChecksumVerified);

    // Corrupt the replica; verification now fails and invalidates it.
    g.corrupt_replica(&path("/home/lib.pdf"), "site1-disk").unwrap();
    let (_, ev) = g
        .execute(
            "arun",
            Operation::Checksum { path: path("/home/lib.pdf"), resource: Some("site1-disk".into()), register: false },
            SimTime::ZERO,
        )
        .unwrap();
    assert_eq!(ev[0].kind, EventKind::ChecksumMismatch);
    let sid = g.resolve_resource("site1-disk").unwrap();
    let obj = g.stat_object(&path("/home/lib.pdf")).unwrap();
    assert!(!obj.replica_on(sid).unwrap().valid, "corrupted replica invalidated");
    // Replica selection now avoids the invalid copy.
    assert_ne!(g.best_replica(&path("/home/lib.pdf")).unwrap(), sid);
}

#[test]
fn corrupted_source_propagates_on_replicate() {
    // The hazard the UCSD integrity pipeline exists to catch: replication
    // copies bytes, not intent.
    let mut g = grid();
    ingest(&mut g, "arun", "/home/x", 1000, "site0-disk");
    g.execute("arun", Operation::Checksum { path: path("/home/x"), resource: None, register: true }, SimTime::ZERO).unwrap();
    g.corrupt_replica(&path("/home/x"), "site0-disk").unwrap();
    g.execute(
        "arun",
        Operation::Replicate { path: path("/home/x"), src: Some("site0-disk".into()), dst: "site1-disk".into() },
        SimTime::ZERO,
    )
    .unwrap();
    let (_, ev) = g
        .execute(
            "arun",
            Operation::Checksum { path: path("/home/x"), resource: Some("site1-disk".into()), register: false },
            SimTime::ZERO,
        )
        .unwrap();
    assert_eq!(ev[0].kind, EventKind::ChecksumMismatch, "corruption propagated to the new replica");
}

#[test]
fn acl_enforcement_across_users() {
    let mut g = grid();
    g.execute("jon", Operation::CreateCollection { path: path("/home/jon") }, SimTime::ZERO).unwrap();
    ingest(&mut g, "jon", "/home/jon/p.dat", 100, "site0-disk");

    // reena cannot read, write, or delete jon's data...
    let read = g.execute("reena", Operation::Checksum { path: path("/home/jon/p.dat"), resource: None, register: false }, SimTime::ZERO);
    assert!(matches!(read, Err(DgmsError::AccessDenied { .. })));
    let write = g.execute("reena", Operation::SetMetadata { path: path("/home/jon/p.dat"), triple: MetaTriple::new("a", "b") }, SimTime::ZERO);
    assert!(matches!(write, Err(DgmsError::AccessDenied { .. })));
    let ingest_err = g.execute("reena", Operation::Ingest { path: path("/home/jon/q.dat"), size: 1, resource: "site0-disk".into() }, SimTime::ZERO);
    assert!(matches!(ingest_err, Err(DgmsError::AccessDenied { .. })));

    // ...until jon grants read; then reading works but writing still fails.
    g.execute("jon", Operation::SetPermission { path: path("/home/jon/p.dat"), grantee: "reena".into(), permission: Permission::Read }, SimTime::ZERO)
        .unwrap();
    g.execute("reena", Operation::Checksum { path: path("/home/jon/p.dat"), resource: None, register: false }, SimTime::ZERO)
        .unwrap();
    let still_denied = g.execute("reena", Operation::Delete { path: path("/home/jon/p.dat") }, SimTime::ZERO);
    assert!(matches!(still_denied, Err(DgmsError::AccessDenied { .. })));

    // The grid admin bypasses ACLs entirely (SRB zone admin behaviour).
    g.execute("arun", Operation::Delete { path: path("/home/jon/p.dat") }, SimTime::ZERO).unwrap();
}

#[test]
fn metadata_queries_drive_collection_iteration() {
    let mut g = grid();
    g.execute("arun", Operation::CreateCollection { path: path("/home/scec") }, SimTime::ZERO).unwrap();
    for i in 0..6 {
        let p = format!("/home/scec/f{i}.dat");
        ingest(&mut g, "arun", &p, 10, "site0-disk");
        let kind = if i % 2 == 0 { "seismogram" } else { "log" };
        g.execute("arun", Operation::SetMetadata { path: path(&p), triple: MetaTriple::new("type", kind) }, SimTime::ZERO)
            .unwrap();
    }
    let seismograms = g.query(&path("/home/scec"), &MetaQuery::Eq("type".into(), "seismogram".into()));
    assert_eq!(seismograms.len(), 3);
    let all = g.query(&path("/home/scec"), &MetaQuery::Any);
    assert_eq!(all.len(), 6);
    let scoped = g.query(&path("/home"), &MetaQuery::Eq("type".into(), "log".into()));
    assert_eq!(scoped.len(), 3, "scope covers the subtree");
    assert!(g.query(&path("/home/scec"), &MetaQuery::Eq("type".into(), "nope".into())).is_empty());
}

#[test]
fn listing_and_collection_management() {
    let mut g = grid();
    g.execute("arun", Operation::CreateCollection { path: path("/home/a") }, SimTime::ZERO).unwrap();
    g.execute("arun", Operation::CreateCollection { path: path("/home/a/b") }, SimTime::ZERO).unwrap();
    ingest(&mut g, "arun", "/home/a/x.dat", 1, "site0-disk");
    let children = g.list(&path("/home/a")).unwrap();
    assert_eq!(children, vec![path("/home/a/b"), path("/home/a/x.dat")]);
    // Cannot remove a non-empty collection.
    assert!(matches!(
        g.execute("arun", Operation::RemoveCollection { path: path("/home/a") }, SimTime::ZERO),
        Err(DgmsError::NotEmpty(_))
    ));
    g.execute("arun", Operation::RemoveCollection { path: path("/home/a/b") }, SimTime::ZERO).unwrap();
    g.execute("arun", Operation::Delete { path: path("/home/a/x.dat") }, SimTime::ZERO).unwrap();
    g.execute("arun", Operation::RemoveCollection { path: path("/home/a") }, SimTime::ZERO).unwrap();
    assert!(!g.exists(&path("/home/a")));
    // Ingest into a missing parent fails.
    assert!(matches!(
        g.execute("arun", Operation::Ingest { path: path("/home/a/y"), size: 1, resource: "site0-disk".into() }, SimTime::ZERO),
        Err(DgmsError::NoParent(_))
    ));
}

#[test]
fn capacity_exhaustion_and_offline_resources() {
    let mut g = grid();
    let sid = g.resolve_resource("site0-disk").unwrap();
    let free = g.topology().storage(sid).free();
    assert!(matches!(
        g.execute("arun", Operation::Ingest { path: path("/home/huge"), size: free + 1, resource: "site0-disk".into() }, SimTime::ZERO),
        Err(DgmsError::InsufficientSpace { .. })
    ));
    g.topology_mut().storage_mut(sid).online = false;
    assert!(matches!(
        g.execute("arun", Operation::Ingest { path: path("/home/x"), size: 1, resource: "site0-disk".into() }, SimTime::ZERO),
        Err(DgmsError::ResourceUnavailable(_))
    ));
}

#[test]
fn two_phase_protocol_defers_visibility_and_abort_releases() {
    let mut g = grid();
    ingest(&mut g, "arun", "/home/a.dat", 1_000_000, "site0-disk");
    let pending = g
        .begin(
            "arun",
            Operation::Replicate { path: path("/home/a.dat"), src: None, dst: "site1-disk".into() },
            SimTime::ZERO,
        )
        .unwrap();
    // Not visible yet, but space is already reserved.
    assert_eq!(g.stat_object(&path("/home/a.dat")).unwrap().replicas.len(), 1);
    let dst = g.resolve_resource("site1-disk").unwrap();
    assert_eq!(g.topology().storage(dst).used, 1_000_000);
    let duration = pending.duration;
    g.complete(pending, SimTime::ZERO + duration).unwrap();
    assert_eq!(g.stat_object(&path("/home/a.dat")).unwrap().replicas.len(), 2);

    // Abort path: reservation released, nothing committed.
    let pending = g
        .begin(
            "arun",
            Operation::Replicate { path: path("/home/a.dat"), src: None, dst: "site2-disk".into() },
            SimTime::ZERO,
        )
        .unwrap();
    let dst2 = g.resolve_resource("site2-disk").unwrap();
    assert_eq!(g.topology().storage(dst2).used, 1_000_000);
    g.abort(pending);
    assert_eq!(g.topology().storage(dst2).used, 0);
    assert_eq!(g.stat_object(&path("/home/a.dat")).unwrap().replicas.len(), 2);
}

#[test]
fn non_transactional_completion_after_concurrent_delete() {
    // §2.2: "Unlike database transactions datagrid processes are not
    // transactional." A replicate in flight while the object is deleted
    // fails at commit and leaves the world as the delete made it.
    let mut g = grid();
    ingest(&mut g, "arun", "/home/a.dat", 1_000, "site0-disk");
    let pending = g
        .begin("arun", Operation::Replicate { path: path("/home/a.dat"), src: None, dst: "site1-disk".into() }, SimTime::ZERO)
        .unwrap();
    g.execute("arun", Operation::Delete { path: path("/home/a.dat") }, SimTime::ZERO).unwrap();
    let err = g.complete(pending, SimTime::from_secs(60)).unwrap_err();
    assert!(matches!(err, DgmsError::NotFound(_)));
    let dst = g.resolve_resource("site1-disk").unwrap();
    assert_eq!(g.topology().storage(dst).used, 0, "failed commit released its reservation");
}

#[test]
fn concurrent_transfers_share_links_via_pending_ops() {
    let mut g = grid();
    ingest(&mut g, "arun", "/home/a.dat", 1_000_000_000, "site0-disk");
    ingest(&mut g, "arun", "/home/b.dat", 1_000_000_000, "site0-disk");
    let p1 = g
        .begin("arun", Operation::Replicate { path: path("/home/a.dat"), src: None, dst: "site1-disk".into() }, SimTime::ZERO)
        .unwrap();
    let p2 = g
        .begin("arun", Operation::Replicate { path: path("/home/b.dat"), src: None, dst: "site1-disk".into() }, SimTime::ZERO)
        .unwrap();
    assert!(p2.duration > p1.duration, "second transfer sees a shared link: {} vs {}", p2.duration, p1.duration);
    g.complete(p1, SimTime::from_secs(100)).unwrap();
    g.complete(p2, SimTime::from_secs(100)).unwrap();
}

#[test]
fn events_form_an_ordered_audit_trail() {
    let mut g = grid();
    let before = g.next_event_seq();
    ingest(&mut g, "arun", "/home/a.dat", 1, "site0-disk");
    g.execute("arun", Operation::SetMetadata { path: path("/home/a.dat"), triple: MetaTriple::new("k", "v") }, SimTime::from_secs(5))
        .unwrap();
    let events = g.events_since(before);
    assert_eq!(events.len(), 2);
    assert_eq!(events[0].kind, EventKind::ObjectIngested);
    assert_eq!(events[1].kind, EventKind::MetadataSet);
    assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    assert_eq!(g.events_since(g.next_event_seq()).len(), 0);
}

#[test]
fn stats_track_logical_vs_physical_bytes() {
    let mut g = grid();
    ingest(&mut g, "arun", "/home/a.dat", 500, "site0-disk");
    g.execute("arun", Operation::Replicate { path: path("/home/a.dat"), src: None, dst: "site1-disk".into() }, SimTime::ZERO)
        .unwrap();
    let s = g.stats();
    assert_eq!(s.objects, 1);
    assert_eq!(s.collections, 1); // /home
    assert_eq!(s.replicas, 2);
    assert_eq!(s.logical_bytes, 500);
    assert_eq!(s.physical_bytes, 1000);
}

#[test]
fn offline_storage_excluded_from_replica_selection() {
    let mut g = grid();
    ingest(&mut g, "arun", "/home/a.dat", 1_000, "site0-disk");
    g.execute("arun", Operation::Replicate { path: path("/home/a.dat"), src: None, dst: "site1-disk".into() }, SimTime::ZERO)
        .unwrap();
    let s0 = g.resolve_resource("site0-disk").unwrap();
    g.topology_mut().storage_mut(s0).online = false;
    let best = g.best_replica(&path("/home/a.dat")).unwrap();
    assert_eq!(best, g.resolve_resource("site1-disk").unwrap());
    // Replication reads route around the offline copy automatically.
    let pending = g
        .begin("arun", Operation::Replicate { path: path("/home/a.dat"), src: None, dst: "site2-disk".into() }, SimTime::ZERO)
        .unwrap();
    g.complete(pending, SimTime::from_secs(60)).unwrap();
    // With every replica offline, selection fails.
    let s1 = g.resolve_resource("site1-disk").unwrap();
    let s2 = g.resolve_resource("site2-disk").unwrap();
    g.topology_mut().storage_mut(s1).online = false;
    g.topology_mut().storage_mut(s2).online = false;
    assert!(matches!(g.best_replica(&path("/home/a.dat")), Err(DgmsError::NoUsableReplica(_))));
}

#[test]
fn unknown_users_and_resources_fail_cleanly() {
    let mut g = grid();
    assert!(matches!(
        g.execute("ghost", Operation::CreateCollection { path: path("/home/x") }, SimTime::ZERO),
        Err(DgmsError::UnknownUser(_))
    ));
    assert!(matches!(
        g.execute("arun", Operation::Ingest { path: path("/home/x"), size: 1, resource: "no-such".into() }, SimTime::ZERO),
        Err(DgmsError::UnknownResource(_))
    ));
    assert!(matches!(
        g.execute("arun", Operation::SetPermission { path: path("/home"), grantee: "ghost".into(), permission: Permission::Read }, SimTime::ZERO),
        Err(DgmsError::UnknownUser(_))
    ));
}

#[test]
fn rename_is_catalog_only_and_preserves_replicas() {
    let mut g = grid();
    ingest(&mut g, "arun", "/home/old-name", 1_000, "site0-disk");
    g.execute("arun", Operation::Replicate { path: path("/home/old-name"), src: None, dst: "site1-disk".into() }, SimTime::ZERO)
        .unwrap();
    g.execute("arun", Operation::Checksum { path: path("/home/old-name"), resource: None, register: true }, SimTime::ZERO)
        .unwrap();
    let digest_before = g.stat_object(&path("/home/old-name")).unwrap().checksum.clone();
    let used_before: u64 = g.topology().storage_ids().map(|s| g.topology().storage(s).used).sum();
    let (d, events) = g
        .execute("arun", Operation::Rename { path: path("/home/old-name"), to: path("/home/new-name") }, SimTime::ZERO)
        .unwrap();
    assert_eq!(events[0].kind, EventKind::ObjectRenamed);
    assert!(d.as_secs() < 1, "pure catalog operation");
    assert!(!g.exists(&path("/home/old-name")));
    let obj = g.stat_object(&path("/home/new-name")).unwrap();
    assert_eq!(obj.path, path("/home/new-name"));
    assert_eq!(obj.replicas.len(), 2, "replicas untouched");
    assert_eq!(obj.checksum, digest_before, "checksum travels with the object");
    let used_after: u64 = g.topology().storage_ids().map(|s| g.topology().storage(s).used).sum();
    assert_eq!(used_after, used_before, "no bytes moved or allocated");
    // Renaming over an existing path fails.
    ingest(&mut g, "arun", "/home/other", 1, "site0-disk");
    assert!(matches!(
        g.execute("arun", Operation::Rename { path: path("/home/new-name"), to: path("/home/other") }, SimTime::ZERO),
        Err(DgmsError::AlreadyExists(_))
    ));
    // Renaming into a missing parent fails.
    assert!(matches!(
        g.execute("arun", Operation::Rename { path: path("/home/new-name"), to: path("/nowhere/x") }, SimTime::ZERO),
        Err(DgmsError::NoParent(_))
    ));
}

#[test]
fn collection_rename_rekeys_the_whole_subtree() {
    let mut g = grid();
    g.execute("arun", Operation::CreateCollection { path: path("/home/proj") }, SimTime::ZERO).unwrap();
    g.execute("arun", Operation::CreateCollection { path: path("/home/proj/sub") }, SimTime::ZERO).unwrap();
    ingest(&mut g, "arun", "/home/proj/a.dat", 10, "site0-disk");
    ingest(&mut g, "arun", "/home/proj/sub/b.dat", 10, "site0-disk");
    g.execute("arun", Operation::Rename { path: path("/home/proj"), to: path("/home/proj-2005") }, SimTime::ZERO)
        .unwrap();
    assert!(!g.exists(&path("/home/proj")));
    assert!(g.exists(&path("/home/proj-2005")));
    assert!(g.exists(&path("/home/proj-2005/a.dat")));
    assert!(g.exists(&path("/home/proj-2005/sub/b.dat")));
    // The objects' own path fields were updated too.
    assert_eq!(g.stat_object(&path("/home/proj-2005/sub/b.dat")).unwrap().path, path("/home/proj-2005/sub/b.dat"));
    // Listing works at the new location.
    assert_eq!(g.list(&path("/home/proj-2005")).unwrap().len(), 2);
    // Renaming into one's own subtree is rejected.
    assert!(matches!(
        g.execute("arun", Operation::Rename { path: path("/home/proj-2005"), to: path("/home/proj-2005/sub/deeper") }, SimTime::ZERO),
        Err(DgmsError::InvalidPath { .. })
    ));
}

#[test]
fn tape_migration_is_slower_but_cheaper() {
    let mut g = {
        let topology = GridBuilder::preset(GridPreset::ImplodingStar { sources: 2 });
        let mut users = UserRegistry::new();
        users.register(Principal::new("archivist", topology.domain_by_name("archiver").unwrap()));
        users.make_admin("archivist").unwrap();
        DataGrid::new(topology, users)
    };
    ingest(&mut g, "archivist", "/scan.dat", 3_000_000_000, "archiver-disk");
    let disk = g.resolve_resource("archiver-disk").unwrap();
    let tape = g.resolve_resource("archiver-tape").unwrap();
    let disk_cost = g.topology().storage(disk).holding_cost(3_000_000_000);
    let tape_cost = g.topology().storage(tape).holding_cost(3_000_000_000);
    assert!(tape_cost < disk_cost / 10, "tape is an order of magnitude cheaper");
    let (d, _) = g
        .execute("archivist", Operation::Migrate { path: path("/scan.dat"), from: "archiver-disk".into(), to: "archiver-tape".into() }, SimTime::ZERO)
        .unwrap();
    assert!(d.as_secs() >= 100, "3 GB to 30 MB/s tape takes ≥ 100 s, got {d}");
}
