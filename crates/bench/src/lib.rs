//! # dgf-bench — experiment harness for the paper-implied evaluation
//!
//! The paper (a systems/vision workshop paper) has no quantitative
//! tables; `DESIGN.md` reconstructs an evaluation from its scenarios and
//! requirements. This crate provides the shared workload builders and a
//! plain-text table printer used by the `experiments` bench target (one
//! section per experiment id E1–E11) and the Criterion micro-benches.

use datagridflows::prelude::*;

/// Format and print one paper-style table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: String = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:width$}", h, width = widths[i] + 2))
        .collect();
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
    for row in rows {
        let line: String = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(8) + 2))
            .collect();
        println!("{line}");
    }
}

/// Dump an experiment's metrics snapshot when `DGF_METRICS` is set.
///
/// `DGF_METRICS=text` (or `1`) prints the plain-text exporter,
/// `DGF_METRICS=json` prints the JSON exporter; unset prints nothing,
/// so the default experiment tables stay byte-identical.
pub fn maybe_dump_metrics(label: &str, d: &Dfms) {
    let Ok(mode) = std::env::var("DGF_METRICS") else { return };
    let snap = d.metrics_snapshot();
    match mode.as_str() {
        "json" => println!("\n--- metrics {label} (json) ---\n{}", snap.to_json()),
        _ => println!("\n--- metrics {label} ---\n{}", snap.to_text()),
    }
}

/// A mesh-grid DfMS with one admin user `u` and the given planner.
pub fn mesh_dfms(domains: u32, planner: PlannerKind, seed: u64) -> Dfms {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains });
    let mut users = UserRegistry::new();
    users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
    users.make_admin("u").unwrap();
    Dfms::new(DataGrid::new(topology, users), Scheduler::new(planner, seed))
}

/// An imploding-star DfMS with an `admin` user at the archiver.
pub fn star_dfms(sources: u32, seed: u64) -> Dfms {
    let topology = GridBuilder::preset(GridPreset::ImplodingStar { sources });
    let mut users = UserRegistry::new();
    users.register(Principal::new("admin", topology.domain_by_name("archiver").unwrap()));
    users.make_admin("admin").unwrap();
    Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, seed))
}

/// A flow of `n` trivial (notify) steps — pure engine overhead.
pub fn notify_flow(name: &str, n: usize) -> Flow {
    let mut b = FlowBuilder::sequential(name);
    for i in 0..n {
        b = b.step(format!("s{i}"), DglOperation::Notify { message: format!("step {i}") });
    }
    b.build().expect("generated flow is valid")
}

/// A flow ingesting `n` objects of `size` bytes into `resource`.
pub fn ingest_flow(name: &str, collection: &str, n: usize, size: u64, resource: &str) -> Flow {
    let mut b = FlowBuilder::sequential(name)
        .add_step(
            Step::new("mk", DglOperation::CreateCollection { path: collection.into() })
                .with_error_policy(ErrorPolicy::Ignore), // idempotent re-use
        );
    for i in 0..n {
        b = b.step(
            format!("put{i}"),
            DglOperation::Ingest { path: format!("{collection}/f{i}"), size: size.to_string(), resource: resource.into() },
        );
    }
    b.build().expect("generated flow is valid")
}

/// A flow of `n` independent compute tasks, each consuming one seeded
/// input of `input_size` bytes at site0.
pub fn analysis_flow(name: &str, n: usize, nominal_secs: u64) -> Flow {
    let mut b = FlowBuilder::sequential(name);
    for i in 0..n {
        b = b.step(
            format!("t{i}"),
            DglOperation::Execute {
                code: format!("{name}-job{i}"),
                nominal_secs: nominal_secs.to_string(),
                resource_type: None,
                inputs: vec![format!("/data/in{i}")],
                outputs: vec![(format!("/data/{name}-out{i}"), "1000000".into())],
            },
        );
    }
    b.build().expect("generated flow is valid")
}

/// Seed `/data/in0..n` at site0's parallel filesystem.
pub fn seed_inputs(dfms: &mut Dfms, n: usize, size: u64) {
    let mut b = FlowBuilder::sequential("seed-in").add_step(
        Step::new("mk", DglOperation::CreateCollection { path: "/data".into() })
            .with_error_policy(ErrorPolicy::Ignore),
    );
    for i in 0..n {
        b = b.step(
            format!("put{i}"),
            DglOperation::Ingest { path: format!("/data/in{i}"), size: size.to_string(), resource: "site0-pfs".into() },
        );
    }
    let txn = dfms.submit_flow("u", b.build().unwrap()).expect("seed flow");
    dfms.pump();
    assert_eq!(dfms.status(&txn, None).unwrap().state, RunState::Completed, "seeding succeeded");
}

/// A deep DGL request document: nested flows `depth` levels, one step at
/// the bottom — for the parse benches (F1–F4).
pub fn deep_request(depth: usize) -> DataGridRequest {
    fn nest(level: usize) -> Flow {
        if level == 0 {
            FlowBuilder::sequential("leaf")
                .step("s", DglOperation::Checksum { path: "/x".into(), resource: None, register: false })
                .build()
                .unwrap()
        } else {
            FlowBuilder::sequential(format!("level{level}")).flow(nest(level - 1)).build().unwrap()
        }
    }
    DataGridRequest::flow("deep", "u", nest(depth))
}

/// A wide DGL request document with `steps` sibling steps.
pub fn wide_request(steps: usize) -> DataGridRequest {
    let mut b = FlowBuilder::sequential("wide").var("base", "/data");
    for i in 0..steps {
        b = b.step(
            format!("s{i}"),
            DglOperation::Replicate { path: format!("${{base}}/f{i}"), src: Some("r1".into()), dst: "r2".into() },
        );
    }
    DataGridRequest::flow("wide", "u", b.build().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builders_produce_valid_flows() {
        assert_eq!(notify_flow("n", 10).step_count(), 10);
        assert_eq!(ingest_flow("i", "/c", 5, 100, "r").step_count(), 6);
        assert_eq!(analysis_flow("a", 3, 60).step_count(), 3);
        let deep = deep_request(10);
        let reparsed = datagridflows::dgl::parse_request(&deep.to_xml()).unwrap();
        assert_eq!(reparsed, deep);
        let wide = wide_request(50);
        let reparsed = datagridflows::dgl::parse_request(&wide.to_xml()).unwrap();
        assert_eq!(reparsed, wide);
    }

    #[test]
    fn seeding_populates_inputs() {
        let mut d = mesh_dfms(2, PlannerKind::CostBased, 1);
        seed_inputs(&mut d, 4, 1000);
        for i in 0..4 {
            assert!(d.grid().exists(&LogicalPath::parse(&format!("/data/in{i}")).unwrap()));
        }
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table("demo", &["a", "bee"], &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]]);
    }
}
