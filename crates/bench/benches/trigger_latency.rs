//! E4 micro-bench: trigger matching cost per event as the registered
//! trigger population grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datagridflows::prelude::*;

fn grid_with_events(events: usize) -> DataGrid {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 1 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
    users.make_admin("u").unwrap();
    let mut g = DataGrid::new(topology, users);
    g.execute("u", Operation::CreateCollection { path: LogicalPath::parse("/in").unwrap() }, SimTime::ZERO).unwrap();
    for i in 0..events {
        g.execute(
            "u",
            Operation::Ingest {
                path: LogicalPath::parse(&format!("/in/f{i}")).unwrap(),
                size: 100,
                resource: "site0-disk".into(),
            },
            SimTime::ZERO,
        )
        .unwrap();
    }
    g
}

fn engine_with_triggers(n: usize) -> TriggerEngine {
    let mut engine = TriggerEngine::new();
    for t in 0..n {
        engine.register(
            Trigger::new(
                format!("t{t}"),
                "u",
                LogicalPath::parse("/in").unwrap(),
                TriggerAction::Notify(format!("t{t} fired on ${{event.path}}")),
            )
            .on(&[EventKind::ObjectIngested])
            .when(Expr::parse("object.size > 50 && event.principal == 'u'").unwrap()),
        );
    }
    engine
}

fn bench_poll(c: &mut Criterion) {
    let events = 200usize;
    let grid = grid_with_events(events);
    let mut group = c.benchmark_group("trigger_poll");
    group.throughput(Throughput::Elements(events as u64));
    for triggers in [1usize, 10, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(triggers), &triggers, |b, &triggers| {
            b.iter(|| {
                // Fresh engine per iteration: the cursor must re-scan.
                let mut engine = engine_with_triggers(triggers);
                let firings = engine.poll(&grid, 0, None);
                assert_eq!(firings.len(), events * triggers);
                firings.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_poll);
criterion_main!(benches);
