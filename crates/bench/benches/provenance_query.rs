//! E9 micro-bench: provenance query, memo lookup, and snapshot cost vs
//! store size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagridflows::prelude::*;

fn store_with(records: usize) -> ProvenanceStore {
    let mut store = ProvenanceStore::new();
    for i in 0..records {
        store.record(datagridflows::dfms::ProvenanceRecord {
            lineage: format!("L{}", i % 100),
            transaction: format!("t{}", i % 1_000),
            node: format!("/{}", i % 50),
            name: format!("step{i}"),
            verb: "replicate".into(),
            user: "u".into(),
            started: SimTime::from_secs(i as u64),
            finished: SimTime::from_secs(i as u64 + 1),
            outcome: if i % 7 == 0 { StepOutcome::Failed } else { StepOutcome::Completed },
            detail: String::new(),
            trace_id: None,
            span_id: None,
        });
    }
    store
}

fn bench_provenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("provenance_query");
    group.sample_size(20);
    for records in [1_000usize, 10_000, 100_000] {
        let store = store_with(records);
        let query = ProvenanceQuery { transaction: Some("t42".into()), ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(records), &store, |b, store| {
            b.iter(|| store.query(std::hint::black_box(&query)).len());
        });
    }
    group.finish();

    let store = store_with(10_000);
    c.bench_function("provenance_memo_lookup", |b| {
        b.iter(|| store.step_completed(std::hint::black_box("L42"), std::hint::black_box("/7")));
    });

    let mut group = c.benchmark_group("provenance_snapshot");
    group.sample_size(10);
    for records in [1_000usize, 10_000] {
        let store = store_with(records);
        group.bench_with_input(BenchmarkId::from_parameter(records), &store, |b, store| {
            b.iter(|| store.snapshot().len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_provenance);
criterion_main!(benches);
