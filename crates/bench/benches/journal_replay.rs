//! Crash-recovery micro-bench: `Dfms::recover` cost as a function of
//! journal length and checkpoint cadence.
//!
//! Recovery re-drives every journaled command (that is what buys
//! byte-identical state), but checkpoints with compaction drop the
//! derived transition records and stale snapshots, so the bytes read
//! and records verified at boot track the command count rather than
//! the much larger full transition history. Plain `main` harness (like
//! `experiments`), so it runs in offline environments where criterion
//! is stubbed:
//!
//! ```sh
//! cargo bench -p dgf-bench --bench journal_replay
//! ```

use datagridflows::prelude::*;
use dgf_bench::{mesh_dfms, notify_flow, print_table};
use std::path::PathBuf;
use std::time::Instant;

const LABEL: &str = "bench-grid";

fn factory() -> Dfms {
    mesh_dfms(2, PlannerKind::CostBased, 42)
}

fn journal_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dgf-bench");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("replay-{tag}-{}.dgj", std::process::id()))
}

/// Run `commands` submit+drain rounds against a journaled engine and
/// return the journal path.
fn grow_journal(tag: &str, commands: usize, config: JournalConfig) -> PathBuf {
    let path = journal_path(tag);
    let _ = std::fs::remove_file(&path);
    let mut d = factory();
    d.attach_journal(&path, LABEL, config).unwrap();
    for i in 0..commands {
        d.submit_flow("u", notify_flow(&format!("f{i}"), 4)).unwrap();
        d.pump();
    }
    path
}

fn main() {
    println!("Journal replay bench: recovery time vs history length and checkpoint cadence");
    println!("(checkpoint interval 0 = never; compaction on checkpoint enabled by default)\n");

    let mut rows = Vec::new();
    for commands in [16usize, 64, 256] {
        for every in [0u64, 8, 64] {
            let config = JournalConfig { checkpoint_every: every, ..Default::default() };
            let tag = format!("c{commands}-e{every}");
            let path = grow_journal(&tag, commands, config);
            let bytes = std::fs::metadata(&path).unwrap().len();
            let (records, _) = Journal::read(&path).unwrap();

            let start = Instant::now();
            let (_revived, report) = Dfms::recover(&path, LABEL, config, factory).unwrap();
            let elapsed = start.elapsed();

            let replay = report.replay.unwrap_or_default();
            rows.push(vec![
                commands.to_string(),
                if every == 0 { "never".into() } else { every.to_string() },
                records.len().to_string(),
                format!("{}", bytes / 1024),
                replay.commands_replayed.to_string(),
                format!("{:.2}", elapsed.as_secs_f64() * 1e3),
            ]);
            let _ = std::fs::remove_file(&path);
        }
    }
    print_table(
        "recovery cost",
        &["commands", "ckpt every", "records on disk", "KiB", "replayed", "recover ms"],
        &rows,
    );
    println!("\nCheckpoints + compaction shed the derived transition records, so the file and");
    println!("the boot-time read/verify work scale with commands issued, not transitions fired.");
}
