//! Lint micro-bench: static-analysis cost vs flow width and depth.
//!
//! The lint gate runs on *every* submission, so its cost rides on the
//! engine's submit path; this bench pins it as a function of document
//! shape — wide (many sibling steps), deep (nested flows), and with the
//! feasibility pass against a populated topology.
//!
//! ```sh
//! cargo bench -p dgf-bench --bench flow_lint
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datagridflows::lint::{lint, lint_with_grid, GridContext};
use datagridflows::prelude::*;
use datagridflows::scheduler::InfraDescription;
use dgf_bench::{deep_request, wide_request};

fn request_flow(r: DataGridRequest) -> Flow {
    match r.body {
        datagridflows::dgl::RequestBody::Flow(flow) => flow,
        other => panic!("bench generators produce flow requests, got {other:?}"),
    }
}

fn bench_structural(c: &mut Criterion) {
    let mut group = c.benchmark_group("lint_wide");
    for steps in [10usize, 100, 1_000] {
        let flow = request_flow(wide_request(steps));
        group.throughput(Throughput::Elements(steps as u64));
        group.bench_with_input(BenchmarkId::from_parameter(steps), &flow, |b, flow| {
            b.iter(|| lint(std::hint::black_box(flow)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("lint_deep");
    for depth in [4usize, 16, 64] {
        let flow = request_flow(deep_request(depth));
        group.bench_with_input(BenchmarkId::from_parameter(depth), &flow, |b, flow| {
            b.iter(|| lint(std::hint::black_box(flow)));
        });
    }
    group.finish();
}

fn bench_with_grid(c: &mut Criterion) {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 8 });
    let infra = InfraDescription::open();
    let ctx = GridContext { topology: &topology, infra: &infra, vo: None };
    let mut group = c.benchmark_group("lint_with_grid_wide");
    for steps in [10usize, 100, 1_000] {
        let flow = request_flow(wide_request(steps));
        group.throughput(Throughput::Elements(steps as u64));
        group.bench_with_input(BenchmarkId::from_parameter(steps), &flow, |b, flow| {
            b.iter(|| lint_with_grid(std::hint::black_box(flow), &ctx));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_structural, bench_with_grid);
criterion_main!(benches);
