//! Telemetry micro-bench: scrape rendering and event-tail paging
//! against a grid that has accumulated metric and series history.
//!
//! The scrape is the operator hot path — a monitoring system polls it
//! continuously — so rendering must stay cheap even with hundreds of
//! retained series points. Plain `main` harness (like `experiments`),
//! so it runs in offline environments where criterion is stubbed:
//!
//! ```sh
//! cargo bench -p dgf-bench --bench telemetry_scrape
//! ```

use datagridflows::prelude::*;
use std::time::Instant;

/// A two-site grid that ran `flows` pipelines with a 10 s sampling
/// cadence, leaving metrics, series history, and recorder events.
fn warmed_dfms(flows: usize) -> Dfms {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
    let mut users = UserRegistry::new();
    users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
    users.make_admin("u").unwrap();
    let mut d = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 17));
    d.configure_telemetry(
        SamplingConfig { interval: Duration::from_secs(10), capacity: 512 },
        HealthConfig::default(),
    );
    for i in 0..flows {
        let base = format!("/b{i}");
        let flow = FlowBuilder::sequential(format!("bench-{i}"))
            .step("mk", DglOperation::CreateCollection { path: base.clone() })
            .step("put", DglOperation::Ingest { path: format!("{base}/in"), size: "50000000".into(), resource: "site0-pfs".into() })
            .step(
                "run",
                DglOperation::Execute {
                    code: "job".into(),
                    nominal_secs: "60".into(),
                    resource_type: None,
                    inputs: vec![format!("{base}/in")],
                    outputs: vec![(format!("{base}/out"), "1000".into())],
                },
            )
            .build()
            .unwrap();
        let txn = d.submit_flow("u", flow).unwrap();
        d.pump();
        assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
    }
    d.sample_telemetry();
    d
}

fn time_per_iter(iters: u32, mut f: impl FnMut()) -> f64 {
    // One warm-up pass, then the timed loop.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn main() {
    println!("telemetry micro-bench (wall time, {} iters per point)", ITERS);
    println!("\nscrape render:");
    println!("  {:>6} {:>10} {:>12}", "flows", "bytes", "us/iter");
    for flows in [1usize, 8, 32] {
        let d = warmed_dfms(flows);
        let bytes = d.telemetry_scrape().len();
        let us = time_per_iter(ITERS, || {
            std::hint::black_box(d.telemetry_scrape());
        });
        println!("  {flows:>6} {bytes:>10} {us:>12.1}");
    }

    println!("\ntail paging (full recorder sweep):");
    println!("  {:>6} {:>10} {:>12}", "page", "events", "us/iter");
    let d = warmed_dfms(16);
    let total = d.obs().events_total();
    for page in [16usize, 256] {
        let us = time_per_iter(ITERS, || {
            // Page through the whole recorder, as a tailing client would.
            let mut cursor = 0u64;
            let mut delivered = 0u64;
            loop {
                let t = d.tail_events(cursor, page);
                if t.events.is_empty() {
                    break;
                }
                delivered += t.events.len() as u64;
                cursor = t.next_cursor;
            }
            assert!(delivered <= total);
            std::hint::black_box(delivered);
        });
        println!("  {page:>6} {total:>10} {us:>12.1}");
    }
}

const ITERS: u32 = 200;
