//! E1 micro-bench: engine step throughput (dispatch + provenance +
//! scope machinery per step, no data movement).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datagridflows::prelude::*;
use dgf_bench::{mesh_dfms, notify_flow};

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_steps");
    group.sample_size(20);
    for steps in [100usize, 1_000] {
        group.throughput(Throughput::Elements(steps as u64));
        group.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, &steps| {
            b.iter(|| {
                let mut d = mesh_dfms(1, PlannerKind::CostBased, 1);
                let txn = d.submit_flow("u", notify_flow("bench", steps)).unwrap();
                d.pump();
                assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
            });
        });
    }
    group.finish();

    // DGMS-op steps (catalog mutations, still no byte movement).
    let mut group = c.benchmark_group("engine_dgms_steps");
    group.sample_size(20);
    for steps in [100usize, 500] {
        group.throughput(Throughput::Elements(steps as u64));
        group.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, &steps| {
            b.iter(|| {
                let mut d = mesh_dfms(1, PlannerKind::CostBased, 1);
                let mut fb = FlowBuilder::sequential("ops");
                for i in 0..steps {
                    fb = fb.step(format!("mk{i}"), DglOperation::CreateCollection { path: format!("/c{i}") });
                }
                let txn = d.submit_flow("u", fb.build().unwrap()).unwrap();
                d.pump();
                assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
