//! F1–F4 micro-bench: DGL document parse/serialize throughput vs
//! document width and depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dgf_bench::{deep_request, wide_request};

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("dgl_parse_wide");
    for steps in [10usize, 100, 1_000] {
        let xml = wide_request(steps).to_xml();
        group.throughput(Throughput::Bytes(xml.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(steps), &xml, |b, xml| {
            b.iter(|| datagridflows::dgl::parse_request(std::hint::black_box(xml)).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("dgl_parse_deep");
    for depth in [4usize, 16, 64] {
        let xml = deep_request(depth).to_xml();
        group.throughput(Throughput::Bytes(xml.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(depth), &xml, |b, xml| {
            b.iter(|| datagridflows::dgl::parse_request(std::hint::black_box(xml)).unwrap());
        });
    }
    group.finish();
}

fn bench_serialize(c: &mut Criterion) {
    let mut group = c.benchmark_group("dgl_serialize_wide");
    for steps in [10usize, 100, 1_000] {
        let request = wide_request(steps);
        group.bench_with_input(BenchmarkId::from_parameter(steps), &request, |b, request| {
            b.iter(|| std::hint::black_box(request).to_xml());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parse, bench_serialize);
criterion_main!(benches);
